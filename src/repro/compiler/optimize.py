"""IR optimizations driven by the reaching-distribution analysis (§3.1).

The paper's compiler "performs a partial evaluation of distribution
queries (both IDT and the dcase construct), by checking whether there
is a plausible distribution which will match".  This module turns the
verdicts into transformations:

- **dead-arm elimination** — a DCASE arm whose condition is NEVER
  under the plausible sets cannot execute; it is removed;
- **specialization** — when a prefix arm's condition is ALWAYS, the
  construct reduces to that arm's block (no run-time dispatch);
  likewise an IDT-conditioned If with a decided condition collapses
  to the taken branch;
- **redundant-distribute elimination** — a DISTRIBUTE whose (concrete)
  target type is the only plausible distribution already reaching it
  is a no-op and is removed ("data motion is suppressed where data
  flow analysis ... permits", §3.2.2 — here at compile time).

The optimizer rebuilds a new :class:`~repro.compiler.ir.IRProgram`;
the input program is never mutated.  Statistics of what was removed
are reported for the E6 bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ir import (
    Assign,
    Block,
    Call,
    DCaseStmt,
    DistributeStmt,
    If,
    IRProgram,
    Loop,
    ProcDef,
)
from .partial_eval import ALWAYS, NEVER, decide_pattern, decide_querylist
from .reaching import ReachingDistributions

__all__ = ["OptimizeStats", "optimize"]


@dataclass
class OptimizeStats:
    """What the optimizer removed or specialized."""

    dead_arms: int = 0
    specialized_dcases: int = 0
    collapsed_ifs: int = 0
    removed_distributes: int = 0
    details: list[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return (
            self.dead_arms
            + self.specialized_dcases
            + self.collapsed_ifs
            + self.removed_distributes
        )


def optimize(program: IRProgram) -> tuple[IRProgram, OptimizeStats]:
    """Run the analysis, then transform every procedure."""
    analysis = ReachingDistributions(program)
    result = analysis.run()
    stats = OptimizeStats()

    out = IRProgram(entry=program.entry)
    for name, (initial, range_) in program.declared.items():
        out.declared[name] = (initial, range_)
    out.planned = set(program.planned)
    for proc in program.procs.values():
        new_body = _optimize_block(proc.body, result, stats)
        out.add_proc(
            ProcDef(
                proc.name,
                proc.formals,
                new_body,
                formal_dists=dict(proc.formal_dists),
            )
        )
    return out, stats


def _state_before(result, stmt):
    return result.before.get(stmt.sid, {})


def _optimize_block(block: Block, result, stats: OptimizeStats) -> Block:
    new_stmts = []
    for stmt in block:
        if isinstance(stmt, Assign):
            new_stmts.append(Assign(stmt.lhs, stmt.reads, stmt.label))
        elif isinstance(stmt, Call):
            new_stmts.append(Call(stmt.callee, dict(stmt.bindings)))
        elif isinstance(stmt, DistributeStmt):
            state = _state_before(result, stmt)
            ps = state.get(stmt.array)
            if (
                ps is not None
                and not ps.is_top
                and ps.patterns == frozenset([stmt.pattern])
                and stmt.pattern.is_concrete()
                and not stmt.connected
            ):
                stats.removed_distributes += 1
                stats.details.append(
                    f"removed no-op DISTRIBUTE {stmt.array} :: {stmt.pattern!r}"
                )
                continue
            new_stmts.append(
                DistributeStmt(stmt.array, stmt.pattern, stmt.connected)
            )
        elif isinstance(stmt, If):
            new_stmts.extend(_optimize_if(stmt, result, stats))
        elif isinstance(stmt, Loop):
            new_stmts.append(
                Loop(_optimize_block(stmt.body, result, stats), trip=stmt.trip)
            )
        elif isinstance(stmt, DCaseStmt):
            new_stmts.extend(_optimize_dcase(stmt, result, stats))
        else:
            raise TypeError(f"unknown IR statement {stmt!r}")
    return Block(new_stmts)


def _optimize_if(stmt: If, result, stats: OptimizeStats) -> list:
    if stmt.idt_cond is None:
        return [
            If(
                _optimize_block(stmt.then, result, stats),
                _optimize_block(stmt.orelse, result, stats),
            )
        ]
    array, pattern = stmt.idt_cond
    state = _state_before(result, stmt)
    from .partial_eval import TOP

    verdict = decide_pattern(state.get(array, TOP), pattern)
    if verdict == ALWAYS:
        stats.collapsed_ifs += 1
        stats.details.append(f"IDT({array}, {pattern!r}) is ALWAYS: took then")
        return list(_optimize_block(stmt.then, result, stats))
    if verdict == NEVER:
        stats.collapsed_ifs += 1
        stats.details.append(f"IDT({array}, {pattern!r}) is NEVER: took else")
        return list(_optimize_block(stmt.orelse, result, stats))
    return [
        If(
            _optimize_block(stmt.then, result, stats),
            _optimize_block(stmt.orelse, result, stats),
            idt_cond=(array, pattern),
        )
    ]


def _optimize_dcase(stmt: DCaseStmt, result, stats: OptimizeStats) -> list:
    state = _state_before(result, stmt)
    kept = []
    for ql, arm in stmt.arms:
        if ql is None:  # DEFAULT
            verdict = ALWAYS
        else:
            verdict = decide_querylist(state, stmt.selectors, ql)
        if verdict == NEVER:
            stats.dead_arms += 1
            stats.details.append(f"pruned dead DCASE arm {ql!r}")
            continue
        new_arm = _optimize_block(arm, result, stats)
        if verdict == ALWAYS:
            if not kept:
                # first reachable arm always matches: the whole
                # construct reduces to this block
                stats.specialized_dcases += 1
                stats.details.append(
                    f"specialized DCASE ({', '.join(stmt.selectors)}) "
                    f"to arm {ql!r}"
                )
                return list(new_arm)
            # a later ALWAYS arm makes everything after it dead
            kept.append((ql, new_arm))
            break
        kept.append((ql, new_arm))
    if not kept:
        return []  # nothing can match: "completed without executing"
    return [DCaseStmt(stmt.selectors, tuple(kept))]
