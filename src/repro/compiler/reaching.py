"""The reaching-distributions dataflow analysis (§3.1).

"The most important task in the analysis phase is solving the reaching
distribution problem: that is, the compiler must determine the range
of distribution types which may reach a specific array access in the
code, by intra- and inter-procedural analysis. ... We call the set of
all such pairs which is valid for a specific array at a specific
position in the program the set of plausible distributions."

Forward may-analysis over the CFG of each procedure:

- lattice element: ``dict[array -> PlausibleSet]`` (missing = TOP,
  bounded below by declarations/RANGE);
- ``DISTRIBUTE B :: t`` kills B's set and gens ``{t}`` (and likewise
  for the connected secondaries, which share the primary's type under
  distribution extraction);
- joins take per-array unions ("the compiler has to generate code
  which allows for the possibility that several data distributions may
  reach some statements");
- DCASE-arm and IDT-refined edges *narrow* the incoming sets;
- procedure calls are analysed context-sensitively by formal/actual
  renaming (Vienna Fortran returns new distributions to the caller, so
  the callee's exit state flows back); recursion falls back to
  worst-case (RANGE or TOP) for every array the cycle touches.

Results: for every statement id, the state *before* it, from which the
plausible set at each :class:`~repro.compiler.ir.ArrayRef` is read off.
"""

from __future__ import annotations

from .cfg import CFG, build_cfg
from .ir import Assign, Call, DistributeStmt, IRProgram, ProcDef
from .partial_eval import TOP, PlausibleSet

__all__ = ["ReachingDistributions", "AnalysisResult"]

State = dict[str, PlausibleSet]


def _join(a: State, b: State) -> State:
    """Per-array union; an array tracked on only one path keeps that
    path's value (missing simply means not yet mentioned)."""
    out = dict(a)
    for k, v in b.items():
        out[k] = v if k not in out else out[k].union(v)
    return out


def _state_eq(a: State, b: State) -> bool:
    return a.keys() == b.keys() and all(a[k] == b[k] for k in a)


class AnalysisResult:
    """Per-statement plausible-distribution information."""

    def __init__(self) -> None:
        #: state before each statement id
        self.before: dict[int, State] = {}
        #: final state at program exit
        self.exit_state: State = {}

    def plausible(self, sid: int, array: str) -> PlausibleSet:
        """Plausible set of ``array`` just before statement ``sid``."""
        return self.before.get(sid, {}).get(array, TOP)

    def plausible_count(self, sid: int, array: str) -> int | None:
        """Number of plausible distribution types (None = unbounded)."""
        ps = self.plausible(sid, array)
        return None if ps.is_top else len(ps.patterns or ())


class ReachingDistributions:
    """Run the analysis over an :class:`~repro.compiler.ir.IRProgram`."""

    def __init__(self, program: IRProgram):
        self.program = program
        self.result = AnalysisResult()
        self._cfg_cache: dict[str, CFG] = {}
        self._call_stack: list[str] = []

    # -- public API --------------------------------------------------------
    def run(self) -> AnalysisResult:
        init: State = {}
        for name, (initial, range_) in self.program.declared.items():
            if initial is not None:
                init[name] = PlausibleSet([initial])
            elif range_ is not None:
                init[name] = PlausibleSet(range_)
            else:
                init[name] = TOP
        entry = self.program.proc(self.program.entry)
        self.result.exit_state = self._analyze_proc(entry, init)
        return self.result

    # -- per-procedure dataflow ------------------------------------------------
    def _cfg_of(self, proc: ProcDef) -> CFG:
        if proc.name not in self._cfg_cache:
            self._cfg_cache[proc.name] = build_cfg(proc.body)
        return self._cfg_cache[proc.name]

    def _worst_case(self, state: State) -> State:
        """Recursion fallback: every array to RANGE or TOP."""
        out: State = {}
        for name in state:
            declared = self.program.declared.get(name)
            if declared is not None and declared[1] is not None:
                out[name] = PlausibleSet(declared[1])
            else:
                out[name] = TOP
        return out

    def _analyze_proc(self, proc: ProcDef, entry_state: State) -> State:
        if proc.name in self._call_stack:
            return self._worst_case(entry_state)
        self._call_stack.append(proc.name)
        try:
            cfg = self._cfg_of(proc)
            node_in: dict[int, State] = {cfg.entry: dict(entry_state)}
            worklist = [cfg.entry]
            node_out: dict[int, State] = {}
            while worklist:
                nid = worklist.pop(0)
                state = dict(node_in.get(nid, {}))
                node = cfg.nodes[nid]
                for stmt in node.stmts:
                    self.result.before[stmt.sid] = dict(state)
                    state = self._transfer(stmt, state)
                if node.branch_stmt is not None:
                    # the state reaching a control statement (for query
                    # partial evaluation over If/DCase conditions)
                    self.result.before[node.branch_stmt.sid] = dict(state)
                node_out[nid] = state
                for edge in node.succs:
                    succ_state = dict(state)
                    for array, pattern in edge.refinements:
                        succ_state[array] = succ_state.get(array, TOP).refine(
                            pattern
                        )
                    old = node_in.get(edge.dst)
                    new = succ_state if old is None else _join(old, succ_state)
                    if old is None or not _state_eq(old, new):
                        node_in[edge.dst] = new
                        if edge.dst not in worklist:
                            worklist.append(edge.dst)
            return node_in.get(cfg.exit, {})
        finally:
            self._call_stack.pop()

    # -- transfer functions ---------------------------------------------------------
    def _transfer(self, stmt, state: State) -> State:
        if isinstance(stmt, DistributeStmt):
            state = dict(state)
            state[stmt.array] = PlausibleSet([stmt.pattern])
            for sec in stmt.connected:
                # connected arrays share the primary's type (extraction);
                # an aligned secondary's type equals it too for the
                # type-preserving alignments of §2 (see core.alignment).
                state[sec] = PlausibleSet([stmt.pattern])
            return state
        if isinstance(stmt, Call):
            callee = self.program.proc(stmt.callee)
            # bind formals to actuals
            inner = dict(state)
            for formal, actual in stmt.bindings.items():
                inner[formal] = state.get(actual, TOP)
                declared = callee.formal_dists.get(formal)
                if declared is not None:
                    # implicit redistribution at the boundary
                    inner[formal] = PlausibleSet([declared])
            exit_state = self._analyze_proc(callee, inner)
            # Vienna Fortran: the callee's (possibly new) distribution
            # returns to the caller (§5)
            out = dict(state)
            for formal, actual in stmt.bindings.items():
                if formal in exit_state:
                    out[actual] = exit_state[formal]
            # globals touched by the callee flow back as well (but not
            # the formals themselves, nor arrays bound as actuals —
            # those were updated through the binding above)
            actuals = set(stmt.bindings.values())
            for name, ps in exit_state.items():
                if (
                    name not in callee.formals
                    and name not in actuals
                    and name in out
                ):
                    out[name] = ps
            return out
        if isinstance(stmt, Assign):
            return state  # assignments do not change distributions
        raise TypeError(f"unexpected statement in basic block: {stmt!r}")

    # -- convenience -------------------------------------------------------------
    def plausible_at(self, stmt, array: str) -> PlausibleSet:
        return self.result.plausible(stmt.sid, array)


def analyze(program: IRProgram) -> AnalysisResult:
    """One-call helper: run reaching distributions on ``program``."""
    return ReachingDistributions(program).run()
