"""SPMD lowering: executable owner-computes kernels (§1, §3.1).

"The Vienna Fortran Compilation System generates code based on the
SPMD model, in which each processor executes essentially the same
code, but on a local data set. ... the compiler distributes work based
upon the owner computes rule ... The compiler satisfies any non-local
references required for this computation by inserting communication
statements."

This module is the code-generation half of that story, specialized to
the access patterns the paper's applications exhibit.  Each ``lower_*``
function returns a callable kernel that runs against the simulated
machine — the generated "object program":

- :func:`lower_stencil` — shift references: allocate overlap areas,
  insert one halo exchange per step, run the stencil on local data;
- :func:`lower_line_sweep` — ROW_SWEEP references (the ADI pattern):
  if the swept dimension is local, run each line in place with zero
  communication; otherwise *insert* the gather/compute/scatter
  messages a distributed line incurs (the paper's bad case, where
  "the argument ... is distributed across a set of processors and it
  becomes the responsibility of the compiler to embed the required
  communication in the generated code").

Kernels check the array's distribution *at run time*, so a DISTRIBUTE
executed between two invocations changes the communication behaviour
exactly as in Vienna Fortran.
"""

from __future__ import annotations

from functools import partial
from typing import Callable

import numpy as np

from ..runtime.darray import DistributedArray
from ..runtime.engine import Engine
from ..runtime.overlap import OverlapManager
from ..runtime.redistribute import PlanCache, default_plan_cache

__all__ = [
    "StencilKernel",
    "LineSweepKernel",
    "lower_stencil",
    "lower_line_sweep",
    "batched_line_solver",
]


def batched_line_solver(line_func: Callable) -> Callable | None:
    """The whole-batch form of a per-line solver, if it advertises one.

    A line solver opts into vectorized sweeps by carrying a
    ``batched`` attribute: a callable taking an ``(nlines, n)`` array
    of right-hand sides and returning the ``(nlines, n)`` solutions,
    elementwise-identical to applying the scalar solver per row (the
    paper's TRIDIAG does — see
    :func:`repro.apps.tridiag.thomas_const_batch`).  ``functools.partial``
    wrappers are unwrapped with their bound arguments.  Returns
    ``None`` when the solver only exists in per-line form; sweeps then
    fall back to the per-line reference loop.
    """
    fn = getattr(line_func, "batched", None)
    if fn is not None:
        return fn
    if isinstance(line_func, partial):
        inner = getattr(line_func.func, "batched", None)
        if inner is not None:
            return partial(inner, *line_func.args, **line_func.keywords)
    return None


class StencilKernel:
    """An owner-computes stencil sweep with halo exchange.

    ``func(padded, out, widths)`` computes the new interior from the
    halo-padded local block; it is applied per processor on local data
    only — all communication happens in the halo exchange up front.
    """

    def __init__(
        self,
        array: DistributedArray,
        widths: tuple[int, ...],
        func: Callable[[np.ndarray, np.ndarray, tuple[int, ...]], None],
        flops_per_element: float = 4.0,
        plan_cache: PlanCache | None = None,
    ):
        self.array = array
        self.widths = widths
        self.func = func
        self.flops_per_element = flops_per_element
        self.plan_cache = (
            plan_cache if plan_cache is not None else default_plan_cache()
        )
        self._overlap: OverlapManager | None = None
        self._version = -1

    def _manager(self) -> OverlapManager:
        if self._overlap is None or self._version != self.array.version:
            self._overlap = OverlapManager(
                self.array, self.widths, plan_cache=self.plan_cache
            )
            self._version = self.array.version
        return self._overlap

    def step(self) -> None:
        """One sweep: load, exchange halos, compute, store."""
        machine = self.array.machine
        backend = machine.backend
        if (
            backend is not None
            and backend.executes_spmd
            and backend.can_ship(self.func)
        ):
            self._step_spmd(backend)
            return
        ov = self._manager()
        ov.load_interior()
        ov.exchange()
        for rank in self.array.owning_ranks():
            pad = ov.padded(rank)
            out = ov.interior(rank)
            new = np.empty_like(out)
            self.func(pad, new, self.widths)
            out[...] = new
            machine.network.compute(
                rank, self.flops_per_element * out.size,
                tag=f"stencil:{self.array.name}",
            )
        machine.network.synchronize()
        ov.store_interior()

    def _step_spmd(self, backend) -> None:
        """The same sweep with halo exchange and compute executed in
        the backend's worker processes.

        The master performs the identical network *accounting* the
        serial path would (same per-dimension exchange phases, same
        compute charges), then dispatches one SPMD stencil op: workers
        load their interior, exchange boundary slabs through the
        message-passing transport, run ``func`` on local data, and
        store — the real data motion of the modeled messages.
        """
        ov = self._manager()  # (re)allocates shared padded buffers
        machine = self.array.machine
        dist = self.array.dist
        itemsize = self.array.itemsize
        # one (cached) shift plan per dimension, used twice: accounting
        # here, worker slab routing inside backend.stencil_step
        dim_entries = [
            (dim, self.plan_cache.shift_plan(dist, dim, w))
            for dim, w in enumerate(self.widths)
            if w > 0
        ]
        for dim, entries in dim_entries:
            machine.network.exchange(
                [
                    (src, dst, count * itemsize,
                     f"shift:{self.array.name}:d{dim}")
                    for src, dst, _key, _sl, count in entries
                ]
            )
            machine.network.synchronize()
        for rank in self.array.owning_ranks():
            machine.network.compute(
                rank, self.flops_per_element * dist.local_size(rank),
                tag=f"stencil:{self.array.name}",
            )
        machine.network.synchronize()
        backend.stencil_step(self.array, ov, self.func, dim_entries)


class LineSweepKernel:
    """Independent 1-D solves along every line of one array dimension.

    ``line_func(values) -> values`` transforms one full line (the
    paper's TRIDIAG).  If the swept dimension is undistributed, every
    line is local to its owner and the sweep is communication-free.
    Otherwise each line is gathered to the processor owning its first
    element, solved there, and scattered back — the communication the
    compiler must embed when the programmer does *not* redistribute.
    """

    def __init__(
        self,
        array: DistributedArray,
        dim: int,
        line_func: Callable[[np.ndarray], np.ndarray],
        flops_per_element: float = 8.0,
        plan_cache: PlanCache | None = None,
    ):
        if not 0 <= dim < array.ndim:
            raise ValueError(f"dim {dim} out of range for rank {array.ndim}")
        self.array = array
        self.dim = dim
        self.line_func = line_func
        self.flops_per_element = flops_per_element
        self.plan_cache = (
            plan_cache if plan_cache is not None else default_plan_cache()
        )
        #: whole-batch solver, if ``line_func`` advertises one
        self._batched = batched_line_solver(line_func)

    def _line_is_local(self) -> bool:
        from ..core.dimdist import NoDist, Replicated

        dd = self.array.dist.dtype.dims[self.dim]
        if isinstance(dd, (NoDist, Replicated)):
            return True
        # distributed, but possibly onto a single processor slot
        return self.array.dist._slots(self.dim) == 1

    def sweep(self, reference: bool = False) -> dict[str, int]:
        """Run line_func over every line; returns sweep statistics.

        ``reference=True`` forces the per-line oracle path (rank-map
        slicing per line, scalar solves) that the vectorized plan-based
        path is property-tested bitwise against.
        """
        if self._line_is_local():
            return self._sweep_local(reference=reference)
        if reference:
            return self._sweep_distributed_reference()
        return self._sweep_distributed()

    def _sweep_local(self, reference: bool = False) -> dict[str, int]:
        machine = self.array.machine
        backend = machine.backend
        if (
            not reference  # the oracle path always runs in-process
            and backend is not None
            and backend.executes_spmd
            and backend.can_ship(self.line_func)
        ):
            return self._sweep_local_spmd(backend)
        nlines = 0
        for rank in self.array.owning_ranks():
            local = self.array.local(rank)
            moved = np.moveaxis(local, self.dim, -1)
            nlines += self._solve_lines(moved, batched=not reference)
            machine.network.compute(
                rank, self.flops_per_element * local.size,
                tag=f"sweep:{self.array.name}",
            )
        machine.network.synchronize()
        return {"lines": nlines, "remote_lines": 0}

    def _solve_lines(self, moved: np.ndarray, batched: bool = True) -> int:
        """Run ``line_func`` over every trailing-axis line of ``moved``
        in place: one whole-batch call when the solver advertises a
        batched form, the per-line reference loop otherwise.  Returns
        the line count."""
        flat = moved.reshape(-1, moved.shape[-1])
        if batched and self._batched is not None:
            moved[...] = np.asarray(
                self._batched(np.ascontiguousarray(flat))
            ).reshape(moved.shape)
        else:
            view = np.shares_memory(flat, moved)
            for i in range(flat.shape[0]):
                flat[i, :] = self.line_func(flat[i, :])
            if not view:  # reshape had to copy: write the results back
                moved[...] = flat.reshape(moved.shape)
        return flat.shape[0]

    def _sweep_local_spmd(self, backend) -> dict[str, int]:
        """Local sweep executed in the backend's worker processes.

        Each worker solves its own lines against its shared-memory
        segment; the master only charges the (identical) compute
        accounting.  ``line_func`` must be picklable to land here —
        use ``functools.partial`` over module-level solvers.
        """
        from ..backend.ops import line_sweep_kernel

        machine = self.array.machine
        dist = self.array.dist
        nlines = 0
        for rank in self.array.owning_ranks():
            size = dist.local_size(rank)
            nlines += size // max(1, dist.local_shape(rank)[self.dim])
            machine.network.compute(
                rank, self.flops_per_element * size,
                tag=f"sweep:{self.array.name}",
            )
        backend.run_kernel(
            self.array,
            partial(
                line_sweep_kernel, dim=self.dim, line_func=self.line_func
            ),
        )
        machine.network.synchronize()
        return {"lines": nlines, "remote_lines": 0}

    def _sweep_distributed(self) -> dict[str, int]:
        """Gather each line to its head owner, solve, scatter back.

        Line ownership is resolved through the cached
        :class:`~repro.backend.plan.SweepPlan`: lines sharing a
        processor-slot combination share one precomputed head and
        message template instead of re-slicing the rank map and
        re-running ``np.unique`` per line, and the solves run through
        :meth:`_solve_lines` (whole-batch when the solver allows).
        The emitted messages, kernel charges and their order are
        identical to the per-line reference (property-tested).
        """
        machine = self.array.machine
        arr = self.array
        n_line = arr.shape[self.dim]
        itemsize = arr.itemsize
        plan = self.plan_cache.sweep_plan(arr.dist, self.dim)
        gvals = arr.to_global()  # simulation shortcut for the data itself

        # expand per-group message templates in line order (the same
        # program order the per-line loop produced)
        gids = plan.group_of_line
        gather_phase = [
            (q, h, cnt * itemsize, "sweep:gather")
            for g in gids
            for q, h, cnt in plan.gather[g]
        ]
        scatter_phase = [
            (h, q, cnt * itemsize, "sweep:scatter")
            for g in gids
            for h, q, cnt in plan.scatter[g]
        ]
        # per-head kernel charges accumulate line by line in first-
        # appearance order (dict semantics of the reference loop)
        head_flops: dict[int, float] = {}
        line_flops = self.flops_per_element * n_line
        for h in plan.head[gids]:
            h = int(h)
            head_flops[h] = head_flops.get(h, 0.0) + line_flops
        remote_lines = int(np.count_nonzero(plan.remote[gids]))

        # all line gathers post concurrently, then the solves, then all
        # scatters — the per-head occupancy serializes a head's lines.
        machine.network.exchange(gather_phase)
        for head, flops in head_flops.items():
            machine.network.compute(
                head, flops, tag=f"sweep:{arr.name}"
            )
        machine.network.exchange(scatter_phase)
        machine.network.synchronize()

        moved = np.moveaxis(gvals, self.dim, -1)
        nlines = self._solve_lines(moved)
        arr.from_global(gvals)
        return {"lines": nlines, "remote_lines": remote_lines}

    def _sweep_distributed_reference(self) -> dict[str, int]:
        """Per-line oracle for :meth:`_sweep_distributed`: slice the
        rank map and discover head/pieces per line, solve each line
        scalar.  Values, statistics, messages and their order are the
        contract the plan-based path is property-tested against."""
        machine = self.array.machine
        arr = self.array
        n_line = arr.shape[self.dim]
        itemsize = arr.itemsize
        # iterate over all lines (all index combinations of other dims)
        other_dims = [d for d in range(arr.ndim) if d != self.dim]
        gvals = arr.to_global()  # simulation shortcut for the data itself
        remote_lines = 0
        rank_map = np.asarray(arr.dist.rank_map())
        import itertools as _it

        other_ranges = [range(arr.shape[d]) for d in other_dims]
        gather_phase: list[tuple[int, int, int, str]] = []
        scatter_phase: list[tuple[int, int, int, str]] = []
        head_flops: dict[int, float] = {}
        for combo in _it.product(*other_ranges):
            idx = [0] * arr.ndim
            for d, v in zip(other_dims, combo):
                idx[d] = v
            line_sl = tuple(
                slice(None) if d == self.dim else idx[d]
                for d in range(arr.ndim)
            )
            line_owners = rank_map[line_sl]
            head = int(line_owners[0])
            qs, counts = np.unique(line_owners, return_counts=True)
            pieces: dict[int, int] = {
                int(q): int(c) for q, c in zip(qs, counts)
            }
            for q, cnt in pieces.items():
                if q != head:
                    gather_phase.append((q, head, cnt * itemsize, "sweep:gather"))
                    scatter_phase.append((head, q, cnt * itemsize, "sweep:scatter"))
            gvals[line_sl] = self.line_func(np.ascontiguousarray(gvals[line_sl]))
            head_flops[head] = head_flops.get(head, 0.0) + (
                self.flops_per_element * n_line
            )
            if len(pieces) > 1:
                remote_lines += 1
        # all line gathers post concurrently, then the solves, then all
        # scatters — the per-head occupancy serializes a head's lines.
        machine.network.exchange(gather_phase)
        for head, flops in head_flops.items():
            machine.network.compute(
                head, flops, tag=f"sweep:{arr.name}"
            )
        machine.network.exchange(scatter_phase)
        machine.network.synchronize()
        arr.from_global(gvals)
        nlines = 1
        for d in other_dims:
            nlines *= arr.shape[d]
        return {"lines": nlines, "remote_lines": remote_lines}


def lower_stencil(
    engine: Engine,
    array_name: str,
    widths: tuple[int, ...],
    func: Callable[[np.ndarray, np.ndarray, tuple[int, ...]], None],
    flops_per_element: float = 4.0,
) -> StencilKernel:
    """Lower a shift-pattern sweep over ``array_name`` to SPMD form."""
    return StencilKernel(
        engine.arrays[array_name], widths, func, flops_per_element,
        plan_cache=engine.plan_cache,
    )


def lower_line_sweep(
    engine: Engine,
    array_name: str,
    dim: int,
    line_func: Callable[[np.ndarray], np.ndarray],
    flops_per_element: float = 8.0,
) -> LineSweepKernel:
    """Lower independent line solves along ``dim`` to SPMD form."""
    return LineSweepKernel(
        engine.arrays[array_name], dim, line_func, flops_per_element,
        plan_cache=engine.plan_cache,
    )
