"""The cross-session response cache — fingerprints in, bytes out.

Every cacheable service response is the serialized JSON of a typed
stage result, fully determined by the request's resolved configuration
(workload, params, nprocs, cost model, backend, seed, stage options).
:func:`repro.api.config_fingerprint` canonicalizes that configuration
into a SHA-256 key; this module stores the response *string* under it,
so a cache hit returns byte-identical JSON — the same guarantee two
sessions constructed from equal configs already give, lifted to the
service tier.

The store is a bounded LRU (:class:`repro.core.interning.LRUCache`,
thread-safe) shared by every session in the pool; ``stats()`` feeds
the ``/stats`` endpoint's hit-rate story alongside
:meth:`repro.runtime.redistribute.PlanCache.stats`.
"""

from __future__ import annotations

from ..api.results import config_fingerprint
from ..core.interning import LRUCache
from ..obs import metrics as _obs

__all__ = ["ResponseCache", "request_fingerprint"]

_RESPONSE_CACHE_LOOKUPS = _obs.counter(
    "repro_response_cache_lookups_total",
    "Response-cache lookups at the serving tier, by outcome.",
    ("result",),
)
_RESPONSE_CACHE_EVICTIONS = _obs.counter(
    "repro_response_cache_evictions_total",
    "Responses evicted from the serving tier's LRU.",
)


def request_fingerprint(
    endpoint: str,
    workload: str,
    *,
    nprocs: int,
    cost_model: str,
    backend: str | None,
    seed: int,
    params: dict,
    options: dict | None = None,
) -> str:
    """The canonical cache key of one service request.

    Field order and spelling never matter — the digest is over the
    sorted-key canonical JSON (see
    :func:`repro.api.config_fingerprint`), so equivalent requests from
    different clients collapse onto one cache entry.
    """
    return config_fingerprint(
        {
            "endpoint": endpoint,
            "workload": workload,
            "nprocs": nprocs,
            "cost_model": cost_model,
            "backend": backend,
            "seed": seed,
            "params": params,
            "options": options or {},
        }
    )


class ResponseCache:
    """Fingerprint -> serialized-response LRU with hit-rate stats."""

    def __init__(self, capacity: int = 256):
        self._lru = LRUCache(capacity)

    def get(self, fingerprint: str) -> str | None:
        body = self._lru.get(fingerprint)
        _RESPONSE_CACHE_LOOKUPS.inc(
            result="hit" if body is not None else "miss")
        return body

    def put(self, fingerprint: str, body: str) -> None:
        before = self._lru.evictions
        self._lru.put(fingerprint, body)
        evicted = self._lru.evictions - before
        if evicted:
            _RESPONSE_CACHE_EVICTIONS.inc(evicted)

    def stats(self) -> dict:
        """Hits, misses, population, capacity and the derived hit rate
        (``None`` until the first lookup)."""
        s = self._lru.stats()
        total = s["hits"] + s["misses"]
        s["capacity"] = self._lru.capacity
        s["hit_rate"] = (s["hits"] / total) if total else None
        return s

    def clear(self) -> None:
        self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)
