"""The session pool — many tenants, bounded :class:`~repro.api.Session` reuse.

A service request names a session configuration (nprocs, cost model,
backend, seed policy); the pool keeps a small stack of idle sessions
per *distinct* configuration and hands them out to request threads.
Sessions are cheap to construct (no machine or backend is built until
a stage runs), so the pool's real job is sharing: every session it
creates is wired to **one** :class:`~repro.runtime.redistribute.PlanCache`,
so a plan memoized while serving tenant A is a hit when tenant B asks
the planner the same question — the cross-session reuse the
``/stats`` endpoint quantifies.

Thread-safe; close() drains every idle session.
"""

from __future__ import annotations

import threading

from ..api.config import SessionConfig
from ..api.registry import WorkloadRegistry
from ..api.results import config_fingerprint
from ..api.session import Session
from ..obs import flight as _flight
from ..obs import metrics as _obs
from ..runtime.redistribute import PlanCache

__all__ = ["SessionPool"]

_POOL_EVICTIONS = _obs.counter(
    "repro_pool_evictions_total",
    "Pooled sessions evicted instead of restacked, by cause.",
    ("cause",),
)


class SessionPool:
    """Bounded reuse of sessions keyed by their config fingerprint.

    ``max_idle`` bounds the idle stack *per configuration*; sessions
    released beyond it (or released closed) are discarded.  All pooled
    sessions share ``plan_cache`` (one is created if not given).
    """

    def __init__(
        self,
        registry: WorkloadRegistry | None = None,
        plan_cache: PlanCache | None = None,
        max_idle: int = 4,
    ):
        if max_idle < 0:
            raise ValueError(f"max_idle must be >= 0, got {max_idle}")
        self.registry = registry
        #: the shared cross-session plan cache every pooled session uses
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self.max_idle = int(max_idle)
        self._idle: dict[str, list[Session]] = {}
        self._lock = threading.Lock()
        self._closed = False
        self.created = 0
        self.reused = 0
        self.discarded = 0
        self.active = 0
        #: sessions retired on release because their backend tier was
        #: poisoned (use-after-fleet-death protection, ISSUE 9)
        self.evictions = 0

    @staticmethod
    def _key(config: SessionConfig) -> str:
        return config_fingerprint(config.to_json())

    # -- checkout / checkin ------------------------------------------------
    def acquire(self, config: SessionConfig) -> Session:
        """An open session for ``config`` — reused when an idle one
        with an equal config exists, freshly constructed otherwise."""
        config = config.validate()
        key = self._key(config)
        with self._lock:
            if self._closed:
                raise RuntimeError("session pool is closed")
            stack = self._idle.get(key)
            if stack:
                self.reused += 1
                self.active += 1
                return stack.pop()
            self.created += 1
            self.active += 1
        # construction happens outside the lock: it is cheap but there
        # is no reason to serialize unrelated tenants on it
        return Session(config, registry=self.registry, plan_cache=self.plan_cache)

    def release(self, session: Session) -> None:
        """Return a session to the pool (idempotent with close: a
        closed session is discarded, not restacked).

        A *poisoned* session — one whose backend fleet died during a
        stage — is evicted rather than handed to the next request: it
        still works (stages degrade to serial), but the next tenant
        deserves a clean slate, not a session that will silently run
        one-process.
        """
        key = self._key(session.config)
        poisoned = getattr(session, "poisoned", False)
        with self._lock:
            self.active = max(0, self.active - 1)
            if not self._closed and not session.closed and not poisoned:
                stack = self._idle.setdefault(key, [])
                if len(stack) < self.max_idle:
                    stack.append(session)
                    return
            self.discarded += 1
            if poisoned:
                self.evictions += 1
        if poisoned:
            _POOL_EVICTIONS.inc(cause="poisoned")
            _flight.note(
                "pool.evicted", cause="poisoned",
                backend=session.config.backend_name,
            )
        session.close()

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Close every idle session; further acquires raise."""
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, {}
        for stack in idle.values():
            for session in stack:
                session.close()

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            idle = sum(len(s) for s in self._idle.values())
            return {
                "created": self.created,
                "reused": self.reused,
                "discarded": self.discarded,
                "evictions": self.evictions,
                "active": self.active,
                "idle": idle,
                "configs": len(self._idle),
                "max_idle": self.max_idle,
            }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"SessionPool(created={s['created']}, reused={s['reused']}, "
            f"active={s['active']}, idle={s['idle']})"
        )
