"""Load-test harness: N concurrent clients × registered workloads.

The acceptance story of the service tier, executed: spin the asyncio
server up in-process (or point ``url=`` at a running one), hammer it
from ``clients`` concurrent threads, and verify the three properties
the serving design claims —

1. **zero failed requests** under concurrency;
2. **reproducibility**: identical requests (same workload, params,
   seed) get byte-identical JSON bodies, across clients and phases;
3. **cross-session caching**: the repeated-config phase's hit rate on
   the shared response cache exceeds 50% (each distinct config is
   computed once, every other request replays bytes).

Two phases drive those properties:

- ``unique`` — every request carries a fresh seed, so every response
  is computed: the cold-path latency floor;
- ``repeated`` — all clients replay one fixed config set ``rounds``
  times: everything after the first computation of each config is a
  cache hit (the millions-of-users steady state in miniature).

Latency p50/p99/mean per phase, cache behaviour (from the
``X-Repro-Cache`` response headers *and* the server's ``/stats``), and
the byte-identity verdict land in ``BENCH_SERVE.json`` next to
``BENCH_PERF.json``; ``check=True`` turns the three properties into a
CI gate.  Run via ``python -m repro serve --loadtest`` or
``benchmarks/bench_serve.py``.
"""

from __future__ import annotations

import hashlib
import json
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..api.registry import REGISTRY, WorkloadRegistry
from ..defaults import DEFAULT_SEED

__all__ = ["run_loadtest", "LoadtestError"]


class LoadtestError(SystemExit):
    """The load test's ``check`` gate failed (zero-failure /
    byte-identity / hit-rate property violated)."""


@dataclass
class _Observation:
    """One request as the client saw it."""

    key: str          # canonical request descriptor (identity group)
    phase: str
    status: int
    seconds: float
    cache: str        # X-Repro-Cache header: hit | miss | bypass
    digest: str       # sha256 of the body bytes
    error: str | None = None


def _http_post(url: str, payload: dict, timeout: float) -> tuple[int, dict, bytes]:
    data = json.dumps(payload).encode()
    req = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers or {}), exc.read()


def _request_set(
    registry: WorkloadRegistry, workloads: list[str] | None, smoke: bool
) -> list[tuple[str, str, dict]]:
    """(endpoint, workload, params) for every workload × stage.

    Sizes are deliberately small — the harness measures the *service*
    (dispatch, pooling, caching, concurrency), not the workloads.
    """
    size = 12 if smoke else 24
    items: list[tuple[str, str, dict]] = []
    for name in workloads or registry.names():
        spec = registry.get(name)
        params: dict = {}
        if "size" in spec.defaults:
            params["size"] = size
        if "iterations" in spec.defaults:
            params["iterations"] = 1 if smoke else 2
        if "steps" in spec.defaults:
            params["steps"] = 2 if smoke else 4
        if spec.plannable:
            items.append(("plan", name, params))
        items.append(("run", name, params))
        items.append(("trace", name, dict(params, compact=True)))
    return items


def _percentiles(seconds: list[float]) -> dict:
    if not seconds:
        return {"p50_ms": None, "p99_ms": None, "mean_ms": None, "max_ms": None}
    ms = np.asarray(seconds) * 1e3
    return {
        "p50_ms": float(np.percentile(ms, 50)),
        "p99_ms": float(np.percentile(ms, 99)),
        "mean_ms": float(ms.mean()),
        "max_ms": float(ms.max()),
    }


def _run_phase(
    base_url: str,
    phase: str,
    per_client: list[list[tuple[str, dict]]],
    timeout: float,
) -> list[_Observation]:
    """Each client thread walks its own request list sequentially; all
    clients run concurrently."""

    def client(requests: list[tuple[str, dict]]) -> list[_Observation]:
        out: list[_Observation] = []
        for endpoint, payload in requests:
            key = json.dumps({"endpoint": endpoint, **payload}, sort_keys=True)
            t0 = time.perf_counter()
            try:
                status, headers, body = _http_post(
                    f"{base_url}/{endpoint}", payload, timeout
                )
                out.append(_Observation(
                    key=key, phase=phase, status=status,
                    seconds=time.perf_counter() - t0,
                    cache=headers.get("X-Repro-Cache", "unknown"),
                    digest=hashlib.sha256(body).hexdigest(),
                    error=None if status == 200 else body.decode(errors="replace")[:200],
                ))
            except Exception as exc:
                out.append(_Observation(
                    key=key, phase=phase, status=0,
                    seconds=time.perf_counter() - t0,
                    cache="error", digest="", error=str(exc),
                ))
        return out

    with ThreadPoolExecutor(max_workers=len(per_client)) as pool:
        results = list(pool.map(client, per_client))
    return [obs for client_obs in results for obs in client_obs]


def _phase_report(name: str, observations: list[_Observation]) -> dict:
    mine = [o for o in observations if o.phase == name]
    failures = [o for o in mine if o.status != 200]
    hits = sum(1 for o in mine if o.cache == "hit")
    lookups = sum(1 for o in mine if o.cache in ("hit", "miss"))
    return {
        "name": name,
        "requests": len(mine),
        "failures": len(failures),
        "failure_samples": [o.error for o in failures[:3]],
        "cache_hits": hits,
        "cache_lookups": lookups,
        "cache_hit_rate": (hits / lookups) if lookups else None,
        "latency": _percentiles([o.seconds for o in mine]),
    }


def run_loadtest(
    url: str | None = None,
    clients: int = 8,
    rounds: int = 3,
    workloads: list[str] | None = None,
    registry: WorkloadRegistry | None = None,
    *,
    smoke: bool = False,
    seed: int = DEFAULT_SEED,
    out: str | None = "BENCH_SERVE.json",
    check: bool = False,
    quiet: bool = False,
    timeout: float = 120.0,
) -> dict:
    """Run the two-phase load test; return (and optionally write) the report.

    ``url=None`` starts an in-process :class:`~repro.serve.ServerThread`
    around a fresh :class:`~repro.serve.PlanningService` and tears it
    down afterwards; otherwise the running server at ``url`` is
    tested (its caches are *not* cleared — hit rates then reflect its
    real state).  ``check=True`` raises :class:`LoadtestError` unless
    all three serving properties hold.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    registry = registry if registry is not None else REGISTRY
    items = _request_set(registry, workloads, smoke)

    started_server = None
    if url is None:
        from .http import ServerThread
        from .service import PlanningService

        started_server = ServerThread(
            PlanningService(registry=registry), max_workers=clients
        ).start()
        url = started_server.url
    base_url = url.rstrip("/")

    try:
        # phase 1 — unique configs: every request gets its own seed, so
        # every response is computed (cold-path latencies, all misses)
        unique_lists = [
            [
                (endpoint, dict(params, workload=name,
                                seed=seed + 1000 + client * len(items) + i))
                for i, (endpoint, name, params) in enumerate(items)
            ]
            for client in range(clients)
        ]
        # phase 2 — repeated configs: one fixed seed, all clients replay
        # the same set `rounds` times (steady-state cache behaviour)
        repeated = [
            (endpoint, dict(params, workload=name, seed=seed))
            for endpoint, name, params in items
        ]
        repeated_lists = [list(repeated) * rounds for _ in range(clients)]

        observations = _run_phase(base_url, "unique", unique_lists, timeout)
        observations += _run_phase(base_url, "repeated", repeated_lists, timeout)

        # byte-identity: within each identical-request group, every
        # response body must hash the same
        groups: dict[str, set[str]] = {}
        for o in observations:
            if o.status == 200:
                groups.setdefault(o.key, set()).add(o.digest)
        divergent = sorted(k for k, v in groups.items() if len(v) > 1)

        try:
            status, _, stats_body = _http_post(
                f"{base_url}/stats", {}, timeout
            )
            server_stats = json.loads(stats_body) if status == 200 else None
        except Exception:
            server_stats = None
    finally:
        if started_server is not None:
            started_server.stop()

    phases = [
        _phase_report("unique", observations),
        _phase_report("repeated", observations),
    ]
    report = {
        "schema": "repro-bench-serve/1",
        "smoke": bool(smoke),
        "base_url": base_url,
        "in_process_server": started_server is not None,
        "clients": clients,
        "rounds": rounds,
        "workloads": list(workloads or registry.names()),
        "request_set": [
            {"endpoint": e, "workload": w, "params": p} for e, w, p in items
        ],
        "phases": phases,
        "total_requests": len(observations),
        "total_failures": sum(p["failures"] for p in phases),
        "byte_identical": not divergent,
        "divergent_requests": divergent[:5],
        "latency": _percentiles([o.seconds for o in observations]),
        "server_stats": server_stats,
    }

    if not quiet:
        for p in phases:
            lat = p["latency"]
            rate = p["cache_hit_rate"]
            print(
                f"  {p['name']:9s} {p['requests']:4d} requests, "
                f"{p['failures']} failed, "
                f"p50 {lat['p50_ms']:.1f} ms, p99 {lat['p99_ms']:.1f} ms, "
                f"hit rate {'n/a' if rate is None else f'{rate:.0%}'}"
            )
        print(f"  byte-identical responses: {report['byte_identical']}")

    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2)
        if not quiet:
            print(f"  wrote {out}")

    if check:
        problems = []
        if report["total_failures"]:
            problems.append(f"{report['total_failures']} failed request(s)")
        if not report["byte_identical"]:
            problems.append(
                f"non-identical responses for identical requests: "
                f"{divergent[:2]}"
            )
        repeated_rate = phases[1]["cache_hit_rate"]
        if repeated_rate is None or repeated_rate <= 0.5:
            problems.append(
                f"repeated-config cache hit rate "
                f"{'n/a' if repeated_rate is None else f'{repeated_rate:.0%}'} "
                f"(need > 50%)"
            )
        if problems:
            raise LoadtestError(
                "serve load test failed: " + "; ".join(problems)
            )
    return report
