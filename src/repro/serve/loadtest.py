"""Load-test harness: N concurrent clients × registered workloads.

The acceptance story of the service tier, executed: spin the asyncio
server up in-process (or point ``url=`` at a running one), hammer it
from ``clients`` concurrent threads, and verify the three properties
the serving design claims —

1. **zero failed requests** under concurrency;
2. **reproducibility**: identical requests (same workload, params,
   seed) get byte-identical JSON bodies, across clients and phases;
3. **cross-session caching**: the repeated-config phase's hit rate on
   the shared response cache exceeds 50% (each distinct config is
   computed once, every other request replays bytes).

Two phases drive those properties:

- ``unique`` — every request carries a fresh seed, so every response
  is computed: the cold-path latency floor;
- ``repeated`` — all clients replay one fixed config set ``rounds``
  times: everything after the first computation of each config is a
  cache hit (the millions-of-users steady state in miniature).

Latency p50/p99/mean per phase, cache behaviour (from the
``X-Repro-Cache`` response headers *and* the server's ``/stats``), and
the byte-identity verdict land in ``BENCH_SERVE.json`` next to
``BENCH_PERF.json``; ``check=True`` turns the three properties into a
CI gate.  Run via ``python -m repro serve --loadtest`` or
``benchmarks/bench_serve.py``.

**Chaos mode** (``chaos=True`` / ``--chaos``) reruns the same phases
with a seeded :class:`~repro.faults.FaultPlan` active — injected
request delays, 500s, and dropped connections at the HTTP layer —
then drives a *recovery* phase: multiprocess ``/run`` requests under
a worker-crash + transport-delay plan, whose ``solution_sha256`` must
match a serial run of the same config bit for bit (the fleet restarts
mid-op and replays from the last barrier).  The report lands in
``BENCH_CHAOS.json`` and the ``check`` gate flips to the robustness
properties: zero byte-identity violations, every 5xx carrying an
``X-Repro-Incident-Id``, and the recovered runs bitwise-identical
with at least one fleet restart observed.
"""

from __future__ import annotations

import hashlib
import json
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..api.registry import REGISTRY, WorkloadRegistry
from ..defaults import DEFAULT_SEED

__all__ = ["run_loadtest", "LoadtestError", "SERVE_SCHEMA", "CHAOS_SCHEMA"]

#: schema of the BENCH_SERVE.json document (v2: env provenance stamp)
SERVE_SCHEMA = "repro-bench-serve/2"

#: schema of the BENCH_CHAOS.json document (chaos-mode load test)
CHAOS_SCHEMA = "repro-bench-chaos/1"


class LoadtestError(SystemExit):
    """The load test's ``check`` gate failed (zero-failure /
    byte-identity / hit-rate property violated)."""


@dataclass
class _Observation:
    """One request as the client saw it."""

    key: str          # canonical request descriptor (identity group)
    phase: str
    status: int
    seconds: float
    cache: str        # X-Repro-Cache header: hit | miss | bypass
    digest: str       # sha256 of the body bytes
    error: str | None = None
    incident: str | None = None  # X-Repro-Incident-Id header, if any


#: series the /metrics scrape must contain at least one sample of for
#: the ``check`` gate to pass (satellite of the observability spine)
REQUIRED_SERIES = (
    "repro_http_requests_total",
    "repro_http_request_seconds_bucket",
    "repro_plan_cache_lookups_total",
    "repro_response_cache_lookups_total",
    "repro_planner_candidates_total",
    "repro_planner_plans_total",
    "repro_session_stages_total",
)


def _http_get(url: str, timeout: float) -> tuple[int, bytes]:
    req = urllib.request.Request(url, method="GET")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _scrape_metrics(base_url: str, timeout: float) -> dict:
    """GET /metrics and summarize which required series have samples."""
    try:
        status, body = _http_get(f"{base_url}/metrics", timeout)
    except Exception as exc:
        return {"scraped": False, "error": str(exc), "text": None,
                "missing_series": list(REQUIRED_SERIES)}
    if status != 200:
        return {"scraped": False, "error": f"HTTP {status}", "text": None,
                "missing_series": list(REQUIRED_SERIES)}
    text = body.decode()
    # a series "exists" when a sample line starts with its name (HELP /
    # TYPE comments alone mean the metric is registered but empty)
    sampled = {
        line.split("{", 1)[0].split(" ", 1)[0]
        for line in text.splitlines()
        if line and not line.startswith("#")
    }
    missing = [s for s in REQUIRED_SERIES if s not in sampled]
    return {
        "scraped": True,
        "error": None,
        "text": text,
        "series_sampled": len(sampled),
        "missing_series": missing,
    }


def _http_post(url: str, payload: dict, timeout: float) -> tuple[int, dict, bytes]:
    data = json.dumps(payload).encode()
    req = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers or {}), exc.read()


def _request_set(
    registry: WorkloadRegistry, workloads: list[str] | None, smoke: bool
) -> list[tuple[str, str, dict]]:
    """(endpoint, workload, params) for every workload × stage.

    Sizes are deliberately small — the harness measures the *service*
    (dispatch, pooling, caching, concurrency), not the workloads.
    """
    size = 12 if smoke else 24
    items: list[tuple[str, str, dict]] = []
    for name in workloads or registry.names():
        spec = registry.get(name)
        params: dict = {}
        if "size" in spec.defaults:
            params["size"] = size
        if "iterations" in spec.defaults:
            params["iterations"] = 1 if smoke else 2
        if "steps" in spec.defaults:
            params["steps"] = 2 if smoke else 4
        if spec.plannable:
            items.append(("plan", name, params))
        items.append(("run", name, params))
        items.append(("trace", name, dict(params, compact=True)))
    return items


#: how the percentiles below are computed (recorded in BENCH_SERVE.json)
LATENCY_METHOD = "linear_interpolation"


def _quantile(sorted_ms: np.ndarray, q: float) -> float:
    """Quantile ``q`` in [0, 1] with proper linear interpolation.

    Uses the standard ``rank = q * (n - 1)`` definition: the value is
    interpolated between the two order statistics bracketing the rank
    (no naive index rounding) — equivalent to
    ``statistics.quantiles(..., method="inclusive")`` cut points.
    """
    n = len(sorted_ms)
    if n == 1:
        return float(sorted_ms[0])
    rank = q * (n - 1)
    lo = int(rank)
    hi = min(lo + 1, n - 1)
    frac = rank - lo
    return float(sorted_ms[lo] * (1.0 - frac) + sorted_ms[hi] * frac)


def _percentiles(seconds: list[float]) -> dict:
    if not seconds:
        return {"p50_ms": None, "p99_ms": None, "mean_ms": None,
                "max_ms": None, "method": LATENCY_METHOD}
    ms = np.sort(np.asarray(seconds, dtype=float)) * 1e3
    return {
        "p50_ms": _quantile(ms, 0.50),
        "p99_ms": _quantile(ms, 0.99),
        "mean_ms": float(ms.mean()),
        "max_ms": float(ms.max()),
        "method": LATENCY_METHOD,
    }


def _run_phase(
    base_url: str,
    phase: str,
    per_client: list[list[tuple[str, dict]]],
    timeout: float,
) -> list[_Observation]:
    """Each client thread walks its own request list sequentially; all
    clients run concurrently."""

    def client(requests: list[tuple[str, dict]]) -> list[_Observation]:
        out: list[_Observation] = []
        for endpoint, payload in requests:
            key = json.dumps({"endpoint": endpoint, **payload}, sort_keys=True)
            t0 = time.perf_counter()
            try:
                status, headers, body = _http_post(
                    f"{base_url}/{endpoint}", payload, timeout
                )
                out.append(_Observation(
                    key=key, phase=phase, status=status,
                    seconds=time.perf_counter() - t0,
                    cache=headers.get("X-Repro-Cache", "unknown"),
                    digest=hashlib.sha256(body).hexdigest(),
                    error=None if status == 200 else body.decode(errors="replace")[:200],
                    incident=headers.get("X-Repro-Incident-Id"),
                ))
            except Exception as exc:
                out.append(_Observation(
                    key=key, phase=phase, status=0,
                    seconds=time.perf_counter() - t0,
                    cache="error", digest="", error=str(exc),
                ))
        return out

    with ThreadPoolExecutor(max_workers=len(per_client)) as pool:
        results = list(pool.map(client, per_client))
    return [obs for client_obs in results for obs in client_obs]


def _phase_report(name: str, observations: list[_Observation]) -> dict:
    mine = [o for o in observations if o.phase == name]
    failures = [o for o in mine if o.status != 200]
    hits = sum(1 for o in mine if o.cache == "hit")
    lookups = sum(1 for o in mine if o.cache in ("hit", "miss"))
    return {
        "name": name,
        "requests": len(mine),
        "failures": len(failures),
        "failure_samples": [o.error for o in failures[:3]],
        "cache_hits": hits,
        "cache_lookups": lookups,
        "cache_hit_rate": (hits / lookups) if lookups else None,
        "latency": _percentiles([o.seconds for o in mine]),
    }


def _recovery_plan(seed: int, nprocs: int = 4):
    """The fault plan for the recovery phase: one worker crash early
    enough that *every* multiprocess run hits it (op seq 3 is reached
    by any run that redistributes), plus transport delays on two links
    so recovery is exercised under perturbed message timing."""
    import random

    from ..faults import FaultPlan, TransportDelay, WorkerCrash

    rng = random.Random(int(seed))
    return FaultPlan(
        faults=(
            WorkerCrash(rank=rng.randrange(nprocs), at_op=3),
            TransportDelay(src=0, dst=1, seconds=0.002, last=16),
            TransportDelay(src=rng.randrange(1, nprocs), dst=0,
                           seconds=0.001, last=16),
        ),
        seed=int(seed),
    )


def _run_recovery(
    base_url: str,
    registry: WorkloadRegistry,
    smoke: bool,
    seed: int,
    timeout: float,
) -> dict:
    """The chaos acceptance property, executed over HTTP: a serial
    ``/run`` and two multiprocess ``/run``s of the same config, where
    the multiprocess fleet crashes mid-workload (per the active fault
    plan), restarts, and replays.  Recovered runs must produce the
    same ``solution_sha256`` as the uninterrupted serial run."""
    name = "adi" if "adi" in registry.names() else registry.names()[0]
    spec = registry.get(name)
    params: dict = {}
    if "size" in spec.defaults:
        params["size"] = 12 if smoke else 16
    if "iterations" in spec.defaults:
        params["iterations"] = 1
    if "steps" in spec.defaults:
        params["steps"] = 2

    probes = []
    for probe_seed in (seed + 7701, seed + 7702):
        probe: dict = {"workload": name, "seed": probe_seed, "params": params}
        for backend in ("serial", "multiprocess"):
            payload = dict(
                params, workload=name, seed=probe_seed, backend=backend
            )
            t0 = time.perf_counter()
            try:
                status, headers, body = _http_post(
                    f"{base_url}/run", payload, timeout
                )
                sha = None
                if status == 200:
                    try:
                        sha = json.loads(body).get("solution_sha256")
                    except (ValueError, AttributeError):
                        sha = None
                probe[backend] = {
                    "status": status,
                    "solution_sha256": sha,
                    "seconds": round(time.perf_counter() - t0, 4),
                    "incident": headers.get("X-Repro-Incident-Id"),
                    "error": None if status == 200
                             else body.decode(errors="replace")[:200],
                }
            except Exception as exc:
                probe[backend] = {
                    "status": 0, "solution_sha256": None,
                    "seconds": round(time.perf_counter() - t0, 4),
                    "incident": None, "error": str(exc),
                }
        probe["identical"] = (
            probe["serial"]["solution_sha256"] is not None
            and probe["serial"]["solution_sha256"]
            == probe["multiprocess"]["solution_sha256"]
        )
        probes.append(probe)

    failures = sum(
        1 for p in probes for b in ("serial", "multiprocess")
        if p[b]["status"] != 200
    )
    return {
        "workload": name,
        "probes": probes,
        "failures": failures,
        "identical": all(p["identical"] for p in probes),
    }


def run_loadtest(
    url: str | None = None,
    clients: int = 8,
    rounds: int = 3,
    workloads: list[str] | None = None,
    registry: WorkloadRegistry | None = None,
    *,
    smoke: bool = False,
    seed: int = DEFAULT_SEED,
    out: str | None = "BENCH_SERVE.json",
    metrics_out: str | None = None,
    trajectory: str | None = None,
    check: bool = False,
    quiet: bool = False,
    timeout: float = 120.0,
    chaos: bool = False,
    chaos_seed: int | None = None,
) -> dict:
    """Run the two-phase load test; return (and optionally write) the report.

    ``url=None`` starts an in-process :class:`~repro.serve.ServerThread`
    around a fresh :class:`~repro.serve.PlanningService` and tears it
    down afterwards; otherwise the running server at ``url`` is
    tested (its caches are *not* cleared — hit rates then reflect its
    real state).  ``check=True`` raises :class:`LoadtestError` unless
    all three serving properties hold *and* the final ``/metrics``
    scrape contains samples for every series in :data:`REQUIRED_SERIES`.
    The raw Prometheus exposition is written to ``metrics_out`` (the
    snapshot artifact CI uploads next to ``BENCH_SERVE.json``), and
    ``trajectory`` names a JSONL file the report is appended to as one
    :class:`~repro.obs.trajectory.TrajectoryStore` entry (kind
    ``"serve"``, or ``"chaos"`` in chaos mode) for the regression
    sentinel's history.

    ``chaos=True`` activates a seeded :class:`~repro.faults.FaultPlan`
    for the duration of the test (in-process server only — the plan
    lives in this process), injects request-level faults during both
    phases, and appends a *recovery* phase exercising worker-crash
    fleet restarts; the ``check`` gate then asserts the robustness
    properties instead of the steady-state ones (see module docstring).
    """
    from ..obs.trajectory import TrajectoryStore, environment_fingerprint

    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if chaos and url is not None:
        raise ValueError(
            "chaos mode needs the in-process server (url=None): the "
            "fault plan is activated in this process and cannot reach "
            "a remote one"
        )
    registry = registry if registry is not None else REGISTRY
    items = _request_set(registry, workloads, smoke)

    chaos_plan = recovery_plan = None
    if chaos:
        from ..faults import FaultPlan
        from ..obs.flight import flight_recorder

        cseed = int(chaos_seed if chaos_seed is not None else seed)
        chaos_plan = FaultPlan.chaos(cseed)
        recovery_plan = _recovery_plan(cseed)

    started_server = None
    if url is None:
        from .http import ServerThread
        from .service import PlanningService

        started_server = ServerThread(
            PlanningService(registry=registry), max_workers=clients
        ).start()
        url = started_server.url
    base_url = url.rstrip("/")

    try:
        # phase 1 — unique configs: every request gets its own seed, so
        # every response is computed (cold-path latencies, all misses)
        unique_lists = [
            [
                (endpoint, dict(params, workload=name,
                                seed=seed + 1000 + client * len(items) + i))
                for i, (endpoint, name, params) in enumerate(items)
            ]
            for client in range(clients)
        ]
        # phase 2 — repeated configs: one fixed seed, all clients replay
        # the same set `rounds` times (steady-state cache behaviour)
        repeated = [
            (endpoint, dict(params, workload=name, seed=seed))
            for endpoint, name, params in items
        ]
        repeated_lists = [list(repeated) * rounds for _ in range(clients)]

        recovery = None
        if chaos:
            from ..faults import injected

            def _restart_count() -> int:
                return sum(
                    1 for i in flight_recorder.incidents()
                    if i.get("reason") == "backend fleet restart"
                )

            # phases run under the request-fault plan (delays / 500s /
            # dropped connections at the HTTP layer)
            with injected(chaos_plan):
                observations = _run_phase(
                    base_url, "unique", unique_lists, timeout
                )
                observations += _run_phase(
                    base_url, "repeated", repeated_lists, timeout
                )
            # the recovery phase swaps in the worker-crash + transport-
            # delay plan: every multiprocess run crashes a worker and
            # must restart + replay to a bitwise-identical result
            restarts_before = _restart_count()
            with injected(recovery_plan):
                recovery = _run_recovery(
                    base_url, registry, smoke, seed, timeout
                )
            recovery["fleet_restarts"] = _restart_count() - restarts_before
        else:
            observations = _run_phase(base_url, "unique", unique_lists, timeout)
            observations += _run_phase(base_url, "repeated", repeated_lists, timeout)

        # byte-identity: within each identical-request group, every
        # response body must hash the same
        groups: dict[str, set[str]] = {}
        for o in observations:
            if o.status == 200:
                groups.setdefault(o.key, set()).add(o.digest)
        divergent = sorted(k for k, v in groups.items() if len(v) > 1)

        try:
            status, _, stats_body = _http_post(
                f"{base_url}/stats", {}, timeout
            )
            server_stats = json.loads(stats_body) if status == 200 else None
        except Exception:
            server_stats = None

        # scrape the Prometheus exposition while the server is still up
        metrics = _scrape_metrics(base_url, timeout)
    finally:
        if started_server is not None:
            started_server.stop()

    phases = [
        _phase_report("unique", observations),
        _phase_report("repeated", observations),
    ]
    report = {
        "schema": CHAOS_SCHEMA if chaos else SERVE_SCHEMA,
        "smoke": bool(smoke),
        "env": environment_fingerprint(),
        "base_url": base_url,
        "in_process_server": started_server is not None,
        "clients": clients,
        "rounds": rounds,
        "workloads": list(workloads or registry.names()),
        "request_set": [
            {"endpoint": e, "workload": w, "params": p} for e, w, p in items
        ],
        "phases": phases,
        "total_requests": len(observations),
        "total_failures": sum(p["failures"] for p in phases),
        "byte_identical": not divergent,
        "divergent_requests": divergent[:5],
        "latency": _percentiles([o.seconds for o in observations]),
        "latency_method": LATENCY_METHOD,
        "server_stats": server_stats,
        "metrics": {k: v for k, v in metrics.items() if k != "text"},
    }
    if chaos:
        # injected failures are expected; what must hold is that every
        # server-side failure is *attributable* — a 5xx without an
        # incident ID is a hole in the post-mortem story
        uncovered = [
            o for o in observations if o.status >= 500 and not o.incident
        ]
        injected_failures = sum(
            1 for o in observations if o.status >= 500 or o.status == 0
        )
        report["chaos"] = {
            "seed": cseed,
            "request_fault_plan": chaos_plan.to_json(),
            "recovery_fault_plan": recovery_plan.to_json(),
            "injected_failures": injected_failures,
            "uncovered_5xx": len(uncovered),
            "recovery": recovery,
        }

    if not quiet:
        for p in phases:
            lat = p["latency"]
            rate = p["cache_hit_rate"]
            print(
                f"  {p['name']:9s} {p['requests']:4d} requests, "
                f"{p['failures']} failed, "
                f"p50 {lat['p50_ms']:.1f} ms, p99 {lat['p99_ms']:.1f} ms, "
                f"hit rate {'n/a' if rate is None else f'{rate:.0%}'}"
            )
        print(f"  byte-identical responses: {report['byte_identical']}")
        if chaos:
            c = report["chaos"]
            print(
                f"  chaos: {c['injected_failures']} injected failure(s), "
                f"{c['uncovered_5xx']} uncovered 5xx, "
                f"{c['recovery']['fleet_restarts']} fleet restart(s), "
                f"recovery identical: {c['recovery']['identical']}"
            )

    if chaos and out == "BENCH_SERVE.json":
        out = "BENCH_CHAOS.json"  # never clobber the steady-state bench
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2)
        if not quiet:
            print(f"  wrote {out}")
    if metrics_out and metrics.get("text"):
        with open(metrics_out, "w") as fh:
            fh.write(metrics["text"])
        if not quiet:
            print(f"  wrote {metrics_out}")
    if trajectory:
        entry = TrajectoryStore(trajectory).append(
            "chaos" if chaos else "serve", report
        )
        if not quiet:
            print(f"  appended to {trajectory} (env {entry['env_digest']})")

    if check and chaos:
        problems = []
        if not report["byte_identical"]:
            problems.append(
                f"non-identical responses for identical requests under "
                f"chaos: {divergent[:2]}"
            )
        if report["chaos"]["uncovered_5xx"]:
            problems.append(
                f"{report['chaos']['uncovered_5xx']} 5xx response(s) "
                f"without an X-Repro-Incident-Id header"
            )
        client_errors = sum(
            1 for o in observations if 400 <= o.status < 500
        )
        if client_errors:
            problems.append(
                f"{client_errors} 4xx response(s) — injected faults must "
                f"not surface as client errors"
            )
        rec = report["chaos"]["recovery"]
        if rec["failures"]:
            problems.append(
                f"{rec['failures']} recovery-phase request(s) failed"
            )
        if not rec["identical"]:
            problems.append(
                "recovered multiprocess runs are not bitwise-identical "
                "to the serial reference"
            )
        if rec["fleet_restarts"] < 1:
            problems.append(
                "no fleet restart observed — the crash fault never fired"
            )
        if not metrics["scraped"]:
            problems.append(f"/metrics scrape failed: {metrics['error']}")
        if problems:
            raise LoadtestError(
                "chaos load test failed: " + "; ".join(problems)
            )
        return report

    if check:
        problems = []
        if report["total_failures"]:
            problems.append(f"{report['total_failures']} failed request(s)")
        if not report["byte_identical"]:
            problems.append(
                f"non-identical responses for identical requests: "
                f"{divergent[:2]}"
            )
        repeated_rate = phases[1]["cache_hit_rate"]
        if repeated_rate is None or repeated_rate <= 0.5:
            problems.append(
                f"repeated-config cache hit rate "
                f"{'n/a' if repeated_rate is None else f'{repeated_rate:.0%}'} "
                f"(need > 50%)"
            )
        if not metrics["scraped"]:
            problems.append(f"/metrics scrape failed: {metrics['error']}")
        elif metrics["missing_series"]:
            problems.append(
                "required metric series missing samples: "
                + ", ".join(metrics["missing_series"])
            )
        if problems:
            raise LoadtestError(
                "serve load test failed: " + "; ".join(problems)
            )
    return report
