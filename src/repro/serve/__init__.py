"""``repro.serve`` — the multi-tenant async planning service.

The :class:`~repro.api.Session` facade is one user in one process;
this package serves it: an asyncio HTTP tier exposing ``plan`` /
``run`` / ``trace`` / ``bench`` (plus ``/workloads`` and ``/stats``)
over the workload registry, with a **session pool** and a **shared
cross-session cache** so repeated requests hit memoized plans and
stored byte-identical responses instead of recomputing — the paper's
one-program-one-machine compiler decision, industrialized.

Layers (each usable on its own):

- :class:`~repro.serve.service.PlanningService` — the whole service
  with no socket: routes, session pool, response cache, counters;
- :class:`~repro.serve.pool.SessionPool` /
  :class:`~repro.serve.cache.ResponseCache` — the sharing machinery
  (one :class:`~repro.runtime.redistribute.PlanCache` across all
  pooled sessions; fingerprint-keyed response bytes);
- :mod:`repro.serve.http` — the stdlib asyncio front end
  (:func:`serve_forever` for the CLI, :class:`ServerThread` for
  in-process testing);
- :mod:`repro.serve.loadtest` — N concurrent clients × registered
  workloads, writing p50/p99 latency and cache hit rates to
  ``BENCH_SERVE.json`` (``python -m repro serve --loadtest``);
- :mod:`repro.serve.fastapi_app` — optional FastAPI adapter (extra).

Quickstart::

    python -m repro serve                 # listen on 127.0.0.1:8642
    curl 'http://127.0.0.1:8642/plan?workload=adi&size=64&seed=0'
    curl 'http://127.0.0.1:8642/stats'   # watch the caches fill

or in-process::

    from repro.serve import PlanningService

    with PlanningService() as svc:
        response = svc.dispatch("GET", "/run?workload=adi&size=32&seed=0")
        report = response.json

Determinism contract: a request carries an explicit ``seed`` (default
``repro.DEFAULT_SEED``); equal requests produce **byte-identical**
JSON bodies whether computed or replayed from cache, and the bodies
are exactly the CLI's ``--json`` payloads.
"""

from .cache import ResponseCache, request_fingerprint
from .http import ServeServer, ServerThread, serve_forever
from .loadtest import LoadtestError, run_loadtest
from .pool import SessionPool
from .service import ENDPOINTS, PlanningService, ServeResponse

__all__ = [
    "ENDPOINTS",
    "LoadtestError",
    "PlanningService",
    "ResponseCache",
    "ServeResponse",
    "ServeServer",
    "ServerThread",
    "SessionPool",
    "request_fingerprint",
    "run_loadtest",
    "serve_forever",
]
