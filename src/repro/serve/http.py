"""The asyncio HTTP/1.1 front end over :class:`~repro.serve.PlanningService`.

Stdlib only: ``asyncio.start_server`` accepts connections, a minimal
HTTP/1.1 parser reads request line + headers + Content-Length body,
and the (CPU-bound, numpy-heavy) service dispatch runs on a
``ThreadPoolExecutor`` so the event loop keeps accepting while
workloads execute — N in-flight requests share the one
:class:`PlanningService` and its caches.  Keep-alive is honoured, so
a load-test client reuses its connection across a whole request
sequence.

Three entry points:

- :class:`ServeServer` — the asyncio server object (``await start()``
  inside a running loop);
- :class:`ServerThread` — the server on a daemon thread with its own
  loop; ``with ServerThread(service) as url:`` is how the tests and
  the load-test harness get a real HTTP endpoint in-process;
- :func:`serve_forever` — the blocking CLI spelling
  (``python -m repro serve``).

For a FastAPI/uvicorn deployment instead, see
:func:`repro.serve.fastapi_app.create_app` (optional extra — the
stdlib server is the supported default).
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from urllib.parse import urlsplit

from ..faults import plan as _faults
from ..obs.flight import flight_recorder
from .service import ENDPOINTS, PlanningService, ServeResponse

__all__ = ["ServeServer", "ServerThread", "serve_forever"]

_PHRASES = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}

#: refuse request bodies beyond this (the service takes small JSON)
MAX_BODY_BYTES = 1 << 20


class ServeServer:
    """One asyncio HTTP server bound to a :class:`PlanningService`."""

    def __init__(
        self,
        service: PlanningService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 8,
        request_deadline: float | None = None,
    ):
        self.service = service
        self.host = host
        self.port = port  # 0 = ephemeral; rewritten by start()
        #: per-request wall-clock budget in seconds (None = unlimited);
        #: a dispatch that overruns answers 503 + Retry-After with an
        #: incident ID (the executor thread finishes in the background
        #: — threads cannot be cancelled — but the client is unblocked)
        self.request_deadline = request_deadline
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._server: asyncio.AbstractServer | None = None
        #: requests seen per route (1-based ordinals, the coordinate
        #: RequestFault specs address; event-loop-thread only)
        self._route_requests: dict[str, int] = {}

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=False, cancel_futures=True)
        self.service.close()

    # -- per-connection loop ----------------------------------------------
    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line in (b"\r\n", b"\n"):
                    break
                try:
                    method, target, version = (
                        request_line.decode("latin-1").strip().split(" ", 2)
                    )
                except ValueError:
                    self._write(writer, ServeResponse(400, '{"error": "malformed request line"}'))
                    break
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = line.decode("latin-1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", 0))
                except ValueError:
                    length = -1
                if length < 0 or length > MAX_BODY_BYTES:
                    self._write(writer, ServeResponse(413, '{"error": "request body too large"}'))
                    break
                body = await reader.readexactly(length) if length else b""

                # fault injection (off unless a FaultPlan is active):
                # the nth request on a route can be delayed, answered
                # 500 without dispatching, or dropped on the floor
                route = urlsplit(target).path.rstrip("/") or "/"
                fault = self._injected_fault(route)
                if fault is not None:
                    if fault.kind == "delay":
                        await asyncio.sleep(fault.seconds)
                    elif fault.kind == "error":
                        self._write(writer, self._fault_response(route, fault))
                        await writer.drain()
                        break
                    elif fault.kind == "drop":
                        break  # connection closes with no response

                try:
                    response = await asyncio.wait_for(
                        loop.run_in_executor(
                            self._executor,
                            self.service.dispatch, method, target, body,
                        ),
                        timeout=self.request_deadline,
                    )
                except asyncio.TimeoutError:
                    response = self._deadline_response(route)
                keep_alive = (
                    version != "HTTP/1.0"
                    and headers.get("connection", "").lower() != "close"
                )
                self._write(writer, response, keep_alive=keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # client went away mid-request
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # -- fault + deadline plumbing ----------------------------------------
    def _injected_fault(self, route: str):
        """The active plan's fault for this (route, ordinal), if any.
        Counts every request per route; runs on the event-loop thread
        only, so the counter needs no lock."""
        plan = _faults.active_plan()
        if plan is None:
            return None
        nth = self._route_requests.get(route, 0) + 1
        self._route_requests[route] = nth
        return plan.request_fault(route, nth)

    @staticmethod
    def _fault_response(route: str, fault) -> ServeResponse:
        incident = flight_recorder.incident(
            f"injected request fault on {route}",
            attrs={"route": route, "kind": fault.kind,
                   "at_request": fault.at_request},
        )
        return ServeResponse(
            500,
            json.dumps({"error": f"injected fault on {route}"}, indent=2),
            {"X-Repro-Incident-Id": incident["incident_id"],
             "X-Repro-Cache": "bypass"},
        )

    def _deadline_response(self, route: str) -> ServeResponse:
        incident = flight_recorder.incident(
            f"request deadline exceeded on {route}",
            attrs={"route": route, "deadline": self.request_deadline},
        )
        return ServeResponse(
            503,
            json.dumps(
                {"error": f"request exceeded the {self.request_deadline}s "
                          f"deadline"},
                indent=2,
            ),
            {"Retry-After": "1",
             "X-Repro-Incident-Id": incident["incident_id"],
             "X-Repro-Cache": "bypass"},
        )

    @staticmethod
    def _write(
        writer: asyncio.StreamWriter,
        response: ServeResponse,
        keep_alive: bool = False,
    ) -> None:
        payload = response.body.encode()
        phrase = _PHRASES.get(response.status, "Unknown")
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(payload)),
            "Connection": "keep-alive" if keep_alive else "close",
            **response.headers,
        }
        head = f"HTTP/1.1 {response.status} {phrase}\r\n" + "".join(
            f"{k}: {v}\r\n" for k, v in headers.items()
        ) + "\r\n"
        writer.write(head.encode("latin-1") + payload)


class ServerThread:
    """The server on a daemon thread — an in-process HTTP endpoint.

    ::

        with ServerThread(PlanningService()) as url:
            urllib.request.urlopen(f"{url}/healthz")

    The thread owns its own event loop; ``stop()`` (or leaving the
    ``with`` block) shuts the loop down and joins the thread.
    """

    def __init__(
        self,
        service: PlanningService | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 8,
        request_deadline: float | None = None,
    ):
        self.service = service if service is not None else PlanningService()
        self._server = ServeServer(
            self.service, host=host, port=port, max_workers=max_workers,
            request_deadline=request_deadline,
        )
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return self._server.url

    @property
    def port(self) -> int:
        return self._server.port

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("serve thread failed to start within 30s")
        if self._startup_error is not None:
            raise RuntimeError(
                f"serve thread failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self._server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self._server.close()

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def __enter__(self) -> str:
        self.start()
        return self.url

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_forever(
    service: PlanningService | None = None,
    host: str = "127.0.0.1",
    port: int = 8642,
    max_workers: int = 8,
    quiet: bool = False,
    request_deadline: float | None = None,
) -> None:
    """Run the server until interrupted — ``python -m repro serve``."""
    import logging

    # one structured line per request (JSON on stderr) unless silenced
    logger = logging.getLogger("repro.serve")
    if not quiet and not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
    service = service if service is not None else PlanningService()

    async def _run() -> None:
        server = ServeServer(
            service, host=host, port=port, max_workers=max_workers,
            request_deadline=request_deadline,
        )
        await server.start()
        if not quiet:
            print(f"repro.serve listening on {server.url}")
            print("  endpoints: " + " ".join(ENDPOINTS))
            print(f"  try: curl '{server.url}/plan?workload=adi&size=32'")
        try:
            await asyncio.Event().wait()  # until cancelled
        finally:
            await server.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        if not quiet:
            print("\nrepro.serve stopped")
