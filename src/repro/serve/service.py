"""The transport-agnostic planning service.

:class:`PlanningService` is the whole multi-tenant story with no
socket in sight: it owns the session pool, the shared cross-session
:class:`~repro.runtime.redistribute.PlanCache`, and the response
cache, and maps ``(method, path, params)`` onto the workload registry:

========== ====== ======================================================
path       verbs  meaning
========== ====== ======================================================
/workloads GET    the registry: names, defaults, descriptions
/plan      GET/POST run the automatic distribution planner
/run       GET/POST execute a workload; typed RunResult JSON
/trace     GET/POST record + simulate; typed TraceResult JSON
/bench     GET/POST wall-clock repetitions (never cached)
/adapt     GET/POST online adaptive redistribution; typed AdaptResult
/stats     GET    plan-cache, response-cache, pool and request counters
/healthz   GET    liveness + version + uptime
/metrics   GET    Prometheus text exposition of the obs registry
========== ====== ======================================================

Request parameters ride in the query string (values parsed as JSON
scalars where possible) and/or a JSON object body; body keys win.
Common knobs: ``workload`` (required on stage endpoints), ``nprocs``,
``cost_model``, ``seed``, plus the stage options (``cost_mode`` /
``method`` for plan, ``backend`` for run and bench, ``overlap`` /
``compact`` for trace, ``repeats`` for bench).  Every other key must
be a registered parameter of the named workload — unknown keys are a
400, exactly like the session API's ``TypeError``.

Responses are the **byte-identical** ``json_str()`` payloads the CLI's
``--json`` flags print (that is the service/CLI consistency contract),
so deterministic stages are cached across sessions by config
fingerprint: a hit replays the stored bytes and says so in the
``X-Repro-Cache`` header, never in the body.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

from ..api.config import BACKEND_NAMES, SessionConfig, resolve_cost_model
from ..api.registry import REGISTRY, WorkloadRegistry
from ..api.results import _jsonable
from ..api.session import SessionClosedError
from ..backend.multiprocess import BackendError
from ..defaults import DEFAULT_SEED
from ..faults.breaker import CircuitBreaker
from ..obs import metrics as _obs
from ..obs.flight import flight_recorder
from ..obs.tracing import request_scope, span as _span
from ..obs.trajectory import environment_fingerprint
from ..runtime.redistribute import PlanCache
from .cache import ResponseCache, request_fingerprint
from .pool import SessionPool

__all__ = ["PlanningService", "ServeResponse", "ENDPOINTS"]

#: the service surface (stage endpoints enumerate the registry)
ENDPOINTS = ("/workloads", "/plan", "/run", "/trace", "/bench", "/adapt",
             "/stats", "/healthz", "/metrics")

#: one structured line per request lands here (serve_forever attaches a
#: stderr handler; under test the logger stays silent unless configured)
_LOG = logging.getLogger("repro.serve")

_HTTP_REQUESTS = _obs.counter(
    "repro_http_requests_total",
    "Service requests, by route, status code and cache tier.",
    ("route", "status", "cache"),
)
_HTTP_SECONDS = _obs.histogram(
    "repro_http_request_seconds",
    "Service request latency in seconds, by route.",
    ("route",),
)
_HTTP_RETRIES = _obs.counter(
    "repro_http_retries_total",
    "Idempotent-GET retries performed inside the service, by route.",
    ("route",),
)
_CIRCUIT_TRANSITIONS = _obs.counter(
    "repro_circuit_transitions_total",
    "Per-route circuit-breaker state transitions.",
    ("route", "state"),
)

#: exceptions a fleet restart / fresh session might cure — eligible
#: for in-service retry (idempotent GETs) and mapped to 503 + Retry-After
#: rather than 500 when retries are exhausted
RECOVERABLE = (BackendError, MemoryError, SessionClosedError)

#: stage endpoints whose responses are pure functions of the request
#: fingerprint (bench is wall-clock, so it is never cached)
CACHEABLE = frozenset({"plan", "run", "trace", "adapt"})

#: per-stage option knobs (everything else must be a workload param)
_STAGE_OPTIONS = {
    "plan": ("cost_mode", "method"),
    "run": ("backend",),
    "trace": ("overlap", "compact"),
    "bench": ("backend", "repeats"),
    "adapt": ("mode", "window"),
}


@dataclass
class ServeResponse:
    """One HTTP-shaped answer: status, JSON body string, extra headers."""

    status: int
    body: str
    headers: dict = field(default_factory=dict)

    @property
    def json(self):
        """The parsed body (tests and in-process callers)."""
        return json.loads(self.body)


def _error(status: int, message: str) -> ServeResponse:
    return ServeResponse(
        status, json.dumps({"error": str(message)}, indent=2),
        {"X-Repro-Cache": "bypass"},
    )


def _coerce(raw: str):
    """Query-string value -> typed value: JSON scalar when it parses
    (``64`` -> int, ``true`` -> bool, ``null`` -> None), else string."""
    try:
        return json.loads(raw)
    except (json.JSONDecodeError, ValueError):
        return raw


class PlanningService:
    """Multi-tenant plan/run/trace/bench over the workload registry.

    One instance is the whole shared state of a server: construct it
    once, dispatch from as many threads as you like (``dispatch`` is
    thread-safe; workload execution itself runs on the caller's
    thread, which is how the asyncio front end achieves concurrency —
    one executor thread per in-flight request, all hitting the same
    caches).
    """

    def __init__(
        self,
        registry: WorkloadRegistry | None = None,
        *,
        max_idle_sessions: int = 4,
        response_cache_capacity: int = 256,
        plan_cache_capacity: int = 128,
        default_nprocs: int = 4,
        default_cost_model: str = "Paragon",
        observability: bool = True,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 5.0,
        get_retries: int = 2,
        retry_backoff: float = 0.05,
        retry_after_seconds: int = 1,
    ):
        self.registry = registry if registry is not None else REGISTRY
        #: the shared cross-session plan cache (``/stats`` proves reuse)
        self.plan_cache = PlanCache(capacity=plan_cache_capacity)
        self.pool = SessionPool(
            registry=self.registry,
            plan_cache=self.plan_cache,
            max_idle=max_idle_sessions,
        )
        self.responses = ResponseCache(capacity=response_cache_capacity)
        self.default_nprocs = int(default_nprocs)
        self.default_cost_model = str(default_cost_model)
        #: resilience policy (ISSUE 9): bounded exponential-backoff
        #: retry for idempotent GETs, then a per-route circuit breaker
        #: shedding load with 503 + Retry-After while a route is sick
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown = float(breaker_cooldown)
        self.get_retries = int(get_retries)
        self.retry_backoff = float(retry_backoff)
        self.retry_after_seconds = int(retry_after_seconds)
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()
        self._requests: dict[str, int] = {}
        self._errors = 0
        self._started = time.monotonic()
        #: version/git/python/numpy provenance served by /healthz (the
        #: cheap half of the fingerprint — no timed machine probes)
        self._env = environment_fingerprint(probe=False)
        #: a serving process wants its metrics recorded — flip the
        #: process-wide switch on construction unless told otherwise
        if observability:
            _obs.enable()
        _obs.registry.add_collector(self._collect_gauges)

    def _collect_gauges(self) -> None:
        """Scrape-time gauges: cache/pool state that is cheaper to pull
        than to push on every operation (includes the interning LRUs)."""
        gauge = _obs.gauge(
            "repro_cache_stat",
            "Cache and pool statistics sampled at scrape time.",
            ("source", "stat"),
        )
        for source, stats in (
            ("plan_cache", self.plan_cache.stats()),
            ("response_cache", self.responses.stats()),
            ("sessions", self.pool.stats()),
        ):
            for stat, value in stats.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    gauge.set(value, source=source, stat=stat)
        _obs.gauge(
            "repro_service_uptime_seconds",
            "Seconds since the PlanningService was constructed.",
        ).set(self.uptime_seconds())

    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        _obs.registry.remove_collector(self._collect_gauges)
        self.pool.close()

    def __enter__(self) -> "PlanningService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- dispatch ----------------------------------------------------------
    def dispatch(
        self, method: str, target: str, body: bytes | str | None = None
    ) -> ServeResponse:
        """Route one request.  ``target`` is the request path with
        optional query string; ``body`` an optional JSON object.

        Every request gets a fresh request ID (propagated to spans via
        contextvars and returned in ``X-Repro-Request-Id``), a latency
        observation, and one structured log line on the
        ``repro.serve`` logger.
        """
        route = urlsplit(target).path.rstrip("/") or "/"
        t0 = time.perf_counter()
        with request_scope() as rid:
            with _span("serve.request", route=route, method=method):
                response = self._dispatch(method, target, body)
            elapsed = time.perf_counter() - t0
            response.headers.setdefault("X-Repro-Request-Id", rid)
            tier = response.headers.get("X-Repro-Cache", "none")
            _HTTP_REQUESTS.inc(route=route, status=response.status,
                               cache=tier)
            _HTTP_SECONDS.observe(elapsed, route=route)
            # the always-on flight recorder sees every request outcome
            # (bounded; metrics may be off, this is not)
            flight_recorder.note(
                "serve.request", request_id=rid, route=route,
                status=response.status, ms=round(elapsed * 1e3, 3),
                cache=tier,
            )
            _LOG.info(json.dumps(
                {"event": "request", "request_id": rid, "route": route,
                 "status": response.status, "ms": round(elapsed * 1e3, 3),
                 "cache": tier},
                sort_keys=True))
        return response

    def _dispatch(
        self, method: str, target: str, body: bytes | str | None = None
    ) -> ServeResponse:
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        params = {k: _coerce(v) for k, v in parse_qsl(parts.query)}
        if body:
            if isinstance(body, bytes):
                body = body.decode("utf-8", errors="replace")
            if body.strip():
                try:
                    parsed = json.loads(body)
                except json.JSONDecodeError as exc:
                    return self._count(path, _error(400, f"invalid JSON body: {exc}"))
                if not isinstance(parsed, dict):
                    return self._count(
                        path, _error(400, "request body must be a JSON object")
                    )
                params.update(parsed)

        if method.upper() not in ("GET", "POST"):
            return self._count(path, _error(405, f"method {method} not allowed"))

        try:
            if path == "/workloads":
                return self._count(path, self._workloads())
            if path == "/stats":
                return self._count(path, self._stats())
            if path == "/healthz":
                return self._count(path, self._healthz())
            if path == "/metrics":
                return self._count(path, self._metrics())
            if path in ("/plan", "/run", "/trace", "/bench", "/adapt"):
                return self._count(
                    path, self._stage_guarded(path, params, method)
                )
            return self._count(
                path,
                _error(404, f"no such endpoint {path!r} "
                            f"(available: {', '.join(ENDPOINTS)})"),
            )
        except KeyError as exc:
            return self._count(path, _error(404, exc.args[0] if exc.args else exc))
        except (TypeError, ValueError) as exc:
            return self._count(path, _error(400, exc))
        except Exception as exc:  # a bug, not a bad request
            # dump a structured incident record from the crash site:
            # request/trace IDs (bound by dispatch's request_scope),
            # the request's spans, and the recorder's recent notes
            incident = flight_recorder.incident(
                f"serve 500 on {path}", error=exc,
                attrs={"route": path, "method": method},
            )
            response = _error(500, f"{type(exc).__name__}: {exc}")
            response.headers["X-Repro-Incident-Id"] = incident["incident_id"]
            return self._count(path, response)

    def _count(self, path: str, response: ServeResponse) -> ServeResponse:
        with self._lock:
            self._requests[path] = self._requests.get(path, 0) + 1
            if response.status >= 400:
                self._errors += 1
        return response

    # -- fixed endpoints ---------------------------------------------------
    def _workloads(self) -> ServeResponse:
        specs = [
            {
                "name": spec.name,
                "description": spec.description,
                "defaults": _jsonable(spec.defaults),
                "plannable": spec.plannable,
            }
            for spec in self.registry
        ]
        body = json.dumps(
            {"schema": "repro-serve-workloads/1", "workloads": specs},
            indent=2,
        )
        return ServeResponse(200, body, {"X-Repro-Cache": "bypass"})

    def _stats(self) -> ServeResponse:
        from .. import __version__

        with self._lock:
            requests = dict(sorted(self._requests.items()))
            errors = self._errors
        breakers = self.breaker_stats()
        body = json.dumps(
            {
                "schema": "repro-serve-stats/1",
                "version": __version__,
                "uptime_seconds": round(self.uptime_seconds(), 3),
                "plan_cache": self.plan_cache.stats(),
                "response_cache": self.responses.stats(),
                "sessions": self.pool.stats(),
                "breakers": breakers,
                "requests": requests,
                "errors": errors,
                "workloads": list(self.registry.names()),
                "observability": _obs.enabled(),
            },
            indent=2,
        )
        return ServeResponse(200, body, {"X-Repro-Cache": "bypass"})

    def _healthz(self) -> ServeResponse:
        from .. import __version__

        return ServeResponse(
            200,
            json.dumps(
                {
                    "ok": True,
                    "version": __version__,
                    "git_sha": self._env.get("git_sha"),
                    "python": self._env.get("python"),
                    "numpy": self._env.get("numpy"),
                    "uptime_seconds": round(self.uptime_seconds(), 3),
                    "incidents": len(flight_recorder.incidents()),
                },
                indent=2,
            ),
            {"X-Repro-Cache": "bypass"},
        )

    def _metrics(self) -> ServeResponse:
        """Prometheus text exposition of the process-wide registry."""
        return ServeResponse(
            200,
            _obs.registry.render(),
            {
                "X-Repro-Cache": "bypass",
                "Content-Type": "text/plain; version=0.0.4; charset=utf-8",
            },
        )

    # -- stage endpoints ---------------------------------------------------
    def _breaker(self, route: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(route)
            if breaker is None:
                def on_transition(old, new, route=route):
                    _CIRCUIT_TRANSITIONS.inc(route=route, state=new)
                    flight_recorder.note(
                        "serve.circuit", route=route, old=old, new=new,
                    )
                breaker = CircuitBreaker(
                    self.breaker_threshold, self.breaker_cooldown,
                    on_transition=on_transition,
                )
                self._breakers[route] = breaker
            return breaker

    def breaker_stats(self) -> dict:
        with self._lock:
            return {
                route: breaker.stats()
                for route, breaker in sorted(self._breakers.items())
            }

    def _shed(
        self, route: str, reason: str, retry_after: float,
        error: BaseException | None = None,
    ) -> ServeResponse:
        """A 503 with Retry-After and an incident ID — the last
        degradation tier (every shed is attributable, ISSUE 9)."""
        incident = flight_recorder.incident(
            f"serve 503 on {route}", error=error,
            attrs={"route": route, "reason": reason},
        )
        response = _error(503, reason)
        response.headers["Retry-After"] = str(
            max(1, int(retry_after + 0.999))
        )
        response.headers["X-Repro-Incident-Id"] = incident["incident_id"]
        return response

    def _stage_guarded(
        self, path: str, params: dict, method: str
    ) -> ServeResponse:
        """The resilience wrapper around :meth:`_stage`.

        Order of defenses: (1) the route's circuit breaker sheds
        immediately while open; (2) recoverable faults on idempotent
        GETs are retried with bounded exponential backoff (a fresh
        pooled session each attempt — the poisoned one was evicted on
        release); (3) exhausted recoverable faults become 503 +
        Retry-After with an incident ID; (4) everything else keeps the
        existing 4xx/500 mapping, but still feeds the breaker.
        """
        breaker = self._breaker(path)
        if not breaker.allow():
            return self._shed(
                path,
                f"circuit open for {path} "
                f"(recent failures reached {breaker.failure_threshold})",
                breaker.retry_after() or self.retry_after_seconds,
            )
        endpoint = path.lstrip("/")
        idempotent = method.upper() == "GET"
        attempt = 0
        while True:
            try:
                response = self._stage(endpoint, params)
            except (KeyError, TypeError, ValueError):
                # client errors (4xx upstream): breaker-neutral
                raise
            except RECOVERABLE as exc:
                if idempotent and attempt < self.get_retries:
                    delay = self.retry_backoff * (2 ** attempt)
                    attempt += 1
                    _HTTP_RETRIES.inc(route=path)
                    flight_recorder.note(
                        "serve.retry", route=path, attempt=attempt,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    time.sleep(delay)
                    continue
                breaker.record_failure()
                return self._shed(
                    path,
                    f"backend unavailable: {type(exc).__name__}: {exc}",
                    self.retry_after_seconds,
                    error=exc,
                )
            except Exception:
                # a bug: the caller's 500 path mints the incident, but
                # the breaker must still see the failure
                breaker.record_failure()
                raise
            breaker.record_success()
            return response

    def _stage(self, endpoint: str, params: dict) -> ServeResponse:
        params = dict(params)
        workload = params.pop("workload", None)
        if not workload:
            raise ValueError(
                f"/{endpoint} needs a 'workload' parameter "
                f"(registered: {', '.join(self.registry.names())})"
            )
        spec = self.registry.get(str(workload))

        nprocs = int(params.pop("nprocs", self.default_nprocs))
        cost_model = resolve_cost_model(
            params.pop("cost_model", self.default_cost_model)
        ).name
        seed = int(params.pop("seed", DEFAULT_SEED))
        options = {}
        for key in _STAGE_OPTIONS[endpoint]:
            if key in params:
                options[key] = params.pop(key)
        backend = options.get("backend")
        if backend is not None and backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {backend!r} (expected one of {BACKEND_NAMES})"
            )

        # what's left must be workload parameters — validated exactly
        # like Session.workload() (unknown keys are a 400 up the stack)
        workload_params = spec.resolve_params(params)

        fingerprint = request_fingerprint(
            endpoint,
            spec.name,
            nprocs=nprocs,
            cost_model=cost_model,
            backend=backend,
            seed=seed,
            params=workload_params,
            options=options,
        )
        cacheable = endpoint in CACHEABLE
        if cacheable:
            cached = self.responses.get(fingerprint)
            if cached is not None:
                return ServeResponse(
                    200, cached,
                    {"X-Repro-Cache": "hit",
                     "X-Repro-Fingerprint": fingerprint},
                )

        # the per-request seed rides on the *handle*, not the session
        # config: pooled sessions stay seed-agnostic, so tenants with
        # different seeds still reuse one session per (nprocs,
        # cost_model, backend) triple
        config = SessionConfig(
            nprocs=nprocs, cost_model=cost_model, backend=backend
        )
        session = self.pool.acquire(config)
        try:
            handle = session.workload(spec.name, seed=seed, **workload_params)
            if endpoint == "plan":
                result = handle.plan(
                    cost_mode=str(options.get("cost_mode", "model")),
                    method=str(options.get("method", "auto")),
                )
                body = result.json_str()
            elif endpoint == "run":
                body = handle.run().json_str()
            elif endpoint == "trace":
                overlap = options.get("overlap")
                if overlap is not None:
                    overlap = bool(overlap)
                result = handle.trace(overlap=overlap)
                body = json.dumps(
                    result.to_json(intervals=not options.get("compact", False)),
                    indent=2,
                )
            elif endpoint == "adapt":
                window = options.get("window")
                result = handle.adapt(
                    mode=str(options.get("mode", "adaptive")),
                    window=None if window is None else int(window),
                )
                body = result.json_str()
            else:  # bench
                result = handle.bench(repeats=int(options.get("repeats", 3)))
                body = result.json_str()
        finally:
            self.pool.release(session)

        if cacheable:
            self.responses.put(fingerprint, body)
        return ServeResponse(
            200, body,
            {"X-Repro-Cache": "miss" if cacheable else "bypass",
             "X-Repro-Fingerprint": fingerprint},
        )
