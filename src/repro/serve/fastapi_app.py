"""Optional FastAPI adapter over :class:`~repro.serve.PlanningService`.

The stdlib asyncio server (:mod:`repro.serve.http`) is the supported
default and has no dependencies; this module is the *extra* for
deployments that already standardize on FastAPI/uvicorn middleware,
OpenAPI docs, etc.  It is import-safe without fastapi installed —
:func:`create_app` raises a clear error at call time instead.

::

    pip install 'repro-vienna-dd[serve]'
    uvicorn --factory repro.serve.fastapi_app:create_app

Routing delegates wholesale to :meth:`PlanningService.dispatch`, so
the two front ends cannot drift: same endpoints, same parameters, same
byte-identical cached bodies.
"""

from __future__ import annotations

from .service import ENDPOINTS, PlanningService

__all__ = ["create_app"]


def create_app(service: PlanningService | None = None):
    """A FastAPI app serving the same surface as the stdlib server.

    Requires the ``serve`` extra (``pip install fastapi``); raises
    ``RuntimeError`` with install instructions when missing.
    """
    try:
        from fastapi import FastAPI, Request, Response
    except ImportError as exc:  # pragma: no cover - extra not installed in CI
        raise RuntimeError(
            "the FastAPI front end needs the optional 'serve' extra "
            "(pip install fastapi); the stdlib server "
            "(python -m repro serve) has no extra dependencies"
        ) from exc

    service = service if service is not None else PlanningService()
    app = FastAPI(
        title="repro.serve",
        description="Multi-tenant plan/run/trace/bench over the "
                    "Vienna Fortran reproduction's workload registry.",
    )
    app.state.service = service

    async def _dispatch(request: Request) -> "Response":
        import anyio

        body = await request.body()
        target = request.url.path
        if request.url.query:
            target += "?" + request.url.query
        # CPU-bound numpy work: off the event loop, like the stdlib server
        result = await anyio.to_thread.run_sync(
            service.dispatch, request.method, target, body
        )
        return Response(
            content=result.body,
            status_code=result.status,
            media_type="application/json",
            headers=result.headers,
        )

    for path in ENDPOINTS:
        app.add_api_route(path, _dispatch, methods=["GET", "POST"])

    @app.on_event("shutdown")
    async def _shutdown() -> None:  # pragma: no cover - lifecycle glue
        service.close()

    return app
