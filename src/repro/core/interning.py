"""Hash-consing and owner-map caching for distribution metadata.

The planner's memo tables, the run time's :class:`PlanCache` and the
redistribution engine all key dictionaries by :class:`Distribution`
objects and repeatedly ask the same two vectorized questions —
``owners_vec(n, p)`` along one dimension and the full ``rank_map()``
of a bound distribution.  Distributions are immutable values, so both
questions are pure functions of the key; recomputing them per lookup
is the hot-path waste this module removes:

- :func:`intern_dimdist` / :func:`intern_distribution` — hash-consing:
  structurally equal instances resolve to one canonical object, so
  hashing is computed once, equality checks short-circuit on identity,
  and per-instance caches (``rank_map``, local index arrays) are
  automatically shared by every holder of an equal value;
- :func:`owners_vec_cached` / :func:`rank_map_cached` — bounded LRU
  caches over the two owner-map queries, returning read-only arrays.
  Hit/miss counters are surfaced through
  :meth:`repro.runtime.redistribute.PlanCache.stats` so cache
  behaviour is observable wherever plan caching already is.

Everything here is semantics-free: interning and caching never change
a result, only how often it is recomputed (property-tested against the
uncached implementations).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Hashable

import numpy as np

if TYPE_CHECKING:
    from .dimdist import DimDist
    from .distribution import Distribution

__all__ = [
    "LRUCache",
    "intern_dimdist",
    "intern_distribution",
    "owners_vec_cached",
    "rank_map_cached",
    "owners_cache_stats",
    "clear_interning_caches",
]


class LRUCache:
    """A small bounded mapping with least-recently-used eviction.

    ``get``/``put`` move the touched key to the most-recent end;
    inserting past ``capacity`` evicts the least recently used entry.
    Hit/miss counters accumulate until :meth:`clear`.

    Thread-safe: the process-wide interning tables (and any
    :class:`~repro.runtime.redistribute.PlanCache` shared across
    sessions, as the ``repro.serve`` pool does) are consulted from
    concurrent request threads, so every mutation holds an internal
    lock.  ``get_or_compute`` does **not** hold the lock across
    ``compute`` — a racing thread may compute the same pure value
    twice, which is benign; a long compute must never serialize every
    other cache user.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default=None):
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], object]):
        sentinel = _MISSING
        value = self.get(key, sentinel)
        if value is sentinel:
            value = compute()
            self.put(key, value)
        return value

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._data),
            }

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data


_MISSING = object()

#: canonical instance per structurally distinct DimDist / Distribution.
#: Both tables are bounded LRUs: the *intrinsic* vocabulary of a
#: program is usually tiny, but Indirect/B_BLOCK intrinsics carry
#: per-element owner data and long-running irregular workloads mint a
#: fresh one per repartition — an unbounded table would pin them all.
_dimdist_table: LRUCache = LRUCache(capacity=512)
_dist_table: LRUCache = LRUCache(capacity=4096)

#: (dimdist, n, p) -> read-only owners vector
_owners_lru: LRUCache = LRUCache(capacity=1024)
#: distribution -> read-only rank map
_rank_map_lru: LRUCache = LRUCache(capacity=256)


def intern_dimdist(dd: "DimDist") -> "DimDist":
    """Canonical instance for a per-dimension distribution intrinsic.

    Structural equality (``type`` + ``params()``) picks the canonical
    representative; repeated interning of equal values returns the
    *same* object, so downstream caches keyed by the intrinsic share
    entries.  Bounded (LRU): data-carrying intrinsics (``Indirect``,
    ``B_BLOCK``) from churning workloads age out instead of pinning
    their owner arrays forever.
    """
    cached = _dimdist_table.get(dd)
    if cached is not None:
        return cached
    _dimdist_table.put(dd, dd)
    return dd


def intern_distribution(dist: "Distribution") -> "Distribution":
    """Canonical instance for a bound distribution (hash-consing).

    Equal distributions (same type, domain, target section, dim_map)
    resolve to one shared object, making every dict keyed by a
    distribution — planner memos, :class:`PlanCache` entries, the
    rank-map LRU — hit on identity instead of re-hashing tuples, and
    letting the instance-level ``rank_map`` cache serve all holders.
    """
    cached = _dist_table.get(dist)
    if cached is not None:
        return cached
    _dist_table.put(dist, dist)
    return dist


def owners_vec_cached(dd: "DimDist", n: int, p: int) -> np.ndarray:
    """LRU-cached :meth:`~repro.core.dimdist.DimDist.owners_vec`.

    Returns a **read-only** array (shared between callers); copy
    before mutating.  Keyed by the interned intrinsic, so equal
    intrinsics share one entry.
    """
    key = (intern_dimdist(dd), int(n), int(p))
    vec = _owners_lru.get(key)
    if vec is None:
        vec = key[0].owners_vec(n, p)
        if vec.flags.writeable:
            vec = vec.copy()
            vec.setflags(write=False)
        _owners_lru.put(key, vec)
    return vec


def rank_map_cached(dist: "Distribution") -> np.ndarray:
    """LRU-cached :meth:`~repro.core.distribution.Distribution.rank_map`.

    The per-instance cache already deduplicates repeat calls on one
    object; this cache extends the sharing to structurally equal
    instances built independently (the planner's candidate enumeration
    recreates the same layouts every run).  Read-only result.
    """
    canon = intern_distribution(dist)
    rm = _rank_map_lru.get(canon)
    if rm is None:
        rm = canon._compute_rank_map()
        _rank_map_lru.put(canon, rm)
    return rm


def owners_cache_stats() -> dict[str, int]:
    """Hit/miss/population counters of the owner-map caches.

    Surfaced through :meth:`repro.runtime.redistribute.PlanCache.stats`
    (keys prefixed ``owners_vec_`` / ``rank_map_``).
    """
    ov = _owners_lru.stats()
    rm = _rank_map_lru.stats()
    return {
        "owners_vec_hits": ov["hits"],
        "owners_vec_misses": ov["misses"],
        "owners_vec_evictions": ov["evictions"],
        "owners_vec_size": ov["size"],
        "rank_map_hits": rm["hits"],
        "rank_map_misses": rm["misses"],
        "rank_map_evictions": rm["evictions"],
        "rank_map_size": rm["size"],
        "interned_dimdists": len(_dimdist_table),
        "interned_distributions": len(_dist_table),
    }


def clear_interning_caches() -> None:
    """Drop every interning table and owner-map cache (test isolation)."""
    _dimdist_table.clear()
    _dist_table.clear()
    _owners_lru.clear()
    _rank_map_lru.clear()
