"""Alignments and the CONSTRUCT composition (paper §2.1, Definition 2).

An alignment ``alpha_A : I^A -> I^B`` relates the elements of array
``A`` to elements of array ``B`` so that corresponding elements are
guaranteed to reside on the same processor.  Given ``alpha_A`` and
``delta_B``, the distribution of ``A`` is::

    delta_A(i) = CONSTRUCT(alpha_A, delta_B) = U_{j in alpha(i)} delta_B(j)

We support the (single-valued) affine alignment family, which covers
every alignment the paper writes: identity (``A2(I,J) WITH B4(I,J)``),
axis permutation (``ALIGN D(I,J,K) WITH C(J,I,K)``), shifts, strides,
and embeddings at a constant index.  Each *target* (``B``) dimension is
described by an :class:`AxisMap`: either an affine function of exactly
one source dimension, or a constant.

:func:`construct` implements CONSTRUCT.  When the alignment merely
permutes/identifies dimensions, the induced distribution *reuses* B's
per-dimension intrinsics, so ``A``'s distribution **type** equals
``B``'s (this is what makes the paper's guarantee "the distribution
type of A1 and A2 will always be the same as that of B4" hold, and is
what DCASE type-matching observes).  General affine maps fall back to
:class:`~repro.core.dimdist.Indirect` owner tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .dimdist import DimDist, Indirect, NoDist, Replicated
from .distribution import Distribution, DistributionType
from .index_domain import IndexDomain

__all__ = ["AxisMap", "Alignment", "construct"]


@dataclass(frozen=True)
class AxisMap:
    """How one target (B) dimension is derived from the source (A) index.

    ``j_e = stride * i_{dim} + offset`` when ``dim is not None``;
    ``j_e = offset`` (a constant embedding) when ``dim is None``.
    """

    dim: int | None
    stride: int = 1
    offset: int = 0

    def __post_init__(self) -> None:
        if self.dim is not None and self.stride == 0:
            raise ValueError("axis map stride must be non-zero")

    def eval_scalar(self, index: Sequence[int]) -> int:
        if self.dim is None:
            return self.offset
        return self.stride * int(index[self.dim]) + self.offset

    def eval_vec(self, n_source: int) -> np.ndarray:
        """Target coordinates for source coordinates ``0..n_source-1``."""
        if self.dim is None:
            raise ValueError("constant axis map has no per-index vector")
        return self.stride * np.arange(n_source, dtype=np.int64) + self.offset

    def is_identity(self) -> bool:
        return self.dim is not None and self.stride == 1 and self.offset == 0


class Alignment:
    """A single-valued affine alignment ``alpha_A : I^A -> I^B``.

    Parameters
    ----------
    source_ndim:
        Rank of the aligned array ``A``.
    axis_maps:
        One :class:`AxisMap` per dimension of the align *target* ``B``.
        Each source dimension may be referenced by at most one map
        (Vienna Fortran alignment specifications are one-to-one in the
        subscript variables).
    """

    def __init__(self, source_ndim: int, axis_maps: Sequence[AxisMap]):
        self.source_ndim = int(source_ndim)
        self.axis_maps = tuple(axis_maps)
        if self.source_ndim < 1:
            raise ValueError("source rank must be >= 1")
        if not self.axis_maps:
            raise ValueError("alignment needs at least one target axis map")
        used = [m.dim for m in self.axis_maps if m.dim is not None]
        for d in used:
            if not 0 <= d < self.source_ndim:
                raise ValueError(
                    f"axis map references source dim {d}, source rank is "
                    f"{self.source_ndim}"
                )
        if len(set(used)) != len(used):
            raise ValueError("each source dimension may be used at most once")

    @property
    def target_ndim(self) -> int:
        return len(self.axis_maps)

    # -- constructors ---------------------------------------------------
    @classmethod
    def identity(cls, ndim: int) -> "Alignment":
        """``A(I,J,...) WITH B(I,J,...)``."""
        return cls(ndim, [AxisMap(d) for d in range(ndim)])

    @classmethod
    def permutation(cls, perm: Sequence[int]) -> "Alignment":
        """``A(I1,...,In) WITH B(I_perm[0]+1, ...)``: target dim ``e``
        takes source dim ``perm[e]``.  The paper's
        ``ALIGN D(I,J,K) WITH C(J,I,K)`` is ``permutation((1, 0, 2))``.
        """
        perm = [int(p) for p in perm]
        if sorted(perm) != list(range(len(perm))):
            raise ValueError(f"{perm} is not a permutation")
        return cls(len(perm), [AxisMap(p) for p in perm])

    @classmethod
    def shift(cls, ndim: int, offsets: Sequence[int]) -> "Alignment":
        """``A(I,...) WITH B(I+o1, ...)``."""
        if len(offsets) != ndim:
            raise ValueError("need one offset per dimension")
        return cls(ndim, [AxisMap(d, 1, int(o)) for d, o in enumerate(offsets)])

    # -- evaluation -------------------------------------------------------
    def map_index(self, index: Sequence[int]) -> tuple[int, ...]:
        """``alpha(i)`` for a single source index."""
        if len(index) != self.source_ndim:
            raise ValueError(
                f"index {tuple(index)} has {len(index)} dims, alignment source "
                f"rank is {self.source_ndim}"
            )
        return tuple(m.eval_scalar(index) for m in self.axis_maps)

    def check_domains(self, source: IndexDomain, target: IndexDomain) -> None:
        """Verify alpha maps all of ``source`` into ``target``."""
        if source.ndim != self.source_ndim:
            raise ValueError(
                f"source domain rank {source.ndim} != alignment source rank "
                f"{self.source_ndim}"
            )
        if target.ndim != self.target_ndim:
            raise ValueError(
                f"target domain rank {target.ndim} != alignment target rank "
                f"{self.target_ndim}"
            )
        for e, m in enumerate(self.axis_maps):
            if m.dim is None:
                lo = hi = m.offset
            else:
                n = source.shape[m.dim]
                ends = [m.offset, m.stride * (n - 1) + m.offset]
                lo, hi = min(ends), max(ends)
            if lo < 0 or hi >= target.shape[e]:
                raise ValueError(
                    f"alignment maps source outside target dim {e}: "
                    f"range [{lo}, {hi}] vs extent {target.shape[e]}"
                )

    def compose_perm(self) -> list[int | None]:
        """For each source dim, the target dim it feeds (or None)."""
        out: list[int | None] = [None] * self.source_ndim
        for e, m in enumerate(self.axis_maps):
            if m.dim is not None:
                out[m.dim] = e
        return out

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Alignment)
            and self.source_ndim == other.source_ndim
            and self.axis_maps == other.axis_maps
        )

    def __hash__(self) -> int:
        return hash((self.source_ndim, self.axis_maps))

    def __repr__(self) -> str:
        names = "IJKLMN"
        parts = []
        for m in self.axis_maps:
            if m.dim is None:
                parts.append(str(m.offset))
            else:
                t = names[m.dim] if m.dim < len(names) else f"I{m.dim}"
                if m.stride != 1:
                    t = f"{m.stride}*{t}"
                if m.offset:
                    t = f"{t}+{m.offset}" if m.offset > 0 else f"{t}{m.offset}"
                parts.append(t)
        return f"ALIGN ({', '.join(names[d] if d < len(names) else f'I{d}' for d in range(self.source_ndim))}) WITH B({', '.join(parts)})"


def construct(
    alignment: Alignment,
    dist_b: Distribution,
    source_domain: IndexDomain | Sequence[int],
) -> Distribution:
    """CONSTRUCT(alpha, delta_B): the induced distribution of ``A``.

    Implements the paper's composition rule.  Dimension handling:

    - a target dim that is the *identity* image of a source dim of the
      same extent reuses B's per-dimension intrinsic (type-preserving);
    - a general affine image induces an :class:`Indirect` owner table
      for the source dim;
    - a target dim held at a constant pins the corresponding processor
      dimension to the slot owning that constant (the section is
      collapsed there);
    - source dims not mentioned by the alignment are undistributed
      (``:``) — their elements ride along with the mapped dims.

    Raises ``NotImplementedError`` for a constant-embedded *replicated*
    target dimension (a corner the paper never exercises).
    """
    if not isinstance(source_domain, IndexDomain):
        source_domain = IndexDomain(source_domain)
    alignment.check_domains(source_domain, dist_b.domain)

    src_dims: list[DimDist | None] = [None] * source_domain.ndim
    # (source distributed dim j in A-dim order) -> B section dim
    sec_dim_of_src: dict[int, int] = {}
    pinned: dict[int, int] = {}  # B section dim -> pinned slot

    for e, m in enumerate(alignment.axis_maps):
        b_dd = dist_b.dtype.dims[e]
        b_secdim = dist_b._secdim_of[e]
        n_b = dist_b.shape[e]
        p_e = dist_b._slots(e)
        if m.dim is None:
            # constant embedding: pin the processor dimension (if any)
            if b_secdim is None:
                continue
            if isinstance(b_dd, Replicated):
                raise NotImplementedError(
                    "constant embedding into a REPLICATED dimension"
                )
            pinned[b_secdim] = b_dd.owner_of(m.offset, n_b, p_e)
            continue
        if b_secdim is None:
            # target dim undistributed: source dim is undistributed too
            src_dims[m.dim] = NoDist()
            continue
        n_a = source_domain.shape[m.dim]
        if m.is_identity() and n_a == n_b:
            src_dims[m.dim] = b_dd  # type-preserving reuse
        else:
            owners_b = b_dd.owners_vec(n_b, p_e)
            src_dims[m.dim] = Indirect(owners_b[m.eval_vec(n_a)])
        sec_dim_of_src[m.dim] = b_secdim

    for d in range(source_domain.ndim):
        if src_dims[d] is None:
            src_dims[d] = NoDist()

    # Build the target section: collapse pinned dims of B's section.
    live_b_secdims = sorted(
        set(sec_dim_of_src.values())
    )  # B section dims that survive
    new_target = _collapse_section(dist_b, pinned, live_b_secdims)

    # dim_map: j-th distributed source dim (ascending d) -> new section dim.
    new_pos_of_b_secdim = {b: i for i, b in enumerate(live_b_secdims)}
    dim_map = [
        new_pos_of_b_secdim[sec_dim_of_src[d]]
        for d in sorted(sec_dim_of_src)
    ]

    return Distribution(
        DistributionType(src_dims), source_domain, new_target, dim_map=dim_map
    )


def _collapse_section(
    dist_b: Distribution, pinned: dict[int, int], live: list[int]
):
    """Restrict B's target section: pin some dims, keep ``live`` dims.

    Section dims of B that are neither pinned nor live (i.e. B dims
    distributed there but not reached by the alignment image) would
    leave A's elements owned by *every* slot along them; Vienna Fortran
    resolves this by replicating A across those processors.  We pin
    them to slot 0 instead (primary copy) — a documented simplification
    that keeps ownership single-valued.
    """
    parent = dist_b.target.parent
    subs: list[slice | int] = []
    sec_dim = 0
    for sub in dist_b.target._subs:
        if isinstance(sub, int):
            subs.append(sub)
            continue
        start, stop, step = sub
        if sec_dim in pinned:
            subs.append(start + pinned[sec_dim] * step)
        elif sec_dim in live:
            subs.append(slice(start, stop, step))
        else:
            subs.append(start)  # unreached dim: primary copy at slot 0
        sec_dim += 1
    return parent.section(*subs)
