"""Dynamically distributed arrays and the *connect* relation (paper §2.3).

A ``DYNAMIC`` declaration makes the association between an array and
its distribution changeable at run time.  Within a scope, dynamically
distributed arrays form equivalence classes under **connect**:

1. each class has one *primary* array ``B`` and zero or more
   *secondary* arrays; the class is written ``C(B)``;
2. a secondary's distribution is defined by referring to the primary,
   via *distribution extraction* (``CONNECT (=B)``) or an *alignment*
   specification (``CONNECT A(I,J) WITH B(I,J)``);
3. distribute statements apply to primaries only and redistribute the
   whole class so the connection is maintained;
4. distributions of different classes are independent;
5. connect does not extend across procedure boundaries (enforced by
   :mod:`repro.lang.program` scoping).

This module is the pure-model part: classes, connections, and the rule
for deriving a secondary's distribution from the primary's.  The data
motion lives in :mod:`repro.runtime.redistribute`.
"""

from __future__ import annotations

from typing import Sequence

from .alignment import Alignment, construct
from .distribution import Distribution, DistributionType
from .index_domain import IndexDomain
from .query import Range

__all__ = ["Connection", "Extraction", "Aligned", "DynamicAttr", "ConnectClass"]


class Connection:
    """How a secondary array is connected to its primary (§2.3 item 2)."""

    def derive(
        self, primary_dist: Distribution, secondary_domain: IndexDomain
    ) -> Distribution:
        raise NotImplementedError


class Extraction(Connection):
    """Distribution extraction, ``CONNECT (=B)``: the secondary always
    has the *same distribution type* as the primary, applied to its own
    index domain (paper Example 2, array ``A1``)."""

    def derive(
        self, primary_dist: Distribution, secondary_domain: IndexDomain
    ) -> Distribution:
        if secondary_domain.ndim != primary_dist.ndim:
            raise ValueError(
                f"distribution extraction needs equal rank: secondary has "
                f"{secondary_domain.ndim}, primary has {primary_dist.ndim}"
            )
        return Distribution(
            primary_dist.dtype,
            secondary_domain,
            primary_dist.target,
            dim_map=primary_dist.dim_map,
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Extraction)

    def __hash__(self) -> int:
        return hash("Extraction")

    def __repr__(self) -> str:
        return "CONNECT (=B)"


class Aligned(Connection):
    """Alignment connection, ``CONNECT A(I,J) WITH B(...)`` — the
    secondary's distribution is CONSTRUCT(alignment, delta_B)."""

    def __init__(self, alignment: Alignment):
        self.alignment = alignment

    def derive(
        self, primary_dist: Distribution, secondary_domain: IndexDomain
    ) -> Distribution:
        return construct(self.alignment, primary_dist, secondary_domain)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Aligned) and self.alignment == other.alignment

    def __hash__(self) -> int:
        return hash(("Aligned", self.alignment))

    def __repr__(self) -> str:
        return f"CONNECT {self.alignment!r}"


class DynamicAttr:
    """The ``DYNAMIC`` annotation of a primary array (§2.3).

    Parameters
    ----------
    range_:
        Optional :class:`~repro.core.query.Range` (or the pattern list
        for one).  ``None`` = no restriction.
    initial:
        Optional initial :class:`DistributionType`; "an array for which
        an initial distribution has not been specified cannot be legally
        accessed before it has been explicitly associated with a
        distribution".
    """

    def __init__(
        self,
        range_: Range | Sequence[object] | None = None,
        initial: DistributionType | None = None,
    ):
        if range_ is None or isinstance(range_, Range):
            self.range = range_ if range_ is not None else Range(None)
        else:
            self.range = Range(range_)
        if initial is not None:
            self.range.check(initial, "<initial distribution>")
        self.initial = initial

    def __repr__(self) -> str:
        parts = ["DYNAMIC"]
        if not self.range.unrestricted:
            parts.append(repr(self.range))
        if self.initial is not None:
            parts.append(f"DIST {self.initial!r}")
        return ", ".join(parts)


class ConnectClass:
    """One equivalence class ``C(B)`` of the connect relation.

    Holds the primary's name and, for each secondary, its name, index
    domain and :class:`Connection`.  :meth:`derive_all` computes every
    member's distribution from a (new) primary distribution — the
    "Step 2" of the DISTRIBUTE implementation (§3.2.2).
    """

    def __init__(self, primary: str, primary_domain: IndexDomain):
        self.primary = str(primary)
        self.primary_domain = primary_domain
        self._secondaries: dict[str, tuple[IndexDomain, Connection]] = {}

    def add_secondary(
        self, name: str, domain: IndexDomain, connection: Connection
    ) -> None:
        name = str(name)
        if name == self.primary:
            raise ValueError(f"{name!r} is the primary of this class")
        if name in self._secondaries:
            raise ValueError(f"{name!r} is already a secondary in C({self.primary})")
        # validate rank compatibility eagerly for extraction
        if isinstance(connection, Extraction) and domain.ndim != self.primary_domain.ndim:
            raise ValueError(
                f"extraction-connected secondary {name!r} has rank "
                f"{domain.ndim}, primary has {self.primary_domain.ndim}"
            )
        self._secondaries[name] = (domain, connection)

    @property
    def secondaries(self) -> list[str]:
        return list(self._secondaries)

    @property
    def members(self) -> list[str]:
        """Primary first, then secondaries (C(B) = {B, A1, A2, ...})."""
        return [self.primary, *self._secondaries]

    def connection_of(self, name: str) -> Connection:
        return self._secondaries[str(name)][1]

    def derive(self, name: str, primary_dist: Distribution) -> Distribution:
        """delta_A for one secondary, per its connection."""
        domain, conn = self._secondaries[str(name)]
        return conn.derive(primary_dist, domain)

    def derive_all(self, primary_dist: Distribution) -> dict[str, Distribution]:
        """Distributions of every member under a new primary distribution."""
        out = {self.primary: primary_dist}
        for name in self._secondaries:
            out[name] = self.derive(name, primary_dist)
        return out

    def __contains__(self, name: str) -> bool:
        return name == self.primary or name in self._secondaries

    def __repr__(self) -> str:
        return f"C({self.primary}) = {{{', '.join(self.members)}}}"
