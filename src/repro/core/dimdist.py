"""Per-dimension distribution intrinsics (paper §2.2).

Vienna Fortran's *simple distribution expressions* map one array
dimension onto one processor dimension:

- ``BLOCK``      — evenly sized contiguous segments;
- ``CYCLIC(k)``  — round-robin in chunks of ``k`` (``CYCLIC`` = ``CYCLIC(1)``);
- ``B_BLOCK(sizes)`` — *general block*: contiguous irregular blocks
  given by their lengths (the paper's PIC code passes the ``BOUNDS``
  array computed by ``balance``);
- ``S_BLOCK(starts)`` — general block given by block *start* indices;
- ``:``          — elision: the dimension is not distributed;
- ``REPLICATED`` — every processor along the target dimension owns a
  copy (this realizes the powerset codomain of Definition 1).

Wildcards used in ``RANGE`` attributes and ``DCASE`` query lists
(``*``, ``CYCLIC(*)``) live in :mod:`repro.core.query`; this module only
defines *concrete* distributions.

Every class implements the same vectorized protocol over an extent
``n`` (array dimension length) and ``p`` (processor slots along the
target dimension):

``owners_vec(n, p)``
    length-``n`` int array: the slot owning each index (primary slot
    for ``REPLICATED``).
``indices_of(slot, n, p)``
    sorted global indices owned by ``slot``.
``local_count(slot, n, p)``, ``global_to_local`` / ``local_to_global``
    the per-dimension pieces of the paper's ``loc_map`` access function.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "DimDist",
    "Block",
    "Cyclic",
    "GenBlock",
    "SBlock",
    "NoDist",
    "Replicated",
    "Indirect",
]


class DimDist:
    """Base class for one-dimensional distribution intrinsics."""

    #: whether this dimension maps onto a processor-grid dimension
    consumes_proc_dim: bool = True
    #: whether each index has exactly one owner along this dimension
    exclusive: bool = True
    #: keyword used in Vienna Fortran source / query syntax
    keyword: str = "?"

    # -- protocol -------------------------------------------------------
    def validate(self, n: int, p: int) -> None:
        """Raise if this distribution cannot map ``n`` indices to ``p`` slots."""
        if n < 1:
            raise ValueError(f"dimension extent must be >= 1, got {n}")
        if p < 1:
            raise ValueError(f"processor slots must be >= 1, got {p}")

    def owners_vec(self, n: int, p: int) -> np.ndarray:
        raise NotImplementedError

    def owner_of(self, idx: int, n: int, p: int) -> int:
        """Slot owning ``idx`` (primary slot if replicated)."""
        idx = int(idx)
        if not 0 <= idx < n:
            raise IndexError(f"index {idx} out of range [0, {n})")
        return int(self.owners_vec(n, p)[idx])

    def all_owners_of(self, idx: int, n: int, p: int) -> tuple[int, ...]:
        """All slots owning ``idx`` (more than one only for REPLICATED)."""
        return (self.owner_of(idx, n, p),)

    def indices_of(self, slot: int, n: int, p: int) -> np.ndarray:
        """Sorted global indices owned by ``slot``."""
        self._check_slot(slot, p)
        return np.nonzero(self.owners_vec(n, p) == slot)[0]

    def local_count(self, slot: int, n: int, p: int) -> int:
        return len(self.indices_of(slot, n, p))

    def global_to_local(self, slot: int, idx: int, n: int, p: int) -> int:
        """Position of global ``idx`` within ``slot``'s sorted owned list."""
        owned = self.indices_of(slot, n, p)
        pos = int(np.searchsorted(owned, idx))
        if pos >= len(owned) or owned[pos] != idx:
            raise IndexError(f"index {idx} not owned by slot {slot}")
        return pos

    def local_to_global(self, slot: int, lidx: int, n: int, p: int) -> int:
        owned = self.indices_of(slot, n, p)
        if not 0 <= lidx < len(owned):
            raise IndexError(f"local index {lidx} out of range [0, {len(owned)})")
        return int(owned[lidx])

    def _check_slot(self, slot: int, p: int) -> None:
        if not 0 <= slot < p:
            raise IndexError(f"slot {slot} out of range [0, {p})")

    # -- structural -------------------------------------------------------
    def params(self) -> tuple:
        """Hashable parameter tuple; defines equality within a class."""
        return ()

    def __eq__(self, other: object) -> bool:
        if self is other:  # interned intrinsics compare by identity
            return True
        return type(self) is type(other) and self.params() == other.params()

    def __hash__(self) -> int:
        # cached: Indirect.params() serializes its owner array, and
        # every DistributionType/Distribution hash recurses down here
        h = getattr(self, "_hash_cache", None)
        if h is None:
            h = hash((type(self).__name__, self.params()))
            self._hash_cache = h
        return h

    def __repr__(self) -> str:
        return self.keyword


class Block(DimDist):
    """``BLOCK`` / ``BLOCK(m)``: contiguous, evenly sized segments.

    Plain ``BLOCK`` uses block length ``ceil(n / p)``; trailing slots
    may own fewer (or zero) indices, the usual Fortran-world
    convention.  ``BLOCK(m)`` (Vienna Fortran's parameterized form)
    fixes the block length to ``m``, which must be large enough that
    ``p`` blocks cover the dimension.
    """

    keyword = "BLOCK"

    def __init__(self, m: int | None = None):
        if m is not None:
            m = int(m)
            if m < 1:
                raise ValueError(f"BLOCK size must be >= 1, got {m}")
        self.m = m

    def params(self) -> tuple:
        return (self.m,)

    def validate(self, n: int, p: int) -> None:
        super().validate(n, p)
        if self.m is not None and self.m * p < n:
            raise ValueError(
                f"BLOCK({self.m}) covers only {self.m * p} of {n} indices "
                f"on {p} slots"
            )

    def block_len(self, n: int, p: int) -> int:
        if self.m is not None:
            return self.m
        return -(-n // p)  # ceil division

    def owners_vec(self, n: int, p: int) -> np.ndarray:
        self.validate(n, p)
        return np.arange(n, dtype=np.int64) // self.block_len(n, p)

    def indices_of(self, slot: int, n: int, p: int) -> np.ndarray:
        self.validate(n, p)
        self._check_slot(slot, p)
        b = self.block_len(n, p)
        lo = min(slot * b, n)
        hi = min(lo + b, n)
        return np.arange(lo, hi, dtype=np.int64)

    def local_count(self, slot: int, n: int, p: int) -> int:
        self.validate(n, p)
        self._check_slot(slot, p)
        b = self.block_len(n, p)
        return max(0, min((slot + 1) * b, n) - slot * b)

    def global_to_local(self, slot: int, idx: int, n: int, p: int) -> int:
        b = self.block_len(n, p)
        lo = slot * b
        if not lo <= idx < min(lo + b, n):
            raise IndexError(f"index {idx} not owned by slot {slot}")
        return idx - lo

    def local_to_global(self, slot: int, lidx: int, n: int, p: int) -> int:
        b = self.block_len(n, p)
        if not 0 <= lidx < self.local_count(slot, n, p):
            raise IndexError(f"local index {lidx} out of range")
        return slot * b + lidx

    def __repr__(self) -> str:
        return "BLOCK" if self.m is None else f"BLOCK({self.m})"


class Cyclic(DimDist):
    """``CYCLIC(k)``: chunks of ``k`` dealt round-robin to the slots.

    ``Cyclic(1)`` (the plain ``CYCLIC`` of the paper) deals single
    elements.  The paper's ADI example uses ``CYCLIC(K)`` with a
    run-time value ``K``.
    """

    keyword = "CYCLIC"

    def __init__(self, k: int = 1):
        k = int(k)
        if k < 1:
            raise ValueError(f"CYCLIC block size must be >= 1, got {k}")
        self.k = k

    def params(self) -> tuple:
        return (self.k,)

    def owners_vec(self, n: int, p: int) -> np.ndarray:
        self.validate(n, p)
        return (np.arange(n, dtype=np.int64) // self.k) % p

    def local_count(self, slot: int, n: int, p: int) -> int:
        self.validate(n, p)
        self._check_slot(slot, p)
        full_cycles, rem = divmod(n, self.k * p)
        count = full_cycles * self.k
        # remainder: chunk `slot` of the last partial cycle
        lo = slot * self.k
        count += max(0, min(rem - lo, self.k))
        return count

    def global_to_local(self, slot: int, idx: int, n: int, p: int) -> int:
        chunk, offset = divmod(idx, self.k)
        if chunk % p != slot:
            raise IndexError(f"index {idx} not owned by slot {slot}")
        return (chunk // p) * self.k + offset

    def local_to_global(self, slot: int, lidx: int, n: int, p: int) -> int:
        cycle, offset = divmod(lidx, self.k)
        idx = (cycle * p + slot) * self.k + offset
        if not 0 <= idx < n:
            raise IndexError(f"local index {lidx} out of range for slot {slot}")
        return idx

    def __repr__(self) -> str:
        return f"CYCLIC({self.k})" if self.k != 1 else "CYCLIC"


class GenBlock(DimDist):
    """``B_BLOCK(sizes)``: general block distribution by block lengths.

    ``sizes[s]`` is the number of contiguous indices owned by slot
    ``s``; the sizes must be non-negative and sum to the dimension
    extent.  This is the distribution the paper's PIC code builds from
    per-cell particle counts (Figure 2).
    """

    keyword = "B_BLOCK"

    def __init__(self, sizes: Sequence[int]):
        self.sizes = tuple(int(s) for s in sizes)
        if not self.sizes:
            raise ValueError("B_BLOCK needs at least one block size")
        if any(s < 0 for s in self.sizes):
            raise ValueError(f"B_BLOCK sizes must be non-negative, got {self.sizes}")
        self._bounds = np.concatenate(
            [[0], np.cumsum(np.asarray(self.sizes, dtype=np.int64))]
        )

    def params(self) -> tuple:
        return (self.sizes,)

    def validate(self, n: int, p: int) -> None:
        super().validate(n, p)
        if len(self.sizes) != p:
            raise ValueError(
                f"B_BLOCK has {len(self.sizes)} sizes but target has {p} slots"
            )
        if self._bounds[-1] != n:
            raise ValueError(
                f"B_BLOCK sizes sum to {self._bounds[-1]}, dimension extent is {n}"
            )

    def owners_vec(self, n: int, p: int) -> np.ndarray:
        self.validate(n, p)
        return (
            np.searchsorted(self._bounds, np.arange(n, dtype=np.int64), side="right")
            - 1
        ).astype(np.int64)

    def indices_of(self, slot: int, n: int, p: int) -> np.ndarray:
        self.validate(n, p)
        self._check_slot(slot, p)
        return np.arange(self._bounds[slot], self._bounds[slot + 1], dtype=np.int64)

    def local_count(self, slot: int, n: int, p: int) -> int:
        self.validate(n, p)
        self._check_slot(slot, p)
        return self.sizes[slot]

    def global_to_local(self, slot: int, idx: int, n: int, p: int) -> int:
        lo, hi = self._bounds[slot], self._bounds[slot + 1]
        if not lo <= idx < hi:
            raise IndexError(f"index {idx} not owned by slot {slot}")
        return int(idx - lo)

    def local_to_global(self, slot: int, lidx: int, n: int, p: int) -> int:
        if not 0 <= lidx < self.sizes[slot]:
            raise IndexError(f"local index {lidx} out of range")
        return int(self._bounds[slot] + lidx)

    def __repr__(self) -> str:
        return f"B_BLOCK({', '.join(str(s) for s in self.sizes)})"


class SBlock(DimDist):
    """``S_BLOCK(starts)``: general block distribution by block starts.

    ``starts[s]`` is the first global index of slot ``s``'s block;
    the list must be non-decreasing and start at 0.  ``S_BLOCK`` and
    ``B_BLOCK`` describe the same family of general block
    distributions (paper §2.2); they differ only in parameterization,
    and :meth:`to_genblock` converts.
    """

    keyword = "S_BLOCK"

    def __init__(self, starts: Sequence[int]):
        self.starts = tuple(int(s) for s in starts)
        if not self.starts:
            raise ValueError("S_BLOCK needs at least one block start")
        if self.starts[0] != 0:
            raise ValueError(f"S_BLOCK starts must begin at 0, got {self.starts}")
        if any(b < a for a, b in zip(self.starts, self.starts[1:])):
            raise ValueError(f"S_BLOCK starts must be non-decreasing, got {self.starts}")

    def params(self) -> tuple:
        return (self.starts,)

    def to_genblock(self, n: int) -> GenBlock:
        """Equivalent ``B_BLOCK`` over a dimension of extent ``n``."""
        bounds = list(self.starts) + [int(n)]
        if bounds[-1] < bounds[-2]:
            raise ValueError(
                f"S_BLOCK last start {bounds[-2]} exceeds dimension extent {n}"
            )
        return GenBlock([b - a for a, b in zip(bounds, bounds[1:])])

    def validate(self, n: int, p: int) -> None:
        DimDist.validate(self, n, p)
        if len(self.starts) != p:
            raise ValueError(
                f"S_BLOCK has {len(self.starts)} starts but target has {p} slots"
            )
        self.to_genblock(n)  # validates monotonicity against n

    def owners_vec(self, n: int, p: int) -> np.ndarray:
        self.validate(n, p)
        return self.to_genblock(n).owners_vec(n, p)

    def indices_of(self, slot: int, n: int, p: int) -> np.ndarray:
        self.validate(n, p)
        return self.to_genblock(n).indices_of(slot, n, p)

    def local_count(self, slot: int, n: int, p: int) -> int:
        self.validate(n, p)
        return self.to_genblock(n).local_count(slot, n, p)

    def global_to_local(self, slot: int, idx: int, n: int, p: int) -> int:
        return self.to_genblock(n).global_to_local(slot, idx, n, p)

    def local_to_global(self, slot: int, lidx: int, n: int, p: int) -> int:
        return self.to_genblock(n).local_to_global(slot, lidx, n, p)

    def __repr__(self) -> str:
        return f"S_BLOCK({', '.join(str(s) for s in self.starts)})"


class Indirect(DimDist):
    """Indirect (mapping-array) distribution along one dimension.

    ``owners[i]`` gives the slot owning index ``i``.  This is the
    translation-table-backed irregular distribution of §3.2.1 ("for
    certain complex distributions, a pointer to a translation table is
    required"); it also serves as the closure of the intrinsic family
    under alignment composition (CONSTRUCT can always express the
    induced distribution of an affinely aligned dimension as an
    ``Indirect``).
    """

    keyword = "INDIRECT"

    def __init__(self, owners: Sequence[int]):
        arr = np.asarray(owners, dtype=np.int64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("INDIRECT needs a non-empty 1-D owner array")
        if arr.min() < 0:
            raise ValueError("INDIRECT owner entries must be non-negative")
        self.owners = arr
        self.owners.setflags(write=False)

    def params(self) -> tuple:
        return (self.owners.tobytes(), len(self.owners))

    def validate(self, n: int, p: int) -> None:
        super().validate(n, p)
        if len(self.owners) != n:
            raise ValueError(
                f"INDIRECT owner array has length {len(self.owners)}, "
                f"dimension extent is {n}"
            )
        if int(self.owners.max()) >= p:
            raise ValueError(
                f"INDIRECT owner entry {int(self.owners.max())} out of range "
                f"for {p} slots"
            )

    def owners_vec(self, n: int, p: int) -> np.ndarray:
        self.validate(n, p)
        return self.owners

    def __repr__(self) -> str:
        if len(self.owners) <= 16:
            return f"INDIRECT({', '.join(str(int(o)) for o in self.owners)})"
        return f"INDIRECT(<{len(self.owners)} entries>)"


class NoDist(DimDist):
    """``:`` — the elision symbol: this array dimension is not
    distributed; it does not consume a processor dimension, and every
    index along it stays with whatever processor the *other* dimensions
    select (paper Example 1)."""

    consumes_proc_dim = False
    keyword = ":"

    def owners_vec(self, n: int, p: int) -> np.ndarray:
        # All indices live on "slot 0" of a virtual single-slot dimension.
        self.validate(n, 1)
        return np.zeros(n, dtype=np.int64)

    def indices_of(self, slot: int, n: int, p: int) -> np.ndarray:
        return np.arange(n, dtype=np.int64)

    def local_count(self, slot: int, n: int, p: int) -> int:
        return n

    def global_to_local(self, slot: int, idx: int, n: int, p: int) -> int:
        if not 0 <= idx < n:
            raise IndexError(f"index {idx} out of range [0, {n})")
        return idx

    def local_to_global(self, slot: int, lidx: int, n: int, p: int) -> int:
        if not 0 <= lidx < n:
            raise IndexError(f"local index {lidx} out of range [0, {n})")
        return lidx


class Replicated(DimDist):
    """``REPLICATED``: every slot along the target processor dimension
    owns a full copy of this array dimension.

    This realizes Definition 1's powerset codomain (an element may have
    several owners).  The primary owner — used for tie-breaking in
    owner-computes lowering — is slot 0.
    """

    exclusive = False
    keyword = "REPLICATED"

    def owners_vec(self, n: int, p: int) -> np.ndarray:
        self.validate(n, p)
        return np.zeros(n, dtype=np.int64)  # primary owners

    def all_owners_of(self, idx: int, n: int, p: int) -> tuple[int, ...]:
        if not 0 <= idx < n:
            raise IndexError(f"index {idx} out of range [0, {n})")
        return tuple(range(p))

    def indices_of(self, slot: int, n: int, p: int) -> np.ndarray:
        self._check_slot(slot, p)
        return np.arange(n, dtype=np.int64)

    def local_count(self, slot: int, n: int, p: int) -> int:
        self._check_slot(slot, p)
        return n

    def global_to_local(self, slot: int, idx: int, n: int, p: int) -> int:
        if not 0 <= idx < n:
            raise IndexError(f"index {idx} out of range [0, {n})")
        return idx

    def local_to_global(self, slot: int, lidx: int, n: int, p: int) -> int:
        if not 0 <= lidx < n:
            raise IndexError(f"local index {lidx} out of range [0, {n})")
        return lidx
