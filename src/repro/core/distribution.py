"""Distribution types and distributions (paper §2.1–2.2, Definition 1).

A *distribution expression* such as ``(BLOCK, CYCLIC(3), :)`` denotes a
:class:`DistributionType` — a tuple of per-dimension intrinsics.  The
paper: "The application of a distribution type to a (data) array and a
processor section yields a distribution."  Correspondingly,
:meth:`DistributionType.apply` binds a type to an index domain and a
:class:`~repro.machine.topology.ProcessorSection`, producing a
:class:`Distribution` — the index mapping
``delta_A : I^A -> P(I^R) - {emptyset}`` of Definition 1, with
vectorized owner maps, per-processor local index sets, and the
``loc_map`` / ``segment`` access functions of §3.2.1.

Array dimensions that *consume* a processor dimension (everything but
the elision ``:``) are matched to the section's dimensions in order:
the ``i``-th distributed array dimension maps to section dimension
``i``; their counts must agree.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from ..machine.topology import ProcessorArray, ProcessorSection
from .dimdist import Block, Cyclic, DimDist, NoDist, Replicated
from .index_domain import IndexDomain
from .interning import owners_vec_cached, rank_map_cached

__all__ = ["DistributionType", "Distribution", "dist_type"]


def _as_dimdist(spec: object) -> DimDist:
    """Coerce user-friendly specs to :class:`DimDist` instances.

    Accepted shorthands: an existing ``DimDist``; the string ``":"``;
    the strings ``"BLOCK"``, ``"CYCLIC"``, ``"REPLICATED"``.
    """
    if isinstance(spec, DimDist):
        return spec
    if isinstance(spec, str):
        key = spec.strip().upper()
        if key == ":":
            return NoDist()
        if key == "BLOCK":
            return Block()
        if key == "CYCLIC":
            return Cyclic(1)
        if key == "REPLICATED":
            return Replicated()
    raise TypeError(f"cannot interpret {spec!r} as a dimension distribution")


def dist_type(*specs: object) -> "DistributionType":
    """Convenience constructor: ``dist_type("BLOCK", Cyclic(3), ":")``."""
    return DistributionType(specs)


class DistributionType:
    """A distribution expression, e.g. ``(BLOCK, CYCLIC(K))`` (§2.2).

    Determines a *class* of distributions; binding it to an array and a
    processor section (:meth:`apply`) yields a :class:`Distribution`.
    """

    def __init__(self, dims: Sequence[object]):
        self.dims: tuple[DimDist, ...] = tuple(_as_dimdist(d) for d in dims)
        if not self.dims:
            raise ValueError("distribution type needs at least one dimension")

    @property
    def ndim(self) -> int:
        return len(self.dims)

    @property
    def distributed_dims(self) -> tuple[int, ...]:
        """Array dimensions that consume a processor dimension."""
        return tuple(
            d for d, dd in enumerate(self.dims) if dd.consumes_proc_dim
        )

    def apply(
        self,
        domain: IndexDomain | Sequence[int],
        target: ProcessorSection | ProcessorArray,
        dim_map: Sequence[int] | None = None,
    ) -> "Distribution":
        """Bind this type to an index domain and a processor section."""
        return Distribution(self, domain, target, dim_map=dim_map)

    # -- structural -------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, DistributionType) and self.dims == other.dims

    def __hash__(self) -> int:
        h = getattr(self, "_hash_cache", None)
        if h is None:
            h = hash(self.dims)
            self._hash_cache = h
        return h

    def __repr__(self) -> str:
        return "(" + ", ".join(repr(d) for d in self.dims) + ")"


class Distribution:
    """A bound distribution: Definition 1's ``delta_A``.

    Parameters
    ----------
    dtype:
        The :class:`DistributionType`.
    domain:
        The array's index domain (or a shape tuple).
    target:
        Processor section (a full :class:`ProcessorArray` is promoted
        to its full section).  The section must have exactly as many
        dimensions as the type has distributed (non-``:``) dimensions.
    dim_map:
        Section dimension assigned to the ``j``-th distributed array
        dimension.  Defaults to the identity (the declaration-order
        matching of Vienna Fortran); a transposing alignment such as
        the paper's ``ALIGN D(I,J,K) WITH C(J,I,K)`` induces a
        non-identity map via CONSTRUCT.
    """

    def __init__(
        self,
        dtype: DistributionType,
        domain: IndexDomain | Sequence[int],
        target: ProcessorSection | ProcessorArray,
        dim_map: Sequence[int] | None = None,
    ):
        if not isinstance(domain, IndexDomain):
            domain = IndexDomain(domain)
        if isinstance(target, ProcessorArray):
            target = target.full_section()
        if dtype.ndim != domain.ndim:
            raise ValueError(
                f"distribution type {dtype!r} has {dtype.ndim} dimensions, "
                f"array domain has {domain.ndim}"
            )
        ddims = dtype.distributed_dims
        if len(ddims) != target.ndim:
            raise ValueError(
                f"type {dtype!r} distributes {len(ddims)} dimensions but the "
                f"processor section {target!r} has {target.ndim}"
            )
        if dim_map is None:
            dim_map = tuple(range(len(ddims)))
        else:
            dim_map = tuple(int(k) for k in dim_map)
            if sorted(dim_map) != list(range(target.ndim)):
                raise ValueError(
                    f"dim_map {dim_map} is not a permutation of section dims "
                    f"0..{target.ndim - 1}"
                )
        self.dim_map = dim_map
        self.dtype = dtype
        self.domain = domain
        self.target = target
        # section dimension assigned to each array dimension (or None)
        self._secdim_of: list[int | None] = []
        j = 0
        for dd in dtype.dims:
            if dd.consumes_proc_dim:
                self._secdim_of.append(dim_map[j])
                j += 1
            else:
                self._secdim_of.append(None)
        # validate each dim eagerly so bad B_BLOCK sizes fail at bind time
        for d, dd in enumerate(dtype.dims):
            dd.validate(domain.shape[d], self._slots(d))
        self._rank_array = target.rank_array()
        self._rank_map_cache: np.ndarray | None = None
        self._hash_cache: int | None = None

    # -- geometry helpers --------------------------------------------------
    def _slots(self, dim: int) -> int:
        """Processor slots along array dimension ``dim`` (1 for ``:``)."""
        k = self._secdim_of[dim]
        return 1 if k is None else self.target.shape[k]

    def slots_along(self, dim: int) -> int:
        """Processor slots mapped to array dimension ``dim`` (1 for ``:``).

        Public accessor used by the distribution planner's cost queries.
        """
        if not 0 <= dim < self.ndim:
            raise IndexError(f"dimension {dim} out of range [0, {self.ndim})")
        return self._slots(dim)

    @property
    def proc_shape(self) -> tuple[int, ...]:
        """Slot counts along the *distributed* array dimensions, in
        declaration order — the ``proc_shape`` argument expected by the
        compiler's per-reference communication estimates."""
        return tuple(self._slots(d) for d in self.dtype.distributed_dims)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.domain.shape

    @property
    def ndim(self) -> int:
        return self.domain.ndim

    @property
    def nprocs(self) -> int:
        """Processors in the target section."""
        return self.target.size

    def ranks(self) -> list[int]:
        """Parent ranks of the target section, section-rank order."""
        return self.target.ranks()

    # -- slot/coordinate mapping -------------------------------------------
    def _proc_coord_of_slots(self, slots: Sequence[int]) -> tuple[int, ...]:
        """Section coordinate from per-array-dim slots (distributed dims)."""
        coord = [0] * self.target.ndim
        for d, dd in enumerate(self.dtype.dims):
            if dd.consumes_proc_dim:
                coord[self._secdim_of[d]] = int(slots[d])
        return tuple(coord)

    def _slots_of_proc(self, rank: int) -> tuple[int, ...] | None:
        """Per-array-dim slot for parent ``rank``; None if outside section."""
        try:
            pos = self.ranks().index(int(rank))
        except ValueError:
            return None
        flat = pos
        sec_coord = []
        for s in reversed(self.target.shape):
            sec_coord.append(flat % s)
            flat //= s
        sec_coord = tuple(reversed(sec_coord))
        slots: list[int] = []
        for d, dd in enumerate(self.dtype.dims):
            if dd.consumes_proc_dim:
                slots.append(sec_coord[self._secdim_of[d]])
            else:
                slots.append(0)
        return tuple(slots)

    # -- Definition 1: delta ----------------------------------------------
    def owners(self, index: Sequence[int] | int) -> tuple[int, ...]:
        """All parent ranks owning ``index`` (non-empty, per Definition 1)."""
        index = self.domain.check(index)
        per_dim: list[tuple[int, ...]] = []
        for d, dd in enumerate(self.dtype.dims):
            per_dim.append(
                dd.all_owners_of(index[d], self.shape[d], self._slots(d))
                if dd.consumes_proc_dim
                else (0,)
            )
        out: list[int] = []
        for combo in itertools.product(*per_dim):
            coord = self._proc_coord_of_slots(combo)
            out.append(
                int(self._rank_array[coord])
                if self.target.shape
                else int(self._rank_array.reshape(-1)[0])
            )
        return tuple(dict.fromkeys(out))  # dedupe, keep order

    def owner(self, index: Sequence[int] | int) -> int:
        """Primary owner (first owner) of ``index``."""
        return self.owners(index)[0]

    def is_local(self, rank: int, index: Sequence[int] | int) -> bool:
        return int(rank) in self.owners(index)

    def is_replicated(self) -> bool:
        return any(not dd.exclusive for dd in self.dtype.dims)

    # -- vectorized owner map -----------------------------------------------
    def owner_maps(self) -> list[np.ndarray]:
        """Per-dimension primary-slot arrays (length ``shape[d]`` each).

        Served from the shared owner-map LRU: the returned arrays are
        **read-only** and shared between structurally equal
        distributions — copy before mutating.
        """
        return [
            owners_vec_cached(dd, self.shape[d], self._slots(d))
            for d, dd in enumerate(self.dtype.dims)
        ]

    def rank_map(self) -> np.ndarray:
        """``shape``-shaped array of each element's primary-owner rank.

        The workhorse of the vectorized redistribution algorithm
        (experiment E4's "vectorized transfer sets" design choice).
        Memoized twice over: per instance, and in the shared rank-map
        LRU keyed by the interned distribution, so equal layouts built
        independently (the planner's candidate enumeration) share one
        computed map.  The result is read-only.
        """
        if self._rank_map_cache is not None:
            return self._rank_map_cache
        self._rank_map_cache = rank_map_cached(self)
        return self._rank_map_cache

    def _compute_rank_map(self) -> np.ndarray:
        """The uncached rank-map computation (called by the LRU)."""
        maps = self.owner_maps()
        index_arrays: list[np.ndarray | None] = [None] * self.target.ndim
        for d, dd in enumerate(self.dtype.dims):
            if not dd.consumes_proc_dim:
                continue
            shape = [1] * self.ndim
            shape[d] = self.shape[d]
            index_arrays[self._secdim_of[d]] = maps[d].reshape(shape)
        if any(a is not None for a in index_arrays):
            rm = self._rank_array[tuple(index_arrays)]
        else:  # fully undistributed: single processor owns everything
            rm = np.full((1,) * self.ndim, int(self._rank_array.reshape(-1)[0]))
        return np.broadcast_to(rm, self.shape)

    def owner_rank_maps(self):
        """Yield rank maps covering *all* owners of every element.

        For exclusive distributions this yields :meth:`rank_map` once.
        When some dimension is REPLICATED, one map is yielded per
        combination of replica slots along the replicated dimensions,
        so that a consumer (e.g. the redistribution engine) can account
        a transfer to every owner.  The first map yielded is always the
        primary-owner map.
        """
        rep_dims = [
            d
            for d, dd in enumerate(self.dtype.dims)
            if dd.consumes_proc_dim and not dd.exclusive
        ]
        if not rep_dims:
            yield self.rank_map()
            return
        base_maps = self.owner_maps()
        for combo in itertools.product(
            *(range(self._slots(d)) for d in rep_dims)
        ):
            index_arrays: list[np.ndarray | None] = [None] * self.target.ndim
            for d, dd in enumerate(self.dtype.dims):
                if not dd.consumes_proc_dim:
                    continue
                shape = [1] * self.ndim
                shape[d] = self.shape[d]
                vec = base_maps[d]
                if d in rep_dims:
                    vec = np.full_like(vec, combo[rep_dims.index(d)])
                index_arrays[self._secdim_of[d]] = vec.reshape(shape)
            rm = self._rank_array[tuple(index_arrays)]
            yield np.broadcast_to(rm, self.shape)

    # -- per-processor views (segment / loc_map of §3.2.1) ------------------
    def local_index_arrays(self, rank: int) -> tuple[np.ndarray, ...] | None:
        """Per-dimension sorted global indices owned by ``rank``.

        The Cartesian product of these arrays is ``rank``'s owned set;
        this factorization is exact because every intrinsic distributes
        dimensions independently.  Returns ``None`` when ``rank`` is not
        in the target section.
        """
        slots = self._slots_of_proc(rank)
        if slots is None:
            return None
        return tuple(
            dd.indices_of(slots[d], self.shape[d], self._slots(d))
            for d, dd in enumerate(self.dtype.dims)
        )

    def local_shape(self, rank: int) -> tuple[int, ...]:
        """Shape of ``rank``'s local segment (all zeros if not in section)."""
        slots = self._slots_of_proc(rank)
        if slots is None:
            return (0,) * self.ndim
        return tuple(
            dd.local_count(slots[d], self.shape[d], self._slots(d))
            for d, dd in enumerate(self.dtype.dims)
        )

    def local_size(self, rank: int) -> int:
        n = 1
        for s in self.local_shape(rank):
            n *= s
        return n

    def global_to_local(self, rank: int, index: Sequence[int] | int) -> tuple[int, ...]:
        """The paper's ``loc_map_p``: local offset of a global index."""
        index = self.domain.check(index)
        slots = self._slots_of_proc(rank)
        if slots is None:
            raise IndexError(f"processor {rank} is not in section {self.target!r}")
        return tuple(
            dd.global_to_local(slots[d], index[d], self.shape[d], self._slots(d))
            for d, dd in enumerate(self.dtype.dims)
        )

    def local_to_global(self, rank: int, lindex: Sequence[int] | int) -> tuple[int, ...]:
        if isinstance(lindex, int):
            lindex = (lindex,)
        slots = self._slots_of_proc(rank)
        if slots is None:
            raise IndexError(f"processor {rank} is not in section {self.target!r}")
        return tuple(
            dd.local_to_global(slots[d], int(lindex[d]), self.shape[d], self._slots(d))
            for d, dd in enumerate(self.dtype.dims)
        )

    def segment(self, rank: int) -> tuple[tuple[int, int], ...] | None:
        """Per-dimension (lo, hi) bounds for contiguous distributions.

        This is the ``segment`` descriptor component of §3.2.1, defined
        "for regular and irregular BLOCK distributions".  Returns
        ``None`` if any dimension is non-contiguous (e.g. CYCLIC with
        more than one cycle).
        """
        arrays = self.local_index_arrays(rank)
        if arrays is None:
            return None
        out: list[tuple[int, int]] = []
        for idx in arrays:
            if len(idx) == 0:
                out.append((0, 0))
                continue
            lo, hi = int(idx[0]), int(idx[-1]) + 1
            if hi - lo != len(idx):
                return None  # non-contiguous
            out.append((lo, hi))
        return tuple(out)

    # -- structural --------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if self is other:  # hash-consed instances compare by identity
            return True
        return (
            isinstance(other, Distribution)
            and self.dtype == other.dtype
            and self.domain == other.domain
            and self.target == other.target
            and self.dim_map == other.dim_map
        )

    def __hash__(self) -> int:
        # cached: distributions key every planner memo and PlanCache
        # lookup, and the tuple-of-tuples hash is not free
        if self._hash_cache is None:
            self._hash_cache = hash(
                (self.dtype, self.domain, self.target, self.dim_map)
            )
        return self._hash_cache

    def interned(self) -> "Distribution":
        """The hash-consed canonical instance equal to this one."""
        from .interning import intern_distribution

        return intern_distribution(self)

    def __repr__(self) -> str:
        extra = "" if self.dim_map == tuple(range(self.target.ndim)) else f", dim_map={self.dim_map}"
        return f"Distribution({self.dtype!r} of {self.domain!r} TO {self.target!r}{extra})"
