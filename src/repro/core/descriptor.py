"""Run-time array descriptors (paper §3.2.1).

"Some of the relevant components of the information related to an
array stored locally in each processor" — the paper lists, per array
``A`` and processor ``p``:

- ``index_dom(A)`` — the index domain;
- ``dist(A)`` — distribution type + target processors (+ translation
  table pointer for complex distributions);
- ``connect_class(A)`` — the secondaries connected to a primary;
- ``alignment(C)`` — each member's alignment w.r.t. the primary;
- ``loc_map_p`` — offset of each locally owned element;
- ``segment`` — local lower/upper bounds per dimension, for regular
  and irregular BLOCK distributions.

:class:`ArrayDescriptor` bundles exactly these.  The runtime keeps one
logical descriptor per array (our simulator does not replicate it per
processor — the information is identical on all of them) and mutates it
on DISTRIBUTE ("this information may be modified when the distribution
is changed, or on entry to a subroutine").
"""

from __future__ import annotations

from .distribution import Distribution, DistributionType
from .dynamic import ConnectClass, DynamicAttr
from .index_domain import IndexDomain

__all__ = ["ArrayDescriptor", "DistributionUndefinedError"]


class DistributionUndefinedError(RuntimeError):
    """Access to a dynamic array before any distribution was associated
    (illegal per §2.3: no initial distribution and no distribute yet)."""


class ArrayDescriptor:
    """Descriptor for one (possibly dynamically) distributed array."""

    def __init__(
        self,
        name: str,
        index_dom: IndexDomain,
        dynamic: DynamicAttr | None = None,
        connect_class: ConnectClass | None = None,
    ):
        self.name = str(name)
        self.index_dom = index_dom
        #: None for a dynamic array not yet associated with a distribution
        self._dist: Distribution | None = None
        #: DYNAMIC attribute; None means statically distributed
        self.dynamic = dynamic
        #: the connect class this array belongs to (None if unconnected)
        self.connect_class = connect_class
        #: redistribution counter (how many times dist changed)
        self.version = 0

    # -- dist access -------------------------------------------------------
    @property
    def is_dynamic(self) -> bool:
        return self.dynamic is not None

    @property
    def is_distributed(self) -> bool:
        return self._dist is not None

    @property
    def dist(self) -> Distribution:
        """Current distribution; raises if not yet associated."""
        if self._dist is None:
            raise DistributionUndefinedError(
                f"array {self.name!r} has no distribution yet: it was declared "
                f"DYNAMIC without an initial distribution and no DISTRIBUTE "
                f"statement or procedure call has associated one (paper §2.3)"
            )
        return self._dist

    @property
    def dist_type(self) -> DistributionType:
        return self.dist.dtype

    def set_dist(self, dist: Distribution) -> None:
        """Install a new distribution, enforcing RANGE and staticness."""
        if dist.domain != self.index_dom:
            raise ValueError(
                f"distribution domain {dist.domain!r} does not match array "
                f"{self.name!r} domain {self.index_dom!r}"
            )
        if self._dist is not None and not self.is_dynamic:
            raise ValueError(
                f"array {self.name!r} is statically distributed; its "
                f"association is invariant in this scope (§2.3)"
            )
        if self.dynamic is not None:
            self.dynamic.range.check(dist.dtype, self.name)
        self._dist = dist
        self.version += 1

    # -- §3.2.1 access functions -------------------------------------------
    def loc_map(self, rank: int, index) -> tuple[int, ...]:
        """``loc_map_p(i)``: local offset of global ``i`` on processor ``rank``."""
        return self.dist.global_to_local(rank, index)

    def segment(self, rank: int):
        """Per-dimension local (lo, hi) bounds, when contiguous."""
        return self.dist.segment(rank)

    def owner(self, index) -> int:
        return self.dist.owner(index)

    def __repr__(self) -> str:
        d = repr(self._dist.dtype) if self._dist is not None else "<undistributed>"
        dyn = " DYNAMIC" if self.is_dynamic else ""
        return f"ArrayDescriptor({self.name!r}{dyn}, {self.index_dom!r}, dist={d})"
