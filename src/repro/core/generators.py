"""External distribution generators (paper §3.2, data organization
item 2: "an interface for external distribution generators and
specifiers").

Kali — the acknowledged ancestor of Vienna Fortran's dynamic features
(§5) — let users supply *distribution functions* that compute a
mapping from run-time values.  This module provides that interface:

- a :class:`DistributionGenerator` wraps a callable
  ``f(extent, slots, **params) -> owner array`` and produces an
  :class:`~repro.core.dimdist.Indirect` (or any other
  :class:`~repro.core.dimdist.DimDist`) when invoked;
- a process-wide :data:`registry` maps generator names to generators,
  so surface syntax and tools can refer to them symbolically;
- built-in generators reproduce the classic examples: a weighted
  general-block generator (the PIC ``balance`` as a generator) and a
  space-filling block-cyclic hybrid.

Generators run at DISTRIBUTE time — their inputs are run-time values,
which is precisely the capability the paper's dynamic distributions
exist to support.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .dimdist import DimDist, GenBlock, Indirect

__all__ = [
    "DistributionGenerator",
    "register_generator",
    "get_generator",
    "registry",
]


class DistributionGenerator:
    """A named, user-supplied per-dimension distribution generator.

    Parameters
    ----------
    name:
        Symbolic name (used by the registry and surface syntax).
    func:
        ``func(extent, slots, **params)`` returning either a
        :class:`DimDist` or an integer owner array of length
        ``extent`` with values in ``[0, slots)`` (wrapped in
        :class:`Indirect` automatically).
    """

    def __init__(self, name: str, func: Callable[..., object]):
        self.name = str(name)
        self.func = func

    def __call__(self, extent: int, slots: int, **params) -> DimDist:
        result = self.func(int(extent), int(slots), **params)
        if isinstance(result, DimDist):
            dd = result
        else:
            owners = np.asarray(result, dtype=np.int64)
            if owners.shape != (extent,):
                raise ValueError(
                    f"generator {self.name!r} returned shape {owners.shape}, "
                    f"expected ({extent},)"
                )
            dd = Indirect(owners)
        dd.validate(extent, slots)
        return dd

    def __repr__(self) -> str:
        return f"DistributionGenerator({self.name!r})"


registry: dict[str, DistributionGenerator] = {}


def register_generator(
    name: str, func: Callable[..., object] | None = None
):
    """Register a generator (usable as a decorator)."""
    if func is None:
        def deco(f):
            register_generator(name, f)
            return f

        return deco
    gen = DistributionGenerator(name, func)
    registry[gen.name] = gen
    return gen


def get_generator(name: str) -> DistributionGenerator:
    try:
        return registry[name]
    except KeyError:
        raise KeyError(
            f"no distribution generator named {name!r} "
            f"(registered: {sorted(registry)})"
        ) from None


# -- built-ins ---------------------------------------------------------------

@register_generator("weighted_block")
def _weighted_block(extent: int, slots: int, weights: Sequence[float] = ()):
    """General block distribution balancing the given per-index weights
    — the PIC ``balance`` routine packaged as a generator."""
    from ..apps.load_balance import balance_greedy

    w = np.asarray(weights if len(weights) else np.ones(extent), dtype=float)
    if len(w) != extent:
        raise ValueError(f"need {extent} weights, got {len(w)}")
    return GenBlock(balance_greedy(w, slots))


@register_generator("block_cyclic_hybrid")
def _block_cyclic_hybrid(extent: int, slots: int, chunk: int = 4):
    """Chunked round-robin whose trailing remainder is assigned
    block-wise — a simple example of a generator no intrinsic covers."""
    chunk = max(1, int(chunk))
    owners = (np.arange(extent) // chunk) % slots
    rem = extent % (chunk * slots)
    if rem:
        tail = extent - rem
        owners[tail:] = np.minimum(
            (np.arange(rem) * slots) // max(rem, 1), slots - 1
        )
    return Indirect(owners)


@register_generator("random_owner")
def _random_owner(extent: int, slots: int, seed: int = 0):
    """Uniformly random owners — the stress-test generator used by the
    redistribution property tests."""
    rng = np.random.default_rng(seed)
    return Indirect(rng.integers(0, slots, size=extent))
