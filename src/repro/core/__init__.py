"""The paper's distribution model — Vienna Fortran's primary contribution.

Index domains, per-dimension distribution intrinsics, distribution
types and bound distributions (Definition 1), alignments and the
CONSTRUCT composition (Definition 2), dynamic arrays with the connect
relation (§2.3), run-time descriptors (§3.2.1), and the query
machinery behind RANGE / IDT / DCASE (§2.5).
"""

from .alignment import Alignment, AxisMap, construct
from .descriptor import ArrayDescriptor, DistributionUndefinedError
from .dimdist import (
    Block,
    Cyclic,
    DimDist,
    GenBlock,
    Indirect,
    NoDist,
    Replicated,
    SBlock,
)
from .distribution import Distribution, DistributionType, dist_type
from .dynamic import Aligned, ConnectClass, Connection, DynamicAttr, Extraction
from .generators import (
    DistributionGenerator,
    get_generator,
    register_generator,
)
from .index_domain import IndexDomain
from .interning import (
    clear_interning_caches,
    intern_dimdist,
    intern_distribution,
    owners_cache_stats,
)
from .query import ANY, DCase, DEFAULT, QueryList, Range, TypePattern, Wild, idt

__all__ = [
    "IndexDomain",
    "DimDist",
    "Block",
    "Cyclic",
    "GenBlock",
    "SBlock",
    "NoDist",
    "Replicated",
    "Indirect",
    "DistributionType",
    "Distribution",
    "dist_type",
    "Alignment",
    "AxisMap",
    "construct",
    "DynamicAttr",
    "ConnectClass",
    "Connection",
    "Extraction",
    "Aligned",
    "ArrayDescriptor",
    "DistributionUndefinedError",
    "DistributionGenerator",
    "register_generator",
    "get_generator",
    "ANY",
    "DEFAULT",
    "Wild",
    "TypePattern",
    "Range",
    "idt",
    "DCase",
    "QueryList",
    "intern_dimdist",
    "intern_distribution",
    "owners_cache_stats",
    "clear_interning_caches",
]
