"""Distribution queries: wildcards, RANGE, IDT, and DCASE (paper §2.3, §2.5).

Vienna Fortran lets programs *test* distributions at run time:

- the ``RANGE`` attribute of a ``DYNAMIC`` declaration restricts the
  distribution types an array may assume, using ``*`` as a "don't
  care" symbol (§2.3);
- the ``DCASE`` construct selects one of several condition/action
  pairs by matching selector arrays' distribution types against
  *query lists* — positional or name-tagged, with ``*`` wildcards and
  a ``DEFAULT`` arm (§2.5.1, Example 4);
- the ``IDT`` intrinsic tests one array's distribution type (and
  optionally its target processor section) inside a general logical
  expression (§2.5.2).

Patterns
--------
A *dimension pattern* is one of:

- a concrete :class:`~repro.core.dimdist.DimDist` — exact match;
- :data:`ANY` (``"*"``) — matches any dimension distribution;
- ``Wild(Cyclic)`` — matches any instance of a class, e.g. the paper's
  ``CYCLIC(*)``.

A *type pattern* is a tuple of dimension patterns (or :data:`ANY`,
matching every type).  Matching requires equal rank.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..machine.topology import ProcessorArray, ProcessorSection
from .dimdist import DimDist
from .distribution import Distribution, DistributionType, _as_dimdist

__all__ = [
    "ANY",
    "DEFAULT",
    "Wild",
    "TypePattern",
    "as_pattern",
    "Range",
    "idt",
    "DCase",
    "QueryList",
]


class _AnyMarker:
    """The ``*`` wildcard (singleton :data:`ANY`)."""

    def __repr__(self) -> str:
        return "*"


ANY = _AnyMarker()


class _DefaultMarker:
    """The ``DEFAULT`` condition of DCASE (singleton :data:`DEFAULT`)."""

    def __repr__(self) -> str:
        return "DEFAULT"


DEFAULT = _DefaultMarker()


class Wild:
    """Class wildcard: ``Wild(Cyclic)`` is the paper's ``CYCLIC(*)`` —
    any distribution of that intrinsic family, with any parameters."""

    def __init__(self, cls: type[DimDist]):
        if not (isinstance(cls, type) and issubclass(cls, DimDist)):
            raise TypeError(f"Wild expects a DimDist subclass, got {cls!r}")
        self.cls = cls

    def matches(self, dd: DimDist) -> bool:
        return isinstance(dd, self.cls)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Wild) and self.cls is other.cls

    def __hash__(self) -> int:
        return hash(("Wild", self.cls))

    def __repr__(self) -> str:
        return f"{self.cls.keyword}(*)"


def _dim_matches(pattern: object, dd: DimDist) -> bool:
    if pattern is ANY or (isinstance(pattern, str) and pattern.strip() == "*"):
        return True
    if isinstance(pattern, Wild):
        return pattern.matches(dd)
    return _as_dimdist(pattern) == dd


class TypePattern:
    """A distribution-type pattern, e.g. ``(BLOCK, CYCLIC(*))``."""

    def __init__(self, dims: Sequence[object] | _AnyMarker):
        if dims is ANY:
            self.dims: tuple[object, ...] | None = None
        else:
            norm: list[object] = []
            for d in dims:  # type: ignore[union-attr]
                if d is ANY or isinstance(d, Wild):
                    norm.append(d)
                elif isinstance(d, str) and d.strip() == "*":
                    norm.append(ANY)
                else:
                    norm.append(_as_dimdist(d))
            self.dims = tuple(norm)
            if not self.dims:
                raise ValueError("type pattern needs at least one dimension")

    def matches(self, dtype: DistributionType) -> bool:
        if self.dims is None:
            return True
        if len(self.dims) != dtype.ndim:
            return False
        return all(_dim_matches(p, dd) for p, dd in zip(self.dims, dtype.dims))

    def is_concrete(self) -> bool:
        """True when the pattern contains no wildcards (it *is* a type)."""
        return self.dims is not None and all(
            isinstance(d, DimDist) for d in self.dims
        )

    def to_type(self) -> DistributionType:
        if not self.is_concrete():
            raise ValueError(f"pattern {self!r} contains wildcards")
        return DistributionType(self.dims)  # type: ignore[arg-type]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TypePattern) and self.dims == other.dims

    def __hash__(self) -> int:
        return hash(self.dims)

    def __repr__(self) -> str:
        if self.dims is None:
            return "*"
        return "(" + ", ".join(repr(d) for d in self.dims) + ")"


def as_pattern(spec: object) -> TypePattern:
    """Coerce a user spec to a :class:`TypePattern`."""
    if isinstance(spec, TypePattern):
        return spec
    if spec is ANY or (isinstance(spec, str) and spec.strip() == "*"):
        return TypePattern(ANY)
    if isinstance(spec, DistributionType):
        return TypePattern(spec.dims)
    if isinstance(spec, (tuple, list)):
        return TypePattern(spec)
    # single-dimension shorthand: "(BLOCK)"
    return TypePattern((spec,))


class Range:
    """The ``RANGE`` attribute of a ``DYNAMIC`` declaration (§2.3).

    "A distribution range determines the set of all distribution types
    (or a superset thereof) which can be associated with the arrays
    during the execution of the procedure."  ``Range(None)`` means no
    restriction (no RANGE clause given).
    """

    def __init__(self, patterns: Sequence[object] | None):
        if patterns is None:
            self.patterns: tuple[TypePattern, ...] | None = None
        else:
            self.patterns = tuple(as_pattern(p) for p in patterns)
            if not self.patterns:
                raise ValueError("RANGE needs at least one distribution expression")

    @property
    def unrestricted(self) -> bool:
        return self.patterns is None

    def admits(self, dtype: DistributionType) -> bool:
        if self.patterns is None:
            return True
        return any(p.matches(dtype) for p in self.patterns)

    def check(self, dtype: DistributionType, array_name: str = "?") -> None:
        """Raise if a distribute statement would violate this range."""
        if not self.admits(dtype):
            raise ValueError(
                f"distribution type {dtype!r} violates the RANGE of array "
                f"{array_name!r}: {self!r}"
            )

    def concrete_types(self) -> list[DistributionType] | None:
        """All wildcard-free member types, or None if unbounded.

        Used by the compiler's reaching-distribution analysis as the
        user-provided plausible set when full code is unavailable
        (§3.1: "the compiler will have to rely on range specifications
        provided by the user").
        """
        if self.patterns is None:
            return None
        out = []
        for p in self.patterns:
            if not p.is_concrete():
                return None
            out.append(p.to_type())
        return out

    def __repr__(self) -> str:
        if self.patterns is None:
            return "RANGE(<unrestricted>)"
        return "RANGE(" + ", ".join(repr(p) for p in self.patterns) + ")"


def idt(
    dist: Distribution | DistributionType,
    pattern: object,
    section: ProcessorSection | ProcessorArray | None = None,
) -> bool:
    """The ``IDT`` intrinsic (§2.5.2).

    Tests the distribution type of its argument against ``pattern``
    and, optionally, the processor section the argument is distributed
    to.  Returns a logical value, composable inside ordinary Python
    boolean expressions just as IDT composes inside Fortran logical
    expressions.
    """
    pat = as_pattern(pattern)
    if isinstance(dist, Distribution):
        if section is not None:
            if isinstance(section, ProcessorArray):
                section = section.full_section()
            if dist.target != section:
                return False
        return pat.matches(dist.dtype)
    if section is not None:
        raise ValueError("section test requires a bound Distribution argument")
    return pat.matches(dist)


class QueryList:
    """One DCASE condition: positional or name-tagged (§2.5.1).

    Positional: ``QueryList(["(BLOCK)", "(BLOCK)", (Cyclic(2), Cyclic(1))])``
    — queries pair with selectors in order; trailing selectors get an
    implicit ``*``.

    Name-tagged: ``QueryList({"B1": "(CYCLIC)", "B3": ("BLOCK", "*")})``
    — order is irrelevant; unmentioned selectors get an implicit ``*``.
    """

    def __init__(self, queries: Sequence[object] | dict[str, object]):
        if isinstance(queries, dict):
            self.tagged: dict[str, TypePattern] | None = {
                str(k): as_pattern(v) for k, v in queries.items()
            }
            self.positional: tuple[TypePattern, ...] | None = None
        else:
            self.tagged = None
            self.positional = tuple(as_pattern(q) for q in queries)

    def matches(
        self,
        selector_names: Sequence[str],
        selector_types: Sequence[DistributionType],
    ) -> bool:
        if self.tagged is not None:
            unknown = set(self.tagged) - set(selector_names)
            if unknown:
                raise KeyError(
                    f"name-tagged query references non-selector arrays: "
                    f"{sorted(unknown)}"
                )
            for name, dtype in zip(selector_names, selector_types):
                pat = self.tagged.get(name)
                if pat is not None and not pat.matches(dtype):
                    return False
            return True
        assert self.positional is not None
        if len(self.positional) > len(selector_types):
            raise ValueError(
                f"positional query list has {len(self.positional)} queries "
                f"but only {len(selector_types)} selectors"
            )
        # implicit '*' for unrepresented selectors
        return all(
            pat.matches(dtype)
            for pat, dtype in zip(self.positional, selector_types)
        )

    def __repr__(self) -> str:
        if self.tagged is not None:
            inner = ", ".join(f"{k}: {v!r}" for k, v in self.tagged.items())
        else:
            inner = ", ".join(repr(p) for p in self.positional or ())
        return f"CASE {inner}"


class DCase:
    """The DCASE construct (§2.5.1).

    Build with selector (name, distribution-or-type) pairs, add
    condition/action arms with :meth:`case` and :meth:`default`, then
    :meth:`execute`.  "The dcase construct selects at most one of its
    constituent blocks for execution": conditions are evaluated in
    order; the first match runs; no match runs nothing.

    ``execute`` returns the action's return value (or ``None`` when no
    arm matched), plus the index of the matched arm via
    :attr:`last_matched`.
    """

    def __init__(self, selectors: Sequence[tuple[str, Distribution | DistributionType]]):
        if not selectors:
            raise ValueError("DCASE needs at least one selector (r >= 1)")
        self.selector_names = [str(n) for n, _ in selectors]
        self.selector_types = [
            d.dtype if isinstance(d, Distribution) else d for _, d in selectors
        ]
        for d in self.selector_types:
            if not isinstance(d, DistributionType):
                raise TypeError(
                    "each selector must be associated with a well-defined "
                    f"distribution; got {d!r}"
                )
        self.arms: list[tuple[QueryList | _DefaultMarker, Callable[[], object]]] = []
        self.last_matched: int | None = None

    def case(
        self,
        queries: Sequence[object] | dict[str, object] | _DefaultMarker,
        action: Callable[[], object],
    ) -> "DCase":
        """Append one condition/action pair; returns self for chaining."""
        if queries is DEFAULT:
            self.arms.append((DEFAULT, action))
        else:
            self.arms.append((QueryList(queries), action))
        return self

    def default(self, action: Callable[[], object]) -> "DCase":
        return self.case(DEFAULT, action)

    def execute(self) -> object:
        self.last_matched = None
        for j, (cond, action) in enumerate(self.arms):
            if cond is DEFAULT or cond.matches(
                self.selector_names, self.selector_types
            ):
                self.last_matched = j
                return action()
        return None

    def __repr__(self) -> str:
        return (
            f"SELECT DCASE ({', '.join(self.selector_names)}) "
            f"with {len(self.arms)} arms"
        )
