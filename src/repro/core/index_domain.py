"""Index domains (paper §2.1).

Each array ``A`` is associated with an index domain ``I^A``.  The paper
models distributions and alignments as index mappings between such
domains, so the domain itself is a first-class object here: a Cartesian
product of integer ranges, 0-based internally (the ``repro.lang`` layer
translates Fortran's default 1-based declarations).
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

__all__ = ["IndexDomain"]


class IndexDomain:
    """The Cartesian index domain of an array.

    ``IndexDomain((10, 10, 10))`` is ``I^C`` for the paper's
    ``REAL C(10,10,10)``.
    """

    def __init__(self, shape: Sequence[int] | int):
        if isinstance(shape, int):
            shape = (shape,)
        self.shape = tuple(int(s) for s in shape)
        if not self.shape:
            raise ValueError("index domain needs at least one dimension")
        for s in self.shape:
            if s < 1:
                raise ValueError(f"extents must be >= 1, got {self.shape}")

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    def __contains__(self, index: Sequence[int]) -> bool:
        index = tuple(index) if not isinstance(index, int) else (index,)
        if len(index) != self.ndim:
            return False
        return all(0 <= i < s for i, s in zip(index, self.shape))

    def check(self, index: Sequence[int] | int) -> tuple[int, ...]:
        """Validate and normalize an index to a tuple."""
        if isinstance(index, int):
            index = (index,)
        index = tuple(int(i) for i in index)
        if index not in self:
            raise IndexError(f"index {index} not in domain of shape {self.shape}")
        return index

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return itertools.product(*(range(s) for s in self.shape))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IndexDomain) and self.shape == other.shape

    def __hash__(self) -> int:
        return hash(self.shape)

    def __repr__(self) -> str:
        return f"IndexDomain{self.shape}"
