"""``python -m repro`` — tour, planner, backend, trace and calibration CLI.

With no arguments, runs a miniature version of each paper artifact
(Figure 1 ADI, Figure 2 PIC, the §4 smoothing choice) and prints the
headline comparisons.  Subcommands::

    python -m repro plan adi --nprocs 4 --cost-model Paragon
    python -m repro plan adi --cost-mode simulated --json
    python -m repro run adi --backend multiprocess
    python -m repro run smoothing --backend multiprocess --nprocs 4
    python -m repro trace adi --nprocs 4 --size 32
    python -m repro calibrate --nprocs 2
    python -m repro bench --smoke --check

``plan`` runs the automatic distribution planner on a named workload
(``--cost-mode simulated`` prices against split-phase overlap
semantics); ``run`` executes a workload on a chosen SPMD execution
backend (``serial`` or ``multiprocess``), verifying multiprocess
results bitwise against the serial reference; ``trace`` records a
workload's typed event stream and replays it through the
discrete-event simulator under blocking and split-phase semantics —
per-processor timelines, Gantt chart, critical path, JSON export;
``calibrate`` microbenchmarks the multiprocess transport, fits
measured alpha/beta/flop-rate constants, and feeds the resulting
MeasuredMachine to the planner.  ``plan`` and ``run`` accept
``--json`` for machine-readable reports.

The full tables live in ``benchmarks/`` (run
``pytest benchmarks/ --benchmark-disable -s``).
"""

from __future__ import annotations

import argparse
import json
from typing import Sequence


def tour() -> None:
    """The original one-screen tour of the reproduction."""
    import numpy as np

    from .apps.adi import run_adi
    from .apps.pic import PICConfig, run_pic
    from .apps.smoothing import best_distribution
    from .machine import IPSC860, Machine, MODERN_CLUSTER, PARAGON, ProcessorArray

    print("repro — Dynamic Data Distributions in Vienna Fortran (SC'93)\n")

    print("Figure 1 (ADI, 64x64, 4 procs, Paragon model):")
    for strategy in ("dynamic", "planned", "static_cols"):
        m = Machine(ProcessorArray("R", (4,)), cost_model=PARAGON)
        r = run_adi(m, 64, 64, 2, strategy, seed=0)
        print(
            f"  {strategy:12s} sweep msgs={r.sweep_messages:4d}  "
            f"redist msgs={r.redistribution.messages:3d}  "
            f"time={r.total_time * 1e3:7.2f} ms"
        )

    print("\nFigure 2 (PIC, 3000 particles drifting, 50 steps):")
    for strategy in ("static", "bblock", "planned"):
        m = Machine(ProcessorArray("P", (4,)), cost_model=PARAGON)
        r = run_pic(
            m,
            PICConfig(
                strategy=strategy, ncell=128, npart=3000, max_time=50,
                nprocs=4, drift=0.006, seed=5,
            ),
        )
        print(
            f"  {strategy:8s} mean imbalance={r.mean_imbalance:5.2f}  "
            f"max={r.max_imbalance:5.2f}  redistributions={r.redistributions}"
        )

    print("\nSection 4 smoothing choice (N=128, p=16):")
    for model in (IPSC860, PARAGON, MODERN_CLUSTER):
        print(f"  on {model.name:9s}: DISTRIBUTE U :: "
              f"{best_distribution(128, 16, model)}")

    print("\nSee examples/ and benchmarks/ for the full reproduction, and")
    print("`python -m repro plan <adi|pic|smoothing>` for the planner.")
    del np


def plan_command(args: argparse.Namespace) -> None:
    """Run the automatic distribution planner on a named workload."""
    from .machine import PRESETS
    from .planner import (
        CostEngine,
        SimulatedCostEngine,
        get_workload,
        hand_schedule_cost,
        plan_workload,
    )

    cost_model = PRESETS[args.cost_model]
    kwargs: dict = {"nprocs": args.nprocs, "cost_model": cost_model}
    if args.workload == "adi":
        kwargs.update(nx=args.size, ny=args.size, iterations=args.iterations)
    elif args.workload == "pic":
        kwargs.update(ncell=args.size, steps=args.steps)
    else:
        kwargs.update(n=args.size, steps=args.steps)
    workload = get_workload(args.workload, **kwargs)

    if args.cost_mode == "simulated":
        engine: CostEngine = SimulatedCostEngine(workload.machine)
    else:
        engine = CostEngine(workload.machine)
    plan = plan_workload(workload, cost_engine=engine, method=args.method)
    hand = hand_schedule_cost(workload, cost_engine=engine)
    if args.json:
        report = {
            "workload": args.workload,
            "description": workload.description,
            "cost_model": cost_model.name,
            "cost_mode": args.cost_mode,
            "nprocs": args.nprocs,
            "plan": plan.to_dict(),
            "hand_schedule_cost": hand,
        }
        print(json.dumps(report, indent=2))
        return
    print(f"workload: {workload.description}")
    print(plan.summary())
    if hand is not None:
        print(f"  paper's hand schedule: {hand:.3e}s")
    best = plan.best_static
    if best is not None:
        if plan.total_cost > 0:
            ratio = best[1] / plan.total_cost
        else:
            # both costs zero (e.g. the zero-cost model): equal, not inf
            ratio = 1.0 if best[1] == 0 else float("inf")
        print(
            f"  planner vs best static: {plan.total_cost:.3e}s vs "
            f"{best[1]:.3e}s ({ratio:.1f}x)"
        )


def run_command(args: argparse.Namespace) -> None:
    """Execute a workload on a chosen SPMD execution backend."""
    import numpy as np

    from .apps.adi import run_adi
    from .apps.pic import PICConfig, run_pic
    from .apps.smoothing import run_smoothing
    from .machine import Machine, PRESETS, ProcessorArray

    cost_model = PRESETS[args.cost_model]

    def execute(backend: str):
        if args.workload == "adi":
            machine = Machine(
                ProcessorArray("R", (args.nprocs,)), cost_model=cost_model
            )
            r = run_adi(
                machine, args.size, args.size, args.iterations,
                strategy="dynamic", seed=0, backend=backend,
            )
            return r.solution, {
                "sweep_msgs": r.sweep_messages,
                "redist_msgs": r.redistribution.messages,
                "modeled_time_ms": r.total_time * 1e3,
            }
        if args.workload == "pic":
            machine = Machine(
                ProcessorArray("P", (args.nprocs,)), cost_model=cost_model
            )
            cfg = PICConfig(
                strategy="bblock", ncell=args.size, npart=8 * args.size,
                max_time=args.steps, nprocs=args.nprocs, seed=0,
            )
            r = run_pic(machine, cfg, backend=backend)
            sol = np.array(
                [s.imbalance for s in r.steps], dtype=np.float64
            )
            return sol, {
                "mean_imbalance": r.mean_imbalance,
                "redistributions": r.redistributions,
                "modeled_time_ms": r.total_time * 1e3,
            }
        r = run_smoothing(
            args.size, args.steps, "columns", args.nprocs, cost_model,
            seed=0, backend=backend,
        )
        return r.solution, {
            "msgs_per_proc_step": r.msgs_per_proc_step,
            "modeled_time_ms": r.time * 1e3,
        }

    solution, headline = execute(args.backend)
    verified: bool | None = None
    if args.backend != "serial" and not args.no_verify:
        reference, _ = execute("serial")
        verified = bool(np.array_equal(solution, reference))
    if args.json:
        report = {
            "workload": args.workload,
            "backend": args.backend,
            "nprocs": args.nprocs,
            "size": args.size,
            "cost_model": cost_model.name,
            "verified_against_serial": verified,
            **headline,
        }
        print(json.dumps(report, indent=2))
    else:
        print(
            f"run {args.workload} (nprocs={args.nprocs}, size={args.size}, "
            f"backend={args.backend}, cost model {cost_model.name})"
        )
        for k, v in headline.items():
            shown = f"{v:.3f}" if isinstance(v, float) else str(v)
            print(f"  {k:18s} {shown}")
        if verified is not None:
            print(f"  identical to serial backend: {verified}")
    if verified is False:
        raise SystemExit(
            f"{args.backend} backend diverged from the serial reference"
        )


def trace_command(args: argparse.Namespace) -> None:
    """Record a workload's events; simulate blocking vs split-phase."""
    from . import sim
    from .machine import (
        Machine,
        PRESETS,
        ProcessorArray,
        timeline_summary,
        timeline_table,
    )

    cost_model = PRESETS[args.cost_model]
    log = sim.EventLog()

    if args.workload == "adi":
        from .apps.adi import run_adi

        machine = Machine(
            ProcessorArray("R", (args.nprocs,)), cost_model=cost_model
        )
        with sim.record(machine, log):
            run_adi(
                machine, args.size, args.size, args.iterations,
                strategy="dynamic", seed=0,
            )
    elif args.workload == "smoothing":
        from .apps.smoothing import run_smoothing

        machine = Machine((args.nprocs,), cost_model=cost_model)
        with sim.record(machine, log):
            run_smoothing(
                args.size, args.steps, "columns", args.nprocs,
                cost_model, seed=0, machine=machine,
            )
    elif args.workload == "pic":
        from .apps.pic import PICConfig, run_pic

        machine = Machine(
            ProcessorArray("P", (args.nprocs,)), cost_model=cost_model
        )
        with sim.record(machine, log):
            run_pic(
                machine,
                PICConfig(
                    strategy="bblock", ncell=args.size,
                    npart=8 * args.size, max_time=args.steps,
                    nprocs=args.nprocs, seed=0,
                ),
            )
    else:  # irregular
        from .apps.irregular import make_mesh, run_relaxation

        machine = Machine(
            ProcessorArray("P", (args.nprocs,)), cost_model=cost_model
        )
        graph = make_mesh(args.size, seed=0)
        with sim.record(machine, log):
            run_relaxation(
                machine, graph, "partitioned", sweeps=args.steps, seed=0
            )

    blocking = sim.simulate(
        log, machine.cost_model, machine.nprocs, overlap=False
    )
    split = sim.simulate(
        log, machine.cost_model, machine.nprocs, overlap=True
    )
    exact = blocking.clocks == machine.network.clocks
    cp_blocking = sim.critical_path(blocking)
    cp_split = sim.critical_path(split)

    if args.json:
        report = {
            "workload": args.workload,
            "nprocs": args.nprocs,
            "size": args.size,
            "cost_model": cost_model.name,
            "events": log.counts(),
            "matches_aggregate_accounting": exact,
            "blocking": sim.to_json(
                blocking, critical=cp_blocking, intervals=not args.compact
            ),
            "split_phase": sim.to_json(
                split, critical=cp_split, intervals=not args.compact
            ),
        }
        print(json.dumps(report, indent=2))
        return

    print(
        f"trace {args.workload} (nprocs={args.nprocs}, size={args.size}, "
        f"cost model {cost_model.name})"
    )
    print(f"  events: {log.counts()}")
    print(f"  matches aggregate accounting bit for bit: {exact}")
    print(f"  blocking:    {blocking.summary()}")
    print(f"  split-phase: {split.summary()}")
    if blocking.makespan > 0:
        reduction = 1.0 - split.makespan / blocking.makespan
        print(
            f"  split-phase overlap hides {reduction:.1%} of the "
            f"blocking makespan"
        )
    print(f"\nper-processor timeline ({blocking.cost_model}, blocking):")
    print(timeline_table(blocking))
    print(f"\n{timeline_summary(blocking, machine)}")
    print("\nblocking:")
    print(sim.gantt(blocking, width=args.width))
    print("\nsplit-phase:")
    print(sim.gantt(split, width=args.width))
    print(f"\nblocking    {cp_blocking.summary()}")
    print(f"split-phase {cp_split.summary()}")


def bench_command(args: argparse.Namespace) -> None:
    """Time the vectorized hot paths against their reference oracles."""
    from .perf import run_harness

    mode = "smoke" if args.smoke else "full"
    print(f"perf harness ({mode} sizes; wall-clock informational, "
          f"op counts asserted{' [--check]' if args.check else ''}):")
    run_harness(
        smoke=args.smoke,
        out=args.out,
        check=args.check,
        benches=args.only or None,
    )


def calibrate_command(args: argparse.Namespace) -> None:
    """Calibrate the multiprocess transport; plan against the fit."""
    from .backend.calibrate import calibrate
    from .machine import MeasuredMachine, ProcessorArray
    from .planner import CostEngine, adi_workload, plan_workload

    print(
        f"calibrating multiprocess transport "
        f"(nprocs={args.nprocs}, repeats={args.repeats}) ..."
    )
    cal = calibrate(nprocs=args.nprocs, repeats=args.repeats)
    print(f"  {cal.summary()}")
    for nbytes, seconds in cal.samples:
        print(f"    {nbytes:>9d} B  {seconds * 1e6:10.2f} us one-way")

    machine = MeasuredMachine(ProcessorArray("M", (args.nprocs,)), cal)
    print(f"\nplanner on the measured machine: {machine!r}")
    workload = adi_workload(32, 32, iterations=2, machine=machine)
    plan = plan_workload(workload, cost_engine=CostEngine(machine))
    print(plan.summary())


def main(argv: Sequence[str] | None = None) -> None:
    # None means "no CLI arguments" (the tour): callers that want real
    # argv pass sys.argv[1:] explicitly (see __main__ guard below).
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Vienna Fortran dynamic-distribution reproduction.",
    )
    sub = parser.add_subparsers(dest="command")
    p = sub.add_parser(
        "plan", help="run the automatic distribution planner on a workload"
    )
    p.add_argument("workload", choices=("adi", "pic", "smoothing"))
    p.add_argument("--nprocs", type=int, default=4)
    p.add_argument("--size", type=int, default=64,
                   help="grid/cell extent (NX=NY for adi, NCELL for pic, N "
                        "for smoothing)")
    p.add_argument("--iterations", type=int, default=4,
                   help="ADI outer iterations")
    p.add_argument("--steps", type=int, default=50,
                   help="time steps (pic, smoothing)")
    p.add_argument("--cost-model", default="Paragon",
                   choices=("iPSC/860", "Paragon", "modern", "zero"))
    p.add_argument("--method", default="auto",
                   choices=("auto", "dp", "greedy"))
    p.add_argument("--cost-mode", default="model",
                   choices=("model", "simulated"),
                   help="pricing semantics: closed-form aggregates or "
                        "the discrete-event simulator's split-phase "
                        "overlap")
    p.add_argument("--json", action="store_true",
                   help="emit the plan as machine-readable JSON")

    r = sub.add_parser(
        "run", help="execute a workload on an SPMD execution backend"
    )
    r.add_argument("workload", choices=("adi", "pic", "smoothing"))
    r.add_argument("--backend", default="serial",
                   choices=("serial", "multiprocess"))
    r.add_argument("--nprocs", type=int, default=4)
    r.add_argument("--size", type=int, default=32,
                   help="grid/cell extent (NX=NY for adi, NCELL for pic, "
                        "N for smoothing)")
    r.add_argument("--iterations", type=int, default=2,
                   help="ADI outer iterations")
    r.add_argument("--steps", type=int, default=10,
                   help="time steps (pic, smoothing)")
    r.add_argument("--cost-model", default="Paragon",
                   choices=("iPSC/860", "Paragon", "modern", "zero"))
    r.add_argument("--no-verify", action="store_true",
                   help="skip the bitwise comparison against the "
                        "serial backend")
    r.add_argument("--json", action="store_true",
                   help="emit the run report as machine-readable JSON")

    t = sub.add_parser(
        "trace",
        help="record a workload's typed events and replay them through "
             "the discrete-event simulator (blocking vs split-phase)",
    )
    t.add_argument("workload", choices=("adi", "pic", "smoothing", "irregular"))
    t.add_argument("--nprocs", type=int, default=4)
    t.add_argument("--size", type=int, default=32,
                   help="grid/cell/mesh extent (NX=NY for adi, NCELL for "
                        "pic, N for smoothing, nodes for irregular)")
    t.add_argument("--iterations", type=int, default=2,
                   help="ADI outer iterations")
    t.add_argument("--steps", type=int, default=10,
                   help="time steps / sweeps (pic, smoothing, irregular)")
    t.add_argument("--cost-model", default="Paragon",
                   choices=("iPSC/860", "Paragon", "modern", "zero"))
    t.add_argument("--width", type=int, default=72,
                   help="Gantt chart width in characters")
    t.add_argument("--json", action="store_true",
                   help="emit both timelines as machine-readable JSON")
    t.add_argument("--compact", action="store_true",
                   help="with --json: metrics only, no interval lists")

    c = sub.add_parser(
        "calibrate",
        help="microbenchmark the multiprocess transport and fit "
             "measured machine constants",
    )
    c.add_argument("--nprocs", type=int, default=2)
    c.add_argument("--repeats", type=int, default=7)

    from .perf import BENCHES

    b = sub.add_parser(
        "bench",
        help="time the vectorized hot paths against their per-element/"
             "per-event reference oracles and write BENCH_PERF.json",
    )
    b.add_argument("--smoke", action="store_true",
                   help="CI-sized problems (fast; same op-count checks)")
    b.add_argument("--check", action="store_true",
                   help="exit non-zero if any vectorized path's op "
                        "counts or results diverge from its reference")
    b.add_argument("--out", default="BENCH_PERF.json",
                   help="output JSON path ('' to skip writing)")
    b.add_argument("--only", nargs="*", choices=sorted(BENCHES),
                   help="run only the named benches")

    args = parser.parse_args(list(argv) if argv is not None else [])
    if args.command == "plan":
        plan_command(args)
    elif args.command == "run":
        run_command(args)
    elif args.command == "trace":
        trace_command(args)
    elif args.command == "calibrate":
        calibrate_command(args)
    elif args.command == "bench":
        bench_command(args)
    else:
        tour()


if __name__ == "__main__":
    import sys

    main(sys.argv[1:])
