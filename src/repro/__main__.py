"""``python -m repro`` — a one-screen tour of the reproduction.

Runs a miniature version of each paper artifact (Figure 1 ADI,
Figure 2 PIC, the §4 smoothing choice) and prints the headline
comparisons.  The full tables live in ``benchmarks/`` (run
``pytest benchmarks/ --benchmark-disable -s``).
"""

from __future__ import annotations


def main() -> None:
    import numpy as np

    from .apps.adi import run_adi
    from .apps.pic import PICConfig, run_pic
    from .apps.smoothing import best_distribution
    from .machine import IPSC860, Machine, MODERN_CLUSTER, PARAGON, ProcessorArray

    print("repro — Dynamic Data Distributions in Vienna Fortran (SC'93)\n")

    print("Figure 1 (ADI, 64x64, 4 procs, Paragon model):")
    for strategy in ("dynamic", "static_cols"):
        m = Machine(ProcessorArray("R", (4,)), cost_model=PARAGON)
        r = run_adi(m, 64, 64, 2, strategy, seed=0)
        print(
            f"  {strategy:12s} sweep msgs={r.sweep_messages:4d}  "
            f"redist msgs={r.redistribution.messages:3d}  "
            f"time={r.total_time * 1e3:7.2f} ms"
        )

    print("\nFigure 2 (PIC, 3000 particles drifting, 50 steps):")
    for strategy in ("static", "bblock"):
        m = Machine(ProcessorArray("P", (4,)), cost_model=PARAGON)
        r = run_pic(
            m,
            PICConfig(
                strategy=strategy, ncell=128, npart=3000, max_time=50,
                nprocs=4, drift=0.006, seed=5,
            ),
        )
        print(
            f"  {strategy:8s} mean imbalance={r.mean_imbalance:5.2f}  "
            f"max={r.max_imbalance:5.2f}  redistributions={r.redistributions}"
        )

    print("\nSection 4 smoothing choice (N=128, p=16):")
    for model in (IPSC860, PARAGON, MODERN_CLUSTER):
        print(f"  on {model.name:9s}: DISTRIBUTE U :: "
              f"{best_distribution(128, 16, model)}")

    print("\nSee examples/ and benchmarks/ for the full reproduction.")
    del np


if __name__ == "__main__":
    main()
