"""``python -m repro`` — the session facade on the command line.

With no arguments, runs a miniature version of each paper artifact
(Figure 1 ADI, Figure 2 PIC, the §4 smoothing choice) and prints the
headline comparisons.  Subcommands::

    python -m repro plan adi --nprocs 4 --cost-model Paragon
    python -m repro plan adi --cost-mode simulated --json
    python -m repro run adi --backend multiprocess
    python -m repro run smoothing --backend multiprocess --nprocs 4
    python -m repro trace adi --nprocs 4 --size 32
    python -m repro calibrate --nprocs 2
    python -m repro bench --smoke --check
    python -m repro bench --compare --smoke
    python -m repro serve --port 8642
    python -m repro serve --loadtest --clients 8 --check
    python -m repro obs --workload adi --stage plan --json
    python -m repro obs analyze --workload adi
    python -m repro obs compare --baseline old/BENCH_PERF.json

Every subcommand goes through :mod:`repro.api`: one
:func:`repro.session` per invocation owns the machine policy, backend,
plan cache and seed, and the workload lists are enumerated from the
:data:`repro.api.REGISTRY` — registering a new workload makes it
appear in ``plan`` / ``run`` / ``trace`` automatically.

``plan`` runs the automatic distribution planner (``--cost-mode
simulated`` prices against split-phase overlap semantics); ``run``
executes a workload on an SPMD backend (``serial`` |
``multiprocess``), verifying multiprocess results bitwise against the
serial reference; ``trace`` replays a workload's typed event stream
through the discrete-event simulator under blocking and split-phase
semantics; ``calibrate`` fits measured transport constants and plans
against them; ``bench`` times the vectorized hot paths; ``serve``
exposes all of it as a multi-tenant asyncio HTTP service (with
``--loadtest``, it instead hammers a fresh in-process server — or
``--url``, a running one — and writes ``BENCH_SERVE.json`` plus a
``/metrics`` snapshot); ``obs`` flips observability on, optionally
drives one workload stage, and dumps the metrics registry (Prometheus
text, ``--json`` snapshot, ``--chrome-out`` span trace).  ``bench
--compare`` is the regression sentinel: it diffs the fresh run against
a baseline (op-count drift exits 2, wall-clock drift beyond the
trajectory's noise band exits 3) and appends every run to the
``BENCH_TRAJECTORY.jsonl`` history; ``obs analyze`` renders a
per-phase attribution table (summing to the simulated makespan) with
the top-3 slowness reasons; ``obs compare`` runs the sentinel over two
existing report files.  All
subcommands accept ``--json`` for machine-readable reports and exit
nonzero on failure instead of printing a traceback.

The full tables live in ``benchmarks/`` (run
``pytest benchmarks/ --benchmark-disable -s``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

COST_MODEL_CHOICES = ("iPSC/860", "Paragon", "modern", "zero")
BACKEND_CHOICES = ("serial", "multiprocess")


def _workload_params(args: argparse.Namespace) -> dict:
    """Map the CLI's generic knobs onto the workload's registered
    parameters (only the ones the workload accepts)."""
    from .api import REGISTRY

    defaults = REGISTRY.get(args.workload).defaults
    params: dict = {}
    for key in ("size", "iterations", "steps"):
        if key in defaults and hasattr(args, key):
            params[key] = getattr(args, key)
    return params


def _session(args: argparse.Namespace, **overrides):
    from .api import session

    kwargs = {
        "nprocs": args.nprocs,
        "cost_model": getattr(args, "cost_model", "Paragon"),
    }
    kwargs.update(overrides)
    return session(**kwargs)


def tour() -> None:
    """The original one-screen tour, through the session facade."""
    from .api import session
    from .apps.smoothing import best_distribution
    from .machine import IPSC860, MODERN_CLUSTER, PARAGON

    print("repro — Dynamic Data Distributions in Vienna Fortran (SC'93)\n")

    with session(nprocs=4, cost_model="Paragon") as sess:
        print("Figure 1 (ADI, 64x64, 4 procs, Paragon model):")
        for strategy in ("dynamic", "planned", "static_cols"):
            r = sess.workload(
                "adi", size=64, iterations=2, strategy=strategy
            ).run()
            a = r.result
            print(
                f"  {strategy:12s} sweep msgs={a.sweep_messages:4d}  "
                f"redist msgs={a.redistribution.messages:3d}  "
                f"time={a.total_time * 1e3:7.2f} ms"
            )

        print("\nFigure 2 (PIC, 3000 particles drifting, 50 steps):")
        for strategy in ("static", "bblock", "planned"):
            r = sess.workload(
                "pic", size=128, npart=3000, steps=50, strategy=strategy,
                drift=0.006, seed=5,
            ).run()
            p = r.result
            print(
                f"  {strategy:8s} mean imbalance={p.mean_imbalance:5.2f}  "
                f"max={p.max_imbalance:5.2f}  "
                f"redistributions={p.redistributions}"
            )

    print("\nSection 4 smoothing choice (N=128, p=16):")
    for model in (IPSC860, PARAGON, MODERN_CLUSTER):
        print(f"  on {model.name:9s}: DISTRIBUTE U :: "
              f"{best_distribution(128, 16, model)}")

    print("\nSee examples/ and benchmarks/ for the full reproduction, and")
    print("`python -m repro plan <adi|pic|smoothing>` for the planner.")


def plan_command(args: argparse.Namespace) -> None:
    """Run the automatic distribution planner on a named workload."""
    with _session(args) as sess:
        handle = sess.workload(args.workload, **_workload_params(args))
        result = handle.plan(cost_mode=args.cost_mode, method=args.method)
    if args.json:
        print(result.json_str())
    else:
        print(result.summary())


def run_command(args: argparse.Namespace) -> None:
    """Execute a workload on a chosen SPMD execution backend."""
    import numpy as np

    params = _workload_params(args)
    with _session(args, backend=args.backend) as sess:
        result = sess.workload(args.workload, **params).run()
    verified: bool | None = None
    if args.backend != "serial" and not args.no_verify:
        with _session(args, backend="serial") as sess:
            reference = sess.workload(args.workload, **params).run()
        verified = bool(np.array_equal(result.solution, reference.solution))
    if args.json:
        print(json.dumps(
            {**result.to_json(), "verified_against_serial": verified},
            indent=2,
        ))
    else:
        print(result.summary())
        if verified is not None:
            print(f"  identical to serial backend: {verified}")
    if verified is False:
        raise SystemExit(
            f"{args.backend} backend diverged from the serial reference"
        )


def trace_command(args: argparse.Namespace) -> None:
    """Record a workload's events; simulate blocking vs split-phase."""
    from .machine import timeline_table, timeline_summary
    from .sim import critical_path, gantt

    with _session(args) as sess:
        result = sess.workload(args.workload, **_workload_params(args)).trace()

    if args.json:
        print(json.dumps(result.to_json(intervals=not args.compact), indent=2))
        return

    blocking, split = result.blocking, result.split
    print(result.summary())
    print(f"\nper-processor timeline ({blocking.cost_model}, blocking):")
    print(timeline_table(blocking))
    print(f"\n{timeline_summary(blocking)}")
    print("\nblocking:")
    print(gantt(blocking, width=args.width))
    print("\nsplit-phase:")
    print(gantt(split, width=args.width))
    print(f"\nblocking    {critical_path(blocking).summary()}")
    print(f"split-phase {critical_path(split).summary()}")


def bench_command(args: argparse.Namespace) -> None:
    """Time the vectorized hot paths against their reference oracles;
    with ``--compare``, diff the run against a baseline (the regression
    sentinel: op-count drift is a hard fail, exit 2; wall-clock drift
    beyond the trajectory's noise band a soft fail, exit 3)."""
    from .perf import run_harness

    mode = "smoke" if args.smoke else "full"
    trajectory = args.trajectory or None
    if not args.json:
        print(f"perf harness ({mode} sizes; wall-clock informational, "
              f"op counts asserted{' [--check]' if args.check else ''}):")
    if not args.compare:
        report = run_harness(
            smoke=args.smoke,
            out=args.out,
            check=args.check,
            benches=args.only or None,
            quiet=args.json,
            trajectory=trajectory,
        )
        if args.json:
            print(json.dumps(report, indent=2))
        return

    from .obs.compare import compare_perf_reports, resolve_baseline
    from .obs.trajectory import TrajectoryStore

    # resolve the baseline *before* the harness runs: the run must not
    # land in the trajectory first (it would baseline itself), and the
    # harness overwrites --out (default BENCH_PERF.json) — the very
    # file the snapshot fallback would otherwise read back
    store = TrajectoryStore(trajectory) if trajectory else None
    baseline, source = resolve_baseline(
        {"smoke": bool(args.smoke)},
        kind="perf", baseline_path=args.baseline, trajectory=store,
    )
    report = run_harness(
        smoke=args.smoke,
        out=args.out,
        check=args.check,
        benches=args.only or None,
        quiet=args.json,
    )
    comparison = compare_perf_reports(
        baseline, report, baseline_source=source, trajectory=store,
        wall_tolerance=args.wall_tolerance,
    )
    if store is not None:
        store.append("perf", report)
    if args.json:
        print(json.dumps(
            {"report": report, "comparison": comparison.to_json()}, indent=2
        ))
    else:
        print(comparison.summary())
    if comparison.exit_code:
        raise SystemExit(comparison.exit_code)


def calibrate_command(args: argparse.Namespace) -> None:
    """Calibrate the multiprocess transport; plan against the fit."""
    from .backend.calibrate import calibrate
    from .machine import MeasuredMachine, ProcessorArray
    from .planner import CostEngine, adi_workload
    from .planner.workloads import _plan_workload

    if not args.json:
        print(
            f"calibrating multiprocess transport "
            f"(nprocs={args.nprocs}, repeats={args.repeats}) ..."
        )
    cal = calibrate(nprocs=args.nprocs, repeats=args.repeats)
    machine = MeasuredMachine(ProcessorArray("M", (args.nprocs,)), cal)
    workload = adi_workload(32, 32, iterations=2, machine=machine)
    plan = _plan_workload(workload, cost_engine=CostEngine(machine))

    if args.json:
        print(json.dumps(
            {
                "nprocs": args.nprocs,
                "repeats": args.repeats,
                "alpha_s": cal.alpha,
                "beta_s_per_byte": cal.beta,
                "flop_rate": cal.flop_rate,
                "residual_s": cal.residual,
                "source": cal.source,
                "samples": [
                    {"bytes": int(n), "seconds": float(s)}
                    for n, s in cal.samples
                ],
                "plan": plan.to_dict(),
            },
            indent=2,
        ))
        return
    print(f"  {cal.summary()}")
    for nbytes, seconds in cal.samples:
        print(f"    {nbytes:>9d} B  {seconds * 1e6:10.2f} us one-way")
    print(f"\nplanner on the measured machine: {machine!r}")
    print(plan.summary())


def serve_command(args: argparse.Namespace) -> None:
    """Serve plan/run/trace/bench over HTTP, or load-test a server."""
    from .serve import PlanningService, run_loadtest, serve_forever

    if args.loadtest or args.url or args.chaos:
        out = args.out
        metrics_out = args.metrics_out
        if args.chaos:
            # chaos gets its own artifacts; never clobber the
            # steady-state bench snapshot or metrics scrape
            if out == "BENCH_SERVE.json":
                out = "BENCH_CHAOS.json"
            if metrics_out == "METRICS_SERVE.prom":
                metrics_out = ""
        report = run_loadtest(
            url=args.url,
            clients=args.clients,
            rounds=args.rounds,
            smoke=args.smoke,
            out=out,
            metrics_out=metrics_out,
            trajectory=args.trajectory or None,
            check=args.check,
            quiet=args.json,
            chaos=args.chaos,
            chaos_seed=args.chaos_seed,
        )
        if args.json:
            print(json.dumps(report, indent=2))
        return
    service = PlanningService(
        max_idle_sessions=args.pool_size,
        response_cache_capacity=args.cache_capacity,
    )
    serve_forever(
        service, host=args.host, port=args.port, max_workers=args.workers
    )


def adapt_command(args: argparse.Namespace) -> None:
    """Run the adaptive-redistribution bench (default) or, with
    --workload, one adaptive run through the session facade."""
    if args.workload:
        with _session(args) as sess:
            params = _workload_params(args)
            if args.drift is not None:
                params["drift"] = args.drift
            handle = sess.workload(args.workload, seed=args.seed, **params)
            result = handle.adapt(mode=args.mode, window=args.window)
        if args.json:
            print(result.json_str())
        else:
            print(result.summary())
        return

    from .adapt import run_adapt_bench

    report = run_adapt_bench(
        smoke=args.smoke,
        out=args.out,
        coverage_out=args.coverage_out,
        check=args.check,
        trajectory=args.trajectory or None,
        quiet=args.json,
        seed=args.seed,
    )
    if args.json:
        print(json.dumps(report, indent=2))


def obs_command(args: argparse.Namespace) -> None:
    """``obs dump`` (default): drive a workload stage with
    observability on and dump the metrics registry.  ``obs analyze``:
    per-phase attribution of a workload's simulated timeline plus the
    top-3 slowness reasons.  ``obs compare``: run the regression
    sentinel over two existing bench reports (no benches re-run)."""
    from . import obs

    if args.action == "analyze":
        if not args.workload:
            raise ValueError("obs analyze needs --workload")
        attr = obs.analyze_workload(
            args.workload,
            nprocs=args.nprocs,
            cost_model=args.cost_model,
            overlap=args.overlap,
            **_workload_params(args),
        )
        if args.json:
            print(json.dumps(attr.to_json(), indent=2))
            return
        print(attr.table())
        print("\ntop reasons this plan is slow:")
        for i, reason in enumerate(attr.top_reasons(), 1):
            print(f"  {i}. [{reason.kind}] {reason.detail}")
        return

    if args.action == "compare":
        from .obs.compare import (
            compare_adapt_reports,
            compare_chaos_reports,
            compare_perf_reports,
            compare_serve_reports,
            load_report,
            resolve_baseline,
        )
        from .obs.trajectory import TrajectoryStore

        current = load_report(args.current)
        store = TrajectoryStore(args.trajectory) if args.trajectory else None
        baseline, source = resolve_baseline(
            current, kind=args.kind, baseline_path=args.baseline,
            trajectory=store,
        )
        if args.kind == "serve":
            comparison = compare_serve_reports(
                baseline, current, baseline_source=source,
                wall_tolerance=args.wall_tolerance,
            )
        elif args.kind == "chaos":
            comparison = compare_chaos_reports(
                baseline, current, baseline_source=source,
                wall_tolerance=args.wall_tolerance,
            )
        elif args.kind == "adapt":
            comparison = compare_adapt_reports(
                baseline, current, baseline_source=source,
                wall_tolerance=args.wall_tolerance,
            )
        else:
            comparison = compare_perf_reports(
                baseline, current, baseline_source=source, trajectory=store,
                wall_tolerance=args.wall_tolerance,
            )
        if args.json:
            print(json.dumps(comparison.to_json(), indent=2))
        else:
            print(comparison.summary())
        if comparison.exit_code:
            raise SystemExit(comparison.exit_code)
        return

    obs.enable()
    if args.workload:
        with _session(args) as sess:
            handle = sess.workload(args.workload, **_workload_params(args))
            getattr(handle, args.stage)()
    if args.chrome_out:
        doc = obs.dump_chrome_trace(args.chrome_out)
        if not args.json:
            print(f"wrote {args.chrome_out} "
                  f"({len(doc['traceEvents'])} events; open in "
                  f"chrome://tracing or Perfetto)",
                  file=sys.stderr)
    if args.json:
        print(json.dumps(obs.registry.snapshot(), indent=2))
    else:
        print(obs.render_prometheus(), end="")


def build_parser() -> argparse.ArgumentParser:
    from .api import REGISTRY
    from .perf import BENCHES

    workload_names = REGISTRY.names()
    plannable = REGISTRY.plannable_names()

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Vienna Fortran dynamic-distribution reproduction.",
    )
    sub = parser.add_subparsers(dest="command")
    p = sub.add_parser(
        "plan", help="run the automatic distribution planner on a workload"
    )
    p.add_argument("workload", choices=plannable)
    p.add_argument("--nprocs", type=int, default=4)
    p.add_argument("--size", type=int, default=64,
                   help="grid/cell extent (NX=NY for adi, NCELL for pic, N "
                        "for smoothing)")
    p.add_argument("--iterations", type=int, default=4,
                   help="ADI outer iterations")
    p.add_argument("--steps", type=int, default=50,
                   help="time steps (pic, smoothing)")
    p.add_argument("--cost-model", default="Paragon",
                   choices=COST_MODEL_CHOICES)
    p.add_argument("--method", default="auto",
                   choices=("auto", "dp", "greedy"))
    p.add_argument("--cost-mode", default="model",
                   choices=("model", "simulated"),
                   help="pricing semantics: closed-form aggregates or "
                        "the discrete-event simulator's split-phase "
                        "overlap")
    p.add_argument("--json", action="store_true",
                   help="emit the plan as machine-readable JSON")

    r = sub.add_parser(
        "run", help="execute a workload on an SPMD execution backend"
    )
    r.add_argument("workload", choices=workload_names)
    r.add_argument("--backend", default="serial", choices=BACKEND_CHOICES)
    r.add_argument("--nprocs", type=int, default=4)
    r.add_argument("--size", type=int, default=32,
                   help="grid/cell/mesh extent (NX=NY for adi, NCELL for "
                        "pic, N for smoothing, nodes for irregular)")
    r.add_argument("--iterations", type=int, default=2,
                   help="ADI outer iterations")
    r.add_argument("--steps", type=int, default=10,
                   help="time steps / sweeps (pic, smoothing, irregular)")
    r.add_argument("--cost-model", default="Paragon",
                   choices=COST_MODEL_CHOICES)
    r.add_argument("--no-verify", action="store_true",
                   help="skip the bitwise comparison against the "
                        "serial backend")
    r.add_argument("--json", action="store_true",
                   help="emit the run report as machine-readable JSON")

    t = sub.add_parser(
        "trace",
        help="record a workload's typed events and replay them through "
             "the discrete-event simulator (blocking vs split-phase)",
    )
    t.add_argument("workload", choices=workload_names)
    t.add_argument("--nprocs", type=int, default=4)
    t.add_argument("--size", type=int, default=32,
                   help="grid/cell/mesh extent (NX=NY for adi, NCELL for "
                        "pic, N for smoothing, nodes for irregular)")
    t.add_argument("--iterations", type=int, default=2,
                   help="ADI outer iterations")
    t.add_argument("--steps", type=int, default=10,
                   help="time steps / sweeps (pic, smoothing, irregular)")
    t.add_argument("--cost-model", default="Paragon",
                   choices=COST_MODEL_CHOICES)
    t.add_argument("--width", type=int, default=72,
                   help="Gantt chart width in characters")
    t.add_argument("--json", action="store_true",
                   help="emit both timelines as machine-readable JSON")
    t.add_argument("--compact", action="store_true",
                   help="with --json: metrics only, no interval lists")

    c = sub.add_parser(
        "calibrate",
        help="microbenchmark the multiprocess transport and fit "
             "measured machine constants",
    )
    c.add_argument("--nprocs", type=int, default=2)
    c.add_argument("--repeats", type=int, default=7)
    c.add_argument("--json", action="store_true",
                   help="emit the fitted constants and the plan on the "
                        "measured machine as JSON")

    b = sub.add_parser(
        "bench",
        help="time the vectorized hot paths against their per-element/"
             "per-event reference oracles and write BENCH_PERF.json",
    )
    b.add_argument("--smoke", action="store_true",
                   help="CI-sized problems (fast; same op-count checks)")
    b.add_argument("--check", action="store_true",
                   help="exit non-zero if any vectorized path's op "
                        "counts or results diverge from its reference")
    b.add_argument("--out", default="BENCH_PERF.json",
                   help="output JSON path ('' to skip writing)")
    b.add_argument("--only", nargs="*", choices=sorted(BENCHES),
                   help="run only the named benches")
    b.add_argument("--json", action="store_true",
                   help="emit the bench report as machine-readable JSON")
    b.add_argument("--compare", action="store_true",
                   help="regression sentinel: diff this run against a "
                        "baseline; op-count drift exits 2 (hard), "
                        "wall-clock drift beyond the noise band exits 3 "
                        "(soft)")
    b.add_argument("--baseline", default=None,
                   help="baseline report for --compare (a BENCH_PERF.json "
                        "or a trajectory .jsonl; default: latest "
                        "compatible trajectory entry, then the committed "
                        "BENCH_PERF.json)")
    b.add_argument("--trajectory", default="BENCH_TRAJECTORY.jsonl",
                   help="append this run to the JSONL trajectory history "
                        "('' to skip)")
    b.add_argument("--wall-tolerance", type=float, default=1.0,
                   help="relative wall-clock tolerance when the "
                        "trajectory has too little history for a noise "
                        "band (1.0 = current may be 2x baseline)")

    s = sub.add_parser(
        "serve",
        help="serve plan/run/trace/bench as a multi-tenant asyncio HTTP "
             "service over the workload registry (--loadtest to hammer "
             "it with concurrent clients and write BENCH_SERVE.json)",
    )
    s.add_argument("--host", default="127.0.0.1")
    s.add_argument("--port", type=int, default=8642)
    s.add_argument("--workers", type=int, default=8,
                   help="executor threads (max in-flight requests)")
    s.add_argument("--pool-size", type=int, default=4,
                   help="idle sessions kept per distinct configuration")
    s.add_argument("--cache-capacity", type=int, default=256,
                   help="cross-session response cache entries")
    s.add_argument("--loadtest", action="store_true",
                   help="start an in-process server and load-test it "
                        "instead of serving")
    s.add_argument("--url", default=None,
                   help="load-test a running server at this base URL "
                        "(implies --loadtest)")
    s.add_argument("--clients", type=int, default=8,
                   help="concurrent load-test clients")
    s.add_argument("--rounds", type=int, default=3,
                   help="repeated-config phase replays per client")
    s.add_argument("--smoke", action="store_true",
                   help="CI-sized workload parameters")
    s.add_argument("--chaos", action="store_true",
                   help="load-test under a seeded fault plan (injected "
                        "request faults + worker-crash recovery phase); "
                        "writes BENCH_CHAOS.json (implies --loadtest; "
                        "in-process server only)")
    s.add_argument("--chaos-seed", type=int, default=None,
                   help="fault-plan seed (defaults to the request seed)")
    s.add_argument("--check", action="store_true",
                   help="exit non-zero unless zero failures, "
                        "byte-identical responses, and > 50%% repeated-"
                        "phase cache hit rate (under --chaos: zero "
                        "byte-identity violations, incident IDs on "
                        "every 5xx, and bitwise-identical recovery)")
    s.add_argument("--out", default="BENCH_SERVE.json",
                   help="load-test report path ('' to skip writing)")
    s.add_argument("--metrics-out", default="METRICS_SERVE.prom",
                   help="load-test /metrics snapshot path "
                        "('' to skip writing)")
    s.add_argument("--trajectory", default="BENCH_TRAJECTORY.jsonl",
                   help="append the load-test report to the JSONL "
                        "trajectory history ('' to skip)")
    s.add_argument("--json", action="store_true",
                   help="emit the load-test report as JSON on stdout")

    a = sub.add_parser(
        "adapt",
        help="online adaptive redistribution: bench the feedback "
             "controller against static/balanced/offline layouts and "
             "write BENCH_ADAPT.json + ADAPT_COVERAGE.json (--workload "
             "for a single adaptive run instead)",
    )
    a.add_argument("--smoke", action="store_true",
                   help="CI-sized drifting-load scenarios")
    a.add_argument("--check", action="store_true",
                   help="exit 2 unless every scenario's gates pass "
                        "(adaptive beats static and offline, replans "
                        "fired, bitwise-deterministic, identical "
                        "solutions across modes)")
    a.add_argument("--out", default="BENCH_ADAPT.json",
                   help="bench report path ('' to skip writing)")
    a.add_argument("--coverage-out", default="ADAPT_COVERAGE.json",
                   help="policy-coverage sweep path ('' to skip)")
    a.add_argument("--trajectory", default="BENCH_TRAJECTORY.jsonl",
                   help="append the report to the JSONL trajectory "
                        "history ('' to skip)")
    a.add_argument("--json", action="store_true",
                   help="emit the report / run as machine-readable JSON")
    a.add_argument("--seed", type=int, default=0,
                   help="bench and single-run seed")
    a.add_argument("--workload", choices=workload_names, default=None,
                   help="run one adaptive session stage instead of the "
                        "bench (pic and irregular have drivers)")
    a.add_argument("--mode", default="adaptive",
                   choices=("static", "balanced", "offline", "adaptive"),
                   help="layout policy for the single run")
    a.add_argument("--window", type=int, default=None,
                   help="steps per monitoring window (default: the "
                        "workload's natural phase length)")
    a.add_argument("--nprocs", type=int, default=4)
    a.add_argument("--size", type=int, default=64,
                   help="grid/cell/mesh extent for --workload")
    a.add_argument("--steps", type=int, default=40,
                   help="time steps / sweeps for --workload")
    a.add_argument("--drift", type=float, default=None,
                   help="per-step load drift for --workload "
                        "(default: the registered workload default)")
    a.add_argument("--cost-model", default="Paragon",
                   choices=COST_MODEL_CHOICES)

    o = sub.add_parser(
        "obs",
        help="observability: dump the metrics registry (default), "
             "'analyze' a workload's simulated timeline into a per-phase "
             "attribution table, or 'compare' two bench reports with the "
             "regression sentinel",
    )
    o.add_argument("action", nargs="?", default="dump",
                   choices=("dump", "analyze", "compare"),
                   help="dump the registry, attribute a timeline, or "
                        "diff bench reports")
    o.add_argument("--workload", choices=workload_names, default=None,
                   help="drive this workload first so the dump has data "
                        "(required for analyze)")
    o.add_argument("--stage", default="plan",
                   choices=("plan", "run", "trace", "bench"),
                   help="which stage to drive on --workload")
    o.add_argument("--nprocs", type=int, default=4)
    o.add_argument("--size", type=int, default=32,
                   help="grid/cell/mesh extent for --workload")
    o.add_argument("--iterations", type=int, default=2,
                   help="ADI outer iterations")
    o.add_argument("--steps", type=int, default=10,
                   help="time steps / sweeps (pic, smoothing, irregular)")
    o.add_argument("--cost-model", default="Paragon",
                   choices=COST_MODEL_CHOICES)
    o.add_argument("--chrome-out", default=None,
                   help="also write recorded spans as a chrome://tracing "
                        "JSON file")
    o.add_argument("--json", action="store_true",
                   help="emit the registry snapshot / attribution / "
                        "comparison as JSON instead of text")
    o.add_argument("--overlap", action="store_true",
                   help="analyze: attribute the split-phase timeline "
                        "instead of the blocking one")
    o.add_argument("--current", default="BENCH_PERF.json",
                   help="compare: the current report file")
    o.add_argument("--baseline", default=None,
                   help="compare: the baseline report or trajectory file")
    o.add_argument("--kind", default="perf",
                   choices=("perf", "serve", "chaos", "adapt"),
                   help="compare: which bench family the reports are")
    o.add_argument("--trajectory", default="BENCH_TRAJECTORY.jsonl",
                   help="compare: trajectory history for baseline "
                        "resolution and the wall-clock noise band "
                        "('' to skip)")
    o.add_argument("--wall-tolerance", type=float, default=1.0,
                   help="compare: relative wall-clock tolerance fallback")
    return parser


COMMANDS = {
    "plan": plan_command,
    "run": run_command,
    "trace": trace_command,
    "calibrate": calibrate_command,
    "bench": bench_command,
    "serve": serve_command,
    "adapt": adapt_command,
    "obs": obs_command,
}


def main(argv: Sequence[str] | None = None) -> None:
    # None means "no CLI arguments" (the tour): callers that want real
    # argv pass sys.argv[1:] explicitly (see __main__ guard below).
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else [])
    command = COMMANDS.get(args.command, lambda _args: tour())
    try:
        command(args)
    except SystemExit:
        raise
    except BrokenPipeError:
        raise
    except Exception as exc:
        # a failed subcommand is a nonzero exit and one stderr line,
        # not a traceback (CLI hardening; --json consumers rely on
        # stdout staying parseable)
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(1) from exc


if __name__ == "__main__":
    main(sys.argv[1:])
