"""Irregular (unstructured-mesh) relaxation — the PARTI scenario.

The paper's run-time layer exists in large part for irregular codes:
"data access functions for Vienna Fortran distributions (including the
implementation of irregular accesses via translation tables and
sophisticated buffering schemes for accesses to non-local objects, as
implemented in the PARTI routines [15])" (§3.2).  The intrinsic
regular distributions cannot keep an unstructured mesh's neighbours
local; the INDIRECT distribution (owner table per node, §3.2.1) driven
by a mesh partitioner can.

This module provides:

- :func:`make_mesh` — synthetic unstructured meshes (random geometric
  graphs via networkx, the classic stand-in for FEM meshes);
- :func:`partition_bfs` — a seed-grown BFS partitioner producing
  balanced parts with small edge cuts (a poor man's recursive graph
  partitioner, adequate to show the effect);
- :func:`run_relaxation` — edge-based Jacobi relaxation of node values
  executed SPMD-style through the inspector/executor, under either a
  naive BLOCK distribution of node ids or a partition-driven INDIRECT
  distribution;
- :func:`edge_cut` — the analytic communication proxy (off-processor
  edges).

Experiment E10 compares the two distributions: the measured per-sweep
communication tracks the edge cut, and the partitioned INDIRECT
distribution — only expressible because distributions are run-time
data — wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import networkx as nx
import numpy as np

from ..backend.base import Backend, attached_backend
from ..core.dimdist import Block, Indirect
from ..core.distribution import DistributionType
from ..defaults import DEFAULT_SEED
from ..machine.machine import Machine
from ..runtime.engine import Engine

__all__ = [
    "make_mesh",
    "partition_bfs",
    "edge_cut",
    "RelaxationResult",
    "run_relaxation",
    "relaxation_reference",
    "drifting_weights",
]


def make_mesh(
    n: int,
    seed: int = DEFAULT_SEED,
    kind: str = "geometric",
    rng: np.random.Generator | None = None,
) -> nx.Graph:
    """A connected synthetic unstructured mesh with ``n`` nodes.

    ``geometric``: random geometric graph (radius chosen to connect);
    ``ring``: a ring with random chords (worst case for BLOCK order is
    mild, included for contrast).

    All randomness flows through ``rng`` (derived from ``seed`` when
    not given, reproducing the historical stream exactly); note the
    geometric kind also seeds networkx's own generator from ``seed``.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    if kind == "geometric":
        radius = 1.8 / np.sqrt(n)
        pos = {i: (rng.uniform(), rng.uniform()) for i in range(n)}
        g = nx.random_geometric_graph(n, radius, pos=pos, seed=int(seed))
        # connect any stray components to their nearest predecessor
        comps = list(nx.connected_components(g))
        for a, b in zip(comps, comps[1:]):
            g.add_edge(next(iter(a)), next(iter(b)))
    elif kind == "ring":
        g = nx.cycle_graph(n)
        for _ in range(n // 4):
            u, v = rng.integers(0, n, 2)
            if u != v:
                g.add_edge(int(u), int(v))
    else:
        raise ValueError(f"unknown mesh kind {kind!r}")
    return g


def partition_bfs(
    graph: nx.Graph,
    nparts: int,
    seed: int = DEFAULT_SEED,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Grow ``nparts`` balanced parts by BFS from spread-out seeds.

    Returns an owner array (node id -> part).  Parts are grown
    breadth-first from the currently smallest part's frontier, which
    keeps them connected and the cut small — the quality a real mesh
    partitioner (recursive bisection, METIS) would improve on, but
    enough to demonstrate the paper's point.
    """
    n = graph.number_of_nodes()
    if nparts < 1:
        raise ValueError("need at least one part")
    if nparts > n:
        raise ValueError(f"cannot cut {n} nodes into {nparts} parts")
    owner = np.full(n, -1, dtype=np.int64)
    if rng is None:
        rng = np.random.default_rng(seed)
    # spread seeds: repeated farthest-first from a random start
    seeds = [int(rng.integers(0, n))]
    dist = dict(nx.single_source_shortest_path_length(graph, seeds[0]))
    while len(seeds) < nparts:
        far = max(
            (node for node in graph.nodes if owner[node] == -1),
            key=lambda v: dist.get(v, 0),
        )
        seeds.append(int(far))
        for v, d in nx.single_source_shortest_path_length(graph, far).items():
            if d < dist.get(v, n + 1):
                dist[v] = d
    frontiers: list[list[int]] = [[s] for s in seeds]
    sizes = [0] * nparts
    for p, s in enumerate(seeds):
        owner[s] = p
        sizes[p] += 1
    target = -(-n // nparts)
    assigned = nparts
    while assigned < n:
        # grow the smallest non-exhausted part
        order = sorted(range(nparts), key=lambda p: sizes[p])
        grew = False
        for p in order:
            if sizes[p] >= target or not frontiers[p]:
                continue
            nxt: list[int] = []
            took = False
            for u in frontiers[p]:
                for v in graph.neighbors(u):
                    if owner[v] == -1:
                        owner[v] = p
                        sizes[p] += 1
                        assigned += 1
                        nxt.append(v)
                        took = True
                        break
                if took:
                    break
            frontiers[p] = nxt + [u for u in frontiers[p] if any(
                owner[w] == -1 for w in graph.neighbors(u)
            )]
            if took:
                grew = True
                break
        if not grew:
            # disconnected leftovers: round-robin them
            for v in graph.nodes:
                if owner[v] == -1:
                    p = int(np.argmin(sizes))
                    owner[v] = p
                    sizes[p] += 1
                    assigned += 1
                    frontiers[p].append(v)
                    break
    return owner


def drifting_weights(
    n: int,
    sweep: int,
    drift: float,
    amp: float = 3.0,
    width: float = 0.08,
    center0: float = 0.2,
) -> np.ndarray:
    """Per-node compute weights under a drifting Gaussian hot spot.

    Node ``i`` sits at normalized coordinate ``(i + 0.5) / n`` on a
    periodic unit interval; a hot spot of relative amplitude ``amp``
    and stddev ``width`` starts at ``center0`` and moves ``drift`` per
    sweep (wrapping around).  With ``drift == 0`` every weight is
    exactly 1.0 — the time-invariant load the historical relaxation
    modeled — so callers can guard on it for bitwise parity.
    """
    if drift == 0.0:
        return np.ones(n)
    x = (np.arange(n, dtype=np.float64) + 0.5) / n
    c = (center0 + drift * sweep) % 1.0
    d = np.abs(x - c)
    d = np.minimum(d, 1.0 - d)  # periodic distance
    return 1.0 + amp * np.exp(-0.5 * (d / width) ** 2)


def edge_cut(graph: nx.Graph, owner: np.ndarray) -> int:
    """Edges whose endpoints live on different processors — the
    per-sweep communication proxy."""
    return sum(1 for u, v in graph.edges if owner[u] != owner[v])


def relaxation_reference(
    graph: nx.Graph, values: np.ndarray, sweeps: int
) -> np.ndarray:
    """Sequential oracle: Jacobi averaging over neighbours."""
    v = np.array(values, dtype=np.float64, copy=True)
    for _ in range(sweeps):
        new = v.copy()
        for node in graph.nodes:
            nbrs = list(graph.neighbors(node))
            if nbrs:
                new[node] = 0.5 * v[node] + 0.5 * np.mean(v[list(nbrs)])
        v = new
    return v


@dataclass
class RelaxationResult:
    distribution: str
    n: int
    nprocs: int
    sweeps: int
    cut_edges: int
    messages: int
    bytes: int
    time: float
    solution: np.ndarray


def _relax_update(
    gathered: dict, node_slices: dict, rank: int, local: np.ndarray, idx
) -> None:
    """Owner-computes Jacobi update of one rank's owned nodes.

    Module-level (and closed over via :func:`functools.partial`) so an
    SPMD backend can pickle it into its worker processes; the serial
    path calls it in the same rank order, so the arithmetic — and
    therefore the solution — is bitwise-identical either way.
    """
    vals = gathered[rank]
    staged = np.empty_like(local)
    for li, (node, lo, hi) in enumerate(node_slices[rank]):
        nbr_vals = vals[lo:hi]
        staged[li] = (
            0.5 * local[li] + 0.5 * nbr_vals.mean() if hi > lo else local[li]
        )
    local[...] = staged


def run_relaxation(
    machine: Machine,
    graph: nx.Graph,
    distribution: str = "partitioned",
    sweeps: int = 3,
    seed: int = DEFAULT_SEED,
    rng: np.random.Generator | None = None,
    backend: Backend | str | None = None,
    drift: float = 0.0,
) -> RelaxationResult:
    """Edge-based Jacobi relaxation through the inspector/executor.

    ``distribution`` is ``"block"`` (node ids block-distributed — the
    naive choice) or ``"partitioned"`` (INDIRECT from
    :func:`partition_bfs` — only expressible with run-time
    distributions).  The access pattern is irregular, so each sweep is
    a PARTI gather; the schedule is built once and reused across
    sweeps, invalidated only by redistribution.

    ``backend`` selects the execution backend (``"serial"``,
    ``"multiprocess"``, ``None`` to reuse whatever is attached, or a
    :class:`~repro.backend.base.Backend`), matching the ``backend=``
    variants the other registered workloads grew: with
    ``"multiprocess"`` each sweep's node updates run in per-processor
    worker processes against shared-memory segments, bitwise-identical
    to the serial reference.

    With ``rng=None`` the partitioner and the initial node values each
    draw from a fresh ``default_rng(seed)`` (the historical streams,
    bit for bit); an explicit ``rng`` is used for both, making a run
    reproducible from generator state alone.

    ``drift`` moves a Gaussian compute hot spot across the node ids at
    ``drift`` per sweep (:func:`drifting_weights`) — per-sweep compute
    cost becomes proportional to the summed weight of the owned nodes
    while the solution arithmetic is untouched.  ``drift=0.0`` (the
    default) takes exactly the historical code path, bit for bit.
    """
    with attached_backend(machine, backend):
        return _relax(machine, graph, distribution, sweeps, seed, rng, drift)


def _relax(
    machine: Machine,
    graph: nx.Graph,
    distribution: str,
    sweeps: int,
    seed: int,
    rng: np.random.Generator | None,
    drift: float = 0.0,
) -> RelaxationResult:
    n = graph.number_of_nodes()
    p = machine.nprocs
    engine = Engine._create(machine)
    if distribution == "block":
        dd = Block()
        owner_vec = dd.owners_vec(n, p)
    elif distribution == "partitioned":
        owner_vec = partition_bfs(graph, p, seed=seed, rng=rng)
        dd = Indirect(owner_vec)
    else:
        raise ValueError("distribution must be 'block' or 'partitioned'")

    values = (
        rng if rng is not None else np.random.default_rng(seed)
    ).standard_normal(n)
    arr = engine.declare(
        "V", (n,), dist=DistributionType((dd,)), dynamic=True
    )
    arr.from_global(values)

    # inspector: per processor, the neighbour lists of its owned nodes
    inspector = engine.inspector("V")
    requests: dict[int, np.ndarray] = {}
    node_slices: dict[int, list[tuple[int, int, int]]] = {}
    for rank in arr.owning_ranks():
        owned = arr.local_indices(rank)[0]
        flat: list[int] = []
        slices: list[tuple[int, int, int]] = []
        for node in owned:
            nbrs = list(graph.neighbors(int(node)))
            slices.append((int(node), len(flat), len(flat) + len(nbrs)))
            flat.extend(nbrs)
        requests[rank] = np.asarray(flat, dtype=np.int64).reshape(-1, 1)
        node_slices[rank] = slices
    schedule = inspector.inspect(requests)

    m0 = machine.stats()
    t0 = machine.time
    for sweep in range(sweeps):
        gathered = inspector.gather(schedule)  # schedule reused
        update = partial(_relax_update, gathered, node_slices)
        backend = machine.backend
        if (
            backend is not None
            and backend.executes_spmd
            and backend.can_ship(update)
        ):
            backend.run_kernel(arr, update)
        else:
            for rank in arr.owning_ranks():
                update(rank, arr.local(rank), arr.local_indices(rank))
        # accounting is identical regardless of which process executed
        # the update — the backend executes, the network accounts
        if drift == 0.0:
            for rank in arr.owning_ranks():
                machine.network.compute(
                    rank, 4.0 * arr.local(rank).size, tag="relax:V"
                )
        else:
            weights = drifting_weights(n, sweep, drift)
            for rank in arr.owning_ranks():
                owned = arr.local_indices(rank)[0]
                machine.network.compute(
                    rank, 4.0 * float(weights[owned].sum()), tag="relax:V"
                )
        machine.network.synchronize()
    m1 = machine.stats()

    return RelaxationResult(
        distribution=distribution,
        n=n,
        nprocs=p,
        sweeps=sweeps,
        cut_edges=edge_cut(graph, np.asarray(owner_vec)),
        messages=m1.messages - m0.messages,
        bytes=m1.bytes - m0.bytes,
        time=machine.time - t0,
        solution=arr.to_global(),
    )
