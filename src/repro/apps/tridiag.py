"""Tridiagonal solvers — the paper's ``TRIDIAG`` routine (Figure 1).

"The tridiagonal solves are performed by a sequential routine TRIDIAG
(not shown here) which is given a right hand side and overwrites it
with the solution of a constant coefficient tridiagonal system."

:func:`thomas_const` is exactly that routine: the Thomas algorithm
specialized to a constant-coefficient system (sub/sup-diagonal ``a``,
diagonal ``b``).  :func:`thomas` solves the general variable
coefficient case; both are plain sequential kernels — parallelism in
ADI comes from solving *many independent lines*, not from inside one
solve, which is the whole point of the paper's example.
"""

from __future__ import annotations

import numpy as np

__all__ = ["thomas", "thomas_const", "thomas_const_batch", "tridiag_matvec"]


def thomas(
    lower: np.ndarray, diag: np.ndarray, upper: np.ndarray, rhs: np.ndarray
) -> np.ndarray:
    """Solve a general tridiagonal system by the Thomas algorithm.

    ``lower`` has length n-1 (subdiagonal), ``diag`` length n,
    ``upper`` length n-1 (superdiagonal).  Returns the solution (the
    inputs are not modified).  The algorithm is the standard O(n)
    forward elimination / back substitution; it is stable for the
    diagonally dominant systems ADI produces.
    """
    diag = np.asarray(diag, dtype=np.float64)
    rhs = np.asarray(rhs, dtype=np.float64)
    lower = np.asarray(lower, dtype=np.float64)
    upper = np.asarray(upper, dtype=np.float64)
    n = len(diag)
    if len(rhs) != n or len(lower) != n - 1 or len(upper) != n - 1:
        raise ValueError("inconsistent tridiagonal system sizes")
    if n == 0:
        return rhs.copy()
    cp = np.empty(n, dtype=np.float64)
    dp = np.empty(n, dtype=np.float64)
    if diag[0] == 0:
        raise ZeroDivisionError("zero pivot in Thomas algorithm")
    cp[0] = upper[0] / diag[0] if n > 1 else 0.0
    dp[0] = rhs[0] / diag[0]
    for i in range(1, n):
        denom = diag[i] - lower[i - 1] * cp[i - 1]
        if denom == 0:
            raise ZeroDivisionError("zero pivot in Thomas algorithm")
        cp[i] = upper[i] / denom if i < n - 1 else 0.0
        dp[i] = (rhs[i] - lower[i - 1] * dp[i - 1]) / denom
    x = np.empty(n, dtype=np.float64)
    x[-1] = dp[-1]
    for i in range(n - 2, -1, -1):
        x[i] = dp[i] - cp[i] * x[i + 1]
    return x


def thomas_const(rhs: np.ndarray, a: float, b: float) -> np.ndarray:
    """The paper's TRIDIAG: solve ``T x = rhs`` with constant
    coefficients — diagonal ``b``, sub- and super-diagonal ``a``.

    Returns the solution; callers overwrite their right-hand side with
    it exactly as Figure 1 describes.
    """
    rhs = np.asarray(rhs, dtype=np.float64)
    n = len(rhs)
    if n == 0:
        return rhs.copy()
    cp = np.empty(n, dtype=np.float64)
    dp = np.empty(n, dtype=np.float64)
    if b == 0:
        raise ZeroDivisionError("zero pivot in Thomas algorithm")
    cp[0] = a / b if n > 1 else 0.0
    dp[0] = rhs[0] / b
    for i in range(1, n):
        denom = b - a * cp[i - 1]
        if denom == 0:
            raise ZeroDivisionError("zero pivot in Thomas algorithm")
        cp[i] = a / denom if i < n - 1 else 0.0
        dp[i] = (rhs[i] - a * dp[i - 1]) / denom
    x = np.empty(n, dtype=np.float64)
    x[-1] = dp[-1]
    for i in range(n - 2, -1, -1):
        x[i] = dp[i] - cp[i] * x[i + 1]
    return x


def thomas_const_batch(rhs: np.ndarray, a: float, b: float) -> np.ndarray:
    """Solve many constant-coefficient tridiagonal systems at once.

    ``rhs`` is ``(nlines, n)``; returns the ``(nlines, n)`` solutions.
    The elimination coefficients ``cp`` depend only on ``(a, b, n)``,
    so they are computed once with the exact scalar recurrence of
    :func:`thomas_const`; the ``dp`` sweep and back substitution then
    run the same per-index operations across all rows simultaneously.
    Every row's result is **bitwise identical** to a scalar
    ``thomas_const`` call on that row (elementwise IEEE arithmetic,
    same operation order per lane) — this is the batched form the
    vectorized line sweeps dispatch to (see
    :func:`repro.compiler.codegen.batched_line_solver`).
    """
    rhs = np.asarray(rhs, dtype=np.float64)
    if rhs.ndim != 2:
        raise ValueError(f"batched solve needs a 2-D rhs, got {rhs.shape}")
    m, n = rhs.shape
    if n == 0 or m == 0:
        return rhs.copy()
    if b == 0:
        raise ZeroDivisionError("zero pivot in Thomas algorithm")
    cp = np.empty(n, dtype=np.float64)
    denom = np.empty(n, dtype=np.float64)
    cp[0] = a / b if n > 1 else 0.0
    denom[0] = b
    for i in range(1, n):
        denom[i] = b - a * cp[i - 1]
        if denom[i] == 0:
            raise ZeroDivisionError("zero pivot in Thomas algorithm")
        cp[i] = a / denom[i] if i < n - 1 else 0.0
    dp = np.empty((m, n), dtype=np.float64)
    dp[:, 0] = rhs[:, 0] / b
    for i in range(1, n):
        dp[:, i] = (rhs[:, i] - a * dp[:, i - 1]) / denom[i]
    x = np.empty((m, n), dtype=np.float64)
    x[:, -1] = dp[:, -1]
    for i in range(n - 2, -1, -1):
        x[:, i] = dp[:, i] - cp[i] * x[:, i + 1]
    return x


#: advertise the batched form to the vectorized line sweeps
thomas_const.batched = thomas_const_batch


def tridiag_matvec(x: np.ndarray, a: float, b: float) -> np.ndarray:
    """``T x`` for the constant-coefficient tridiagonal ``T`` —
    the verification counterpart of :func:`thomas_const`."""
    x = np.asarray(x, dtype=np.float64)
    y = b * x
    y[1:] += a * x[:-1]
    y[:-1] += a * x[1:]
    return y
