"""Particle-in-cell simulation — paper Figure 2, §4.

"Consider a simulation code based on the particle-in-cell method ...
The computation at each time step can be divided into two phases.  In
the first phase, a global force field is computed using the current
position of particles.  In the second phase, given the new global
force field, new positions of the particles are computed. ...  The
main goal here is to distribute the cells across the processors such
that the work per processor is approximately equal."

The reproduction keeps Figure 2's structure:

- cells are the first dimension of a dynamic ``FIELD`` array,
  initially ``(BLOCK, :)``;
- ``initpos`` places particles (a configurable clustered profile so
  that drift creates the load imbalance the paper worries about);
- ``balance`` computes contiguous block sizes from per-cell particle
  counts; ``DISTRIBUTE FIELD :: B_BLOCK(BOUNDS)`` applies them;
- each step runs ``update_field`` (owner-computes work proportional
  to local particle count), ``update_part`` (drift + diffusion;
  particles crossing to a cell on another processor cost aggregated
  reassignment messages via the inspector/executor pattern);
- every ``rebalance_every``-th step, if the imbalance exceeds a
  threshold, ``balance`` + redistribute (Figure 2's
  ``IF (MOD(k,10).EQ.0 .AND. rebalance())`` test).

The ``"planned"`` strategy replaces the fixed imbalance threshold with
the distribution planner's cost engine (:mod:`repro.planner.costs`):
at each checkpoint it redistributes exactly when the modeled compute
time saved over the next ``rebalance_every`` steps exceeds the modeled
cost of the transfer — the cost-driven version of ``rebalance()``.

:func:`run_pic` records, per step, the load imbalance, the messages
spent on particle motion, field work time, and redistribution cost —
the trajectories experiment E3 plots against the static-BLOCK
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..backend.base import Backend, attached_backend
from ..core.dimdist import Block, GenBlock, NoDist
from ..core.distribution import DistributionType
from ..defaults import DEFAULT_SEED
from ..machine.machine import Machine
from ..runtime.engine import Engine
from .load_balance import balance_greedy

__all__ = [
    "PICConfig",
    "StepRecord",
    "PICResult",
    "run_pic",
    "execute_pic",
    "initpos",
    "reflected_position",
]


@dataclass
class PICConfig:
    """Parameters of the PIC run (paper names where they exist)."""

    ncell: int = 128            # NCELL
    npart: int = 4096           # total particles (paper bounds per cell)
    max_time: int = 50          # MAX_TIME
    nprocs: int = 4
    rebalance_every: int = 10   # "every 10th iteration"
    imbalance_threshold: float = 1.25  # rebalance() trigger
    drift: float = 0.004        # mean particle velocity (domain units/step)
    diffusion: float = 0.002    # random-walk scale
    cluster_width: float = 0.08  # initpos cluster stddev
    flops_per_particle: float = 20.0  # update_field work per particle
    particle_bytes: int = 32    # payload per reassigned particle
    #: "bblock" (Figure 2) | "static" baseline | "planned" (cost-driven)
    strategy: str = "bblock"
    seed: int = DEFAULT_SEED


@dataclass
class StepRecord:
    """Per-step measurements."""

    step: int
    imbalance: float       # max/mean particles per processor
    max_load: int          # particles on the busiest processor
    motion_messages: int   # particle-reassignment messages
    motion_bytes: int
    redistributed: bool
    redistribution_bytes: int
    time: float            # machine clock at end of step


@dataclass
class PICResult:
    config: PICConfig
    steps: list[StepRecord] = field(default_factory=list)
    redistributions: int = 0
    total_time: float = 0.0

    @property
    def mean_imbalance(self) -> float:
        return float(np.mean([s.imbalance for s in self.steps]))

    @property
    def max_imbalance(self) -> float:
        return float(max(s.imbalance for s in self.steps))

    @property
    def motion_bytes_total(self) -> int:
        return sum(s.motion_bytes for s in self.steps)

    @property
    def redistribution_bytes_total(self) -> int:
        return sum(s.redistribution_bytes for s in self.steps)


def initpos(config: PICConfig, rng: np.random.Generator) -> np.ndarray:
    """Initial particle positions: a Gaussian cluster near x = 0.2.

    A clustered profile makes the static BLOCK distribution imbalanced
    from the start and lets drift move the hot spot across processor
    boundaries — the scenario §4 gives for needing B_BLOCK rebalancing.
    """
    pos = rng.normal(0.2, config.cluster_width, size=config.npart)
    return np.clip(pos, 0.0, np.nextafter(1.0, 0.0))


def _cell_of(pos: np.ndarray, ncell: int) -> np.ndarray:
    return np.minimum((pos * ncell).astype(np.int64), ncell - 1)


def reflected_position(start: np.ndarray, displacement: float) -> np.ndarray:
    """Closed-form position after drifting ``displacement`` from
    ``start`` with reflecting walls at 0 and 1 — the triangle wave.

    The distribution planner uses it to model the cluster's trajectory
    without simulating.  For pure drift (no diffusion) it matches
    :func:`run_pic`'s per-step bookkeeping exactly through the first
    (top) wall bounce; past that the two diverge — ``run_pic``'s
    bottom wall reflects position without negating velocity, so its
    particles linger at the wall, while this models ideal reflection."""
    folded = np.mod(np.asarray(start, dtype=float) + displacement, 2.0)
    pos = np.where(folded >= 1.0, 2.0 - folded, folded)
    return np.clip(pos, 0.0, np.nextafter(1.0, 0.0))


def _field_dist(sizes: list[int] | None, ncell: int, nprocs: int) -> DistributionType:
    if sizes is None:
        return DistributionType((Block(), NoDist()))
    return DistributionType((GenBlock(sizes), NoDist()))


def run_pic(
    machine: Machine,
    config: PICConfig,
    rng: np.random.Generator | None = None,
    backend: Backend | str | None = None,
) -> PICResult:
    """Deprecated free-function spelling of the PIC workload.

    Use the session facade instead::

        with repro.session(nprocs=4) as sess:
            result = sess.workload("pic", size=128, steps=50).run()

    (:func:`execute_pic` is the implementation; results are
    bitwise-identical.)
    """
    import warnings

    warnings.warn(
        "run_pic() is deprecated; use repro.session(...) and "
        "Session.workload('pic', ...).run() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return execute_pic(machine, config, rng=rng, backend=backend)


def execute_pic(
    machine: Machine,
    config: PICConfig,
    rng: np.random.Generator | None = None,
    backend: Backend | str | None = None,
) -> PICResult:
    """Run the Figure 2 PIC loop; see the module docstring.

    All randomness (initial positions, diffusion) flows through the
    single ``rng`` generator — pass one explicitly to share a stream
    across runs, or leave it ``None`` to derive a fresh one from
    ``config.seed`` (the historical behaviour, bit for bit).  With the
    same generator state, two runs are deterministic regardless of the
    execution ``backend`` — the property the backend conformance suite
    relies on.
    """
    if machine.nprocs != config.nprocs:
        raise ValueError(
            f"machine has {machine.nprocs} processors, config says {config.nprocs}"
        )
    if config.strategy not in ("bblock", "static", "planned"):
        raise ValueError("strategy must be 'bblock', 'static' or 'planned'")
    if rng is None:
        rng = np.random.default_rng(config.seed)
    with attached_backend(machine, backend):
        return _run_pic(machine, config, rng)


def _run_pic(
    machine: Machine, config: PICConfig, rng: np.random.Generator
) -> PICResult:
    engine = Engine._create(machine)
    machine.reset_network()

    ncell, nprocs = config.ncell, config.nprocs
    # FIELD(NCELL, NFIELD): per-cell field values (second dim holds a
    # small record per cell, standing in for the paper's NPART slots).
    nfield = 4
    fld = engine.declare(
        "FIELD",
        (ncell, nfield),
        dist=_field_dist(None, ncell, nprocs),
        dynamic=True,
    )

    # C Compute initial position of particles
    pos = initpos(config, rng)
    vel = np.full(config.npart, config.drift)

    def counts() -> np.ndarray:
        return np.bincount(_cell_of(pos, ncell), minlength=ncell)

    def cell_owner_map() -> np.ndarray:
        """Owner rank of each cell under FIELD's current distribution."""
        return np.asarray(fld.dist.rank_map())[:, 0]

    # C Compute initial partition of cells + DISTRIBUTE FIELD :: B_BLOCK(BOUNDS)
    if config.strategy in ("bblock", "planned"):
        bounds = balance_greedy(counts(), nprocs)
        engine.distribute("FIELD", _field_dist(bounds, ncell, nprocs))

    cost_engine = None
    if config.strategy == "planned":
        from ..planner.costs import CostEngine

        cost_engine = CostEngine(
            machine, itemsize=fld.itemsize, plan_cache=engine.plan_cache
        )

    result = PICResult(config)
    for k in range(1, config.max_time + 1):
        owners = cell_owner_map()
        w = counts()

        # C Compute new field: owner-computes, work ~ local particles
        loads = np.bincount(owners, weights=w, minlength=nprocs)
        for rank in range(nprocs):
            machine.network.compute(
                rank, config.flops_per_particle * float(loads[rank]),
                tag="pic:update_field",
            )
        machine.network.synchronize()

        # C Compute new particle positions and reassign them
        old_cells = _cell_of(pos, ncell)
        pos = pos + vel + rng.normal(0.0, config.diffusion, size=config.npart)
        # reflecting walls keep the cluster inside the domain
        pos = np.abs(pos)
        over = pos >= 1.0
        pos[over] = 2.0 - pos[over]
        pos = np.clip(pos, 0.0, np.nextafter(1.0, 0.0))
        vel[over] = -vel[over]
        new_cells = _cell_of(pos, ncell)

        moved = old_cells != new_cells
        src = owners[old_cells[moved]]
        dst = owners[new_cells[moved]]
        cross = src != dst
        m0 = machine.stats()
        if cross.any():
            pair = src[cross] * nprocs + dst[cross]
            cnt = np.bincount(pair, minlength=nprocs * nprocs).reshape(
                nprocs, nprocs
            )
            machine.network.exchange(
                [
                    (int(s), int(d), int(cnt[s, d]) * config.particle_bytes,
                     "pic:reassign")
                    for s, d in zip(*np.nonzero(cnt))
                ]
            )
            machine.network.synchronize()
        m1 = machine.stats()

        # C Rebalance every rebalance_every-th iteration if necessary
        redistributed = False
        redist_bytes = 0
        w = counts()
        loads = np.bincount(owners, weights=w, minlength=nprocs)
        imb = float(loads.max() / max(loads.mean(), 1e-12))
        worthwhile = False
        if (
            config.strategy in ("bblock", "planned")
            and k % config.rebalance_every == 0
        ):
            if config.strategy == "bblock":
                worthwhile = imb > config.imbalance_threshold
                if worthwhile:
                    bounds = balance_greedy(w, nprocs)
            else:
                bounds = balance_greedy(w, nprocs)
                # cost-driven rebalance(): redistribute iff the modeled
                # compute saving over the next window beats the move
                from ..planner.phases import ArrayLoad

                cand = _field_dist(bounds, ncell, nprocs).apply(
                    (ncell, nfield), machine.full_section()
                )
                load = ArrayLoad(
                    "FIELD",
                    0,
                    tuple(float(c) for c in w),
                    flops_per_unit=config.flops_per_particle,
                )
                # the saving only accrues over steps that will actually
                # run — a checkpoint near max_time has a short horizon
                horizon = min(config.rebalance_every, config.max_time - k)
                gain = (
                    cost_engine.load_cost(load, fld.dist)
                    - cost_engine.load_cost(load, cand)
                ) * horizon
                worthwhile = horizon > 0 and gain > cost_engine.transition_cost(
                    fld.dist, cand
                )
        if worthwhile:
            r0 = machine.stats()
            engine.distribute("FIELD", _field_dist(bounds, ncell, nprocs))
            redist_bytes = machine.stats().bytes - r0.bytes
            redistributed = True
            result.redistributions += 1
            owners = cell_owner_map()
            loads = np.bincount(owners, weights=w, minlength=nprocs)
            imb = float(loads.max() / max(loads.mean(), 1e-12))

        result.steps.append(
            StepRecord(
                step=k,
                imbalance=imb,
                max_load=int(loads.max()),
                motion_messages=m1.messages - m0.messages,
                motion_bytes=m1.bytes - m0.bytes,
                redistributed=redistributed,
                redistribution_bytes=redist_bytes,
                time=machine.time,
            )
        )
    result.total_time = machine.time
    return result
