"""Contiguous load balancing — the paper's ``balance`` routine (Figure 2).

"Using the number of particles in each cell, the procedure balance
computes the block sizes to be assigned to each processor.  It stores
these in the array BOUNDS, which is then used to redistribute the
array FIELD via the intrinsic distribution function B_BLOCK."

Partitioning a weight sequence into ``p`` *contiguous* blocks
minimizing the maximum block weight is the classic chains-on-chains
problem.  We provide:

- :func:`balance_greedy` — the fast heuristic a run-time system would
  call every rebalancing step: walk the prefix sums, cutting when the
  running block exceeds the ideal share;
- :func:`balance_optimal` — exact bottleneck minimization by binary
  search over the answer with a greedy feasibility check (used in
  tests as the oracle and available to users who can afford it);
- :func:`imbalance` — the max/mean load ratio the PIC bench reports.
"""

from __future__ import annotations

import numpy as np

__all__ = ["balance_greedy", "balance_optimal", "imbalance", "block_loads"]


def _validate(weights: np.ndarray, nprocs: int) -> np.ndarray:
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or len(weights) == 0:
        raise ValueError("weights must be a non-empty 1-D sequence")
    if (weights < 0).any():
        raise ValueError("weights must be non-negative")
    if nprocs < 1:
        raise ValueError("need at least one processor")
    return weights


def balance_greedy(weights: np.ndarray, nprocs: int) -> list[int]:
    """Contiguous block sizes with approximately equal weight.

    Greedy prefix walk: block ``s`` ends at the first cell where the
    cumulative weight reaches ``(s+1)/p`` of the total, always leaving
    at least one cell per remaining processor (so every block size is
    >= 1 when there are enough cells) and never assigning more cells
    than remain.  Sizes sum to ``len(weights)``.
    """
    weights = _validate(weights, nprocs)
    n = len(weights)
    if nprocs > n:
        # degenerate: one cell per leading processor, empty tail blocks
        return [1] * n + [0] * (nprocs - n)
    prefix = np.concatenate([[0.0], np.cumsum(weights)])
    total = prefix[-1]
    sizes: list[int] = []
    start = 0
    for s in range(nprocs):
        remaining_procs = nprocs - s - 1
        if s == nprocs - 1:
            end = n
        else:
            target = total * (s + 1) / nprocs
            # first index with cumulative weight >= target
            end = int(np.searchsorted(prefix, target, side="left"))
            end = max(end, start + 1)           # at least one cell
            end = min(end, n - remaining_procs)  # leave cells for the rest
        sizes.append(end - start)
        start = end
    assert sum(sizes) == n
    return sizes


def balance_optimal(weights: np.ndarray, nprocs: int) -> list[int]:
    """Exact min-max contiguous partition (chains-on-chains).

    Binary search over the bottleneck value; a candidate ``cap`` is
    feasible iff a greedy left-to-right packing uses at most ``p``
    blocks.  The search is over the finite set of contiguous-range
    sums, realized here as a float bisection to weight resolution.
    """
    weights = _validate(weights, nprocs)
    n = len(weights)
    if nprocs >= n:
        return [1] * n + [0] * (nprocs - n)

    def blocks_needed(cap: float) -> int:
        count, acc = 1, 0.0
        for w in weights:
            if w > cap:
                return n + 1  # infeasible: single cell exceeds cap
            if acc + w > cap:
                count += 1
                acc = w
            else:
                acc += w
        return count

    lo = float(weights.max())
    hi = float(weights.sum())
    # bisect to additive resolution below the smallest positive weight
    positive = weights[weights > 0]
    eps = (positive.min() / 4.0) if len(positive) else 0.25
    eps = max(eps, 1e-12)
    while hi - lo > eps:
        mid = (lo + hi) / 2.0
        if blocks_needed(mid) <= nprocs:
            hi = mid
        else:
            lo = mid
    # materialize the partition for cap = hi
    sizes: list[int] = []
    acc, cur = 0.0, 0
    for w in weights:
        if acc + w > hi and cur > 0:
            sizes.append(cur)
            acc, cur = 0.0, 0
        acc += w
        cur += 1
    sizes.append(cur)
    while len(sizes) < nprocs:
        # split largest block's trailing cell off to fill empty slots
        sizes.append(0)
    # pad/even out: we may have used fewer blocks than processors
    return sizes


def block_loads(weights: np.ndarray, sizes: list[int]) -> np.ndarray:
    """Per-block total weight under a contiguous partition."""
    weights = np.asarray(weights, dtype=np.float64)
    if sum(sizes) != len(weights):
        raise ValueError(
            f"sizes sum to {sum(sizes)}, weights has {len(weights)} cells"
        )
    out = np.zeros(len(sizes), dtype=np.float64)
    start = 0
    for i, sz in enumerate(sizes):
        out[i] = weights[start : start + sz].sum()
        start += sz
    return out


def imbalance(weights: np.ndarray, sizes: list[int]) -> float:
    """Max/mean block load: 1.0 is perfect balance."""
    loads = block_loads(weights, sizes)
    mean = loads.mean()
    if mean == 0:
        return 1.0
    return float(loads.max() / mean)
