"""ADI — Alternating Direction Implicit iteration (paper Figure 1, §4).

"In terms of data structure access, one step of the algorithm can be
described as follows: an operation (a tridiagonal solve here) is
performed independently on each x-line of the array and the same
operation is then performed, again independently, on each y-line."

The Vienna Fortran code of Figure 1 declares ``V`` as ``DYNAMIC`` with
initial distribution ``(:, BLOCK)``: the x-sweep (over columns) is
communication-free, then ``DISTRIBUTE V :: (BLOCK, :)`` remaps the
array so the y-sweep is also communication-free — "all the
communication is confined to the redistribution operation".

:func:`run_adi` reproduces the code under four strategies:

- ``"dynamic"``      — Figure 1: redistribute between the sweeps (and
  back at the top of each outer iteration);
- ``"static_cols"``  — keep ``(:, BLOCK)``: x-sweeps local, y-sweeps
  pay per-line gather/scatter communication;
- ``"static_rows"``  — keep ``(BLOCK, :)``: the converse;
- ``"two_arrays"``   — the §4 alternative "declare two or more arrays
  with different static distribution and use array assignments":
  same traffic as redistribution, but double the storage ("this
  approach, clearly, wastes storage space");
- ``"planned"``      — the automatic distribution planner
  (:mod:`repro.planner`) derives the schedule from the Figure 1
  program text and the machine's cost model, then executes it; on
  machines where the flip is profitable it reproduces ``"dynamic"``
  without any hand-written DISTRIBUTE.

All strategies produce bit-identical solutions; they differ in the
message counts, volumes and modeled times recorded in
:class:`ADIResult` — the quantities the paper's argument is about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from ..backend.base import Backend, attached_backend
from ..compiler.codegen import LineSweepKernel
from ..core.distribution import dist_type
from ..defaults import DEFAULT_SEED
from ..machine.machine import Machine
from ..machine.network import NetworkStats
from ..runtime.darray import DistributedArray
from ..runtime.engine import Engine
from ..runtime.redistribute import transfer_matrix
from .tridiag import thomas_const

__all__ = ["ADIResult", "PhaseStats", "run_adi", "execute_adi", "adi_reference"]

STRATEGIES = ("dynamic", "static_cols", "static_rows", "two_arrays", "planned")


@dataclass
class PhaseStats:
    """Traffic and time attributed to one phase, summed over iterations."""

    messages: int = 0
    bytes: int = 0
    time: float = 0.0

    def add(self, diff: NetworkStats) -> None:
        self.messages += diff.messages
        self.bytes += diff.bytes
        self.time += diff.time


@dataclass
class ADIResult:
    """Outcome of one ADI run."""

    strategy: str
    nx: int
    ny: int
    iterations: int
    nprocs: int
    x_sweep: PhaseStats = field(default_factory=PhaseStats)
    y_sweep: PhaseStats = field(default_factory=PhaseStats)
    redistribution: PhaseStats = field(default_factory=PhaseStats)
    total_time: float = 0.0
    peak_memory: int = 0
    solution: np.ndarray | None = None

    @property
    def sweep_messages(self) -> int:
        return self.x_sweep.messages + self.y_sweep.messages

    @property
    def total_messages(self) -> int:
        return self.sweep_messages + self.redistribution.messages

    def row(self) -> dict:
        """Flat record for bench tables."""
        return {
            "strategy": self.strategy,
            "nx": self.nx,
            "procs": self.nprocs,
            "iters": self.iterations,
            "msgs_sweep": self.sweep_messages,
            "msgs_redist": self.redistribution.messages,
            "bytes_total": (
                self.x_sweep.bytes + self.y_sweep.bytes + self.redistribution.bytes
            ),
            "time": self.total_time,
            "peak_mem": self.peak_memory,
        }


def adi_reference(
    grid: np.ndarray, iterations: int, a: float, b: float
) -> np.ndarray:
    """Sequential oracle: the same sweeps on a plain numpy array."""
    v = np.array(grid, dtype=np.float64, copy=True)
    for _ in range(iterations):
        for j in range(v.shape[1]):  # x-lines (columns)
            v[:, j] = thomas_const(v[:, j], a, b)
        for i in range(v.shape[0]):  # y-lines (rows)
            v[i, :] = thomas_const(v[i, :], a, b)
    return v


def _copy_between(
    src: DistributedArray, dst: DistributedArray
) -> None:
    """Array assignment between two differently distributed arrays,
    with redistribution-equivalent message accounting (the §4
    two-static-arrays alternative)."""
    machine = src.machine
    T = transfer_matrix(src.dist, dst.dist, machine.nprocs)
    machine.network.exchange(
        [
            (int(s), int(d), int(T[s, d]) * src.itemsize, "assign")
            for s, d in zip(*np.nonzero(T))
        ]
    )
    machine.network.synchronize()
    dst.from_global(src.to_global())


def run_adi(
    machine: Machine,
    nx: int,
    ny: int,
    iterations: int = 1,
    strategy: str = "dynamic",
    a: float = -1.0,
    b: float = 4.0,
    grid: np.ndarray | None = None,
    seed: int = DEFAULT_SEED,
    backend: Backend | str | None = None,
) -> ADIResult:
    """Deprecated free-function spelling of the ADI workload.

    Use the session facade instead::

        with repro.session(nprocs=4) as sess:
            result = sess.workload("adi", size=64, iterations=4).run()

    (:func:`execute_adi` is the implementation; results are
    bitwise-identical.)
    """
    import warnings

    warnings.warn(
        "run_adi() is deprecated; use repro.session(...) and "
        "Session.workload('adi', ...).run() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return execute_adi(
        machine, nx, ny, iterations, strategy, a, b, grid,
        seed=seed, backend=backend,
    )


def execute_adi(
    machine: Machine,
    nx: int,
    ny: int,
    iterations: int = 1,
    strategy: str = "dynamic",
    a: float = -1.0,
    b: float = 4.0,
    grid: np.ndarray | None = None,
    *,
    seed: int = DEFAULT_SEED,
    backend: Backend | str | None = None,
) -> ADIResult:
    """Run the Figure 1 ADI iteration under ``strategy``.

    The tridiagonal coefficients default to a diagonally dominant
    constant system (``b=4``, ``a=-1``); ``grid`` defaults to a seeded
    random field.  The returned solution is always identical across
    strategies (checked in tests against :func:`adi_reference`).

    ``backend`` selects the execution backend (``"serial"``,
    ``"multiprocess"``, or an attached/attachable
    :class:`~repro.backend.base.Backend`): with ``"multiprocess"``,
    redistributions and local sweeps execute in per-processor worker
    processes and the solution is bitwise-identical to serial (the
    backend conformance suite asserts this).
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
    if grid is None:
        rng = np.random.default_rng(seed)
        grid = rng.standard_normal((nx, ny))
    grid = np.asarray(grid, dtype=np.float64)
    if grid.shape != (nx, ny):
        raise ValueError(f"grid shape {grid.shape} != ({nx}, {ny})")

    with attached_backend(machine, backend):
        return _run_adi(machine, nx, ny, iterations, strategy, a, b, grid)


def _run_adi(
    machine: Machine,
    nx: int,
    ny: int,
    iterations: int,
    strategy: str,
    a: float,
    b: float,
    grid: np.ndarray,
) -> ADIResult:
    engine = Engine._create(machine)
    machine.reset_network()
    result = ADIResult(strategy, nx, ny, iterations, machine.nprocs)

    by_cols = dist_type(":", "BLOCK")   # (:, BLOCK) — columns local
    by_rows = dist_type("BLOCK", ":")   # (BLOCK, :) — rows local

    # the TRIDIAG call; a partial (not a lambda) so SPMD backends can
    # ship it to worker processes
    line = partial(thomas_const, a=a, b=b)

    def snapshot() -> NetworkStats:
        return machine.stats()

    if strategy == "two_arrays":
        v1 = engine.declare("V1", (nx, ny), dist=by_cols)
        v2 = engine.declare("V2", (nx, ny), dist=by_rows)
        v1.from_global(grid)
        x_kernel = LineSweepKernel(v1, 0, line)
        y_kernel = LineSweepKernel(v2, 1, line)
        for _ in range(iterations):
            s0 = snapshot()
            x_kernel.sweep()
            result.x_sweep.add(snapshot() - s0)
            s0 = snapshot()
            _copy_between(v1, v2)
            result.redistribution.add(snapshot() - s0)
            s0 = snapshot()
            y_kernel.sweep()
            result.y_sweep.add(snapshot() - s0)
            s0 = snapshot()
            _copy_between(v2, v1)
            result.redistribution.add(snapshot() - s0)
        final = v1
    elif strategy == "planned":
        from ..compiler.ir import AccessKind
        from ..planner import CostEngine, adi_workload
        from ..planner.workloads import _plan_workload

        workload = adi_workload(nx, ny, iterations, machine=machine)
        cost_engine = CostEngine(machine, plan_cache=engine.plan_cache)
        plan = _plan_workload(workload, cost_engine=cost_engine)
        v = engine.declare("V", (nx, ny), dist=workload.initial, dynamic=True)
        v.from_global(grid)
        x_kernel = LineSweepKernel(v, 0, line)
        y_kernel = LineSweepKernel(v, 1, line)
        for step in plan.steps:
            s0 = snapshot()
            engine.ensure_dist("V", step.dist)
            result.redistribution.add(snapshot() - s0)
            swept = {
                r.dim
                for r in step.phase.refs
                if r.kind == AccessKind.ROW_SWEEP
            }
            s0 = snapshot()
            if swept == {1}:
                y_kernel.sweep()
                result.y_sweep.add(snapshot() - s0)
            else:
                x_kernel.sweep()
                result.x_sweep.add(snapshot() - s0)
        final = v
    else:
        initial = by_rows if strategy == "static_rows" else by_cols
        v = engine.declare(
            "V",
            (nx, ny),
            dist=initial,
            dynamic=(strategy == "dynamic"),
        )
        v.from_global(grid)
        x_kernel = LineSweepKernel(v, 0, line)
        y_kernel = LineSweepKernel(v, 1, line)
        for it in range(iterations):
            if strategy == "dynamic" and it > 0:
                # outer-loop case of §4: flip back for the next x-sweep
                s0 = snapshot()
                engine.distribute("V", by_cols)
                result.redistribution.add(snapshot() - s0)
            s0 = snapshot()
            x_kernel.sweep()
            result.x_sweep.add(snapshot() - s0)
            if strategy == "dynamic":
                s0 = snapshot()
                engine.distribute("V", by_rows)  # DISTRIBUTE V :: (BLOCK, :)
                result.redistribution.add(snapshot() - s0)
            s0 = snapshot()
            y_kernel.sweep()
            result.y_sweep.add(snapshot() - s0)
        final = v

    result.total_time = machine.time
    result.peak_memory = max(m.high_water for m in machine.memories)
    result.solution = final.to_global()
    return result
