"""Grid smoothing — the distribution-choice example of §4.

"In a grid based computation, such as smoothing, the value at a grid
point is based on its 4 nearest neighbors.  A column distribution of
the N x N grid will give rise to 2 messages per processor, each of
size N, per computation step.  On the other hand, if the grid is
distributed by blocks in two dimensions across a p^2 processor array,
then each computation step requires 4 messages of size N/p each on
each processor.  Thus, given the startup overhead and cost per byte of
each message of the target machine, the ratio N/p will determine the
most appropriate distribution."

This module provides the smoothing kernel under both distributions
(measured traffic comes from the actual halo exchanges), the paper's
closed-form per-step cost model, and :func:`best_distribution` — the
run-time selection rule the paper proposes the user implement with
dynamic distributions and the ``$NP`` intrinsic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backend.base import Backend, attached_backend
from ..compiler.codegen import StencilKernel
from ..core.distribution import dist_type
from ..defaults import DEFAULT_SEED
from ..machine.cost_model import CostModel
from ..machine.machine import Machine
from ..runtime.engine import Engine

__all__ = [
    "SmoothingResult",
    "smooth_step_func",
    "run_smoothing",
    "execute_smoothing",
    "smoothing_reference",
    "predicted_step_cost",
    "best_distribution",
    "planned_distribution",
]


def smooth_step_func(padded: np.ndarray, out: np.ndarray, widths) -> None:
    """One 4-nearest-neighbour smoothing update on a halo-padded block."""
    w0, w1 = widths
    n0 = out.shape[0]
    n1 = out.shape[1]
    c0, c1 = w0, w1
    north = padded[c0 - 1 : c0 - 1 + n0, c1 : c1 + n1]
    south = padded[c0 + 1 : c0 + 1 + n0, c1 : c1 + n1]
    west = padded[c0 : c0 + n0, c1 - 1 : c1 - 1 + n1]
    east = padded[c0 : c0 + n0, c1 + 1 : c1 + 1 + n1]
    out[...] = 0.25 * (north + south + west + east)


@dataclass
class SmoothingResult:
    distribution: str
    n: int
    nprocs: int
    steps: int
    messages: int
    bytes: int
    time: float
    #: messages per processor per step, the paper's headline quantity
    msgs_per_proc_step: float
    solution: np.ndarray | None = None


def smoothing_reference(grid: np.ndarray, steps: int) -> np.ndarray:
    """Sequential oracle with zero (Dirichlet) boundary."""
    v = np.array(grid, dtype=np.float64, copy=True)
    for _ in range(steps):
        p = np.pad(v, 1)
        v = 0.25 * (p[:-2, 1:-1] + p[2:, 1:-1] + p[1:-1, :-2] + p[1:-1, 2:])
    return v


def run_smoothing(
    n: int,
    steps: int,
    distribution: str,
    nprocs: int,
    cost_model: CostModel,
    grid: np.ndarray | None = None,
    seed: int = DEFAULT_SEED,
    backend: Backend | str | None = None,
    machine: Machine | None = None,
) -> SmoothingResult:
    """Deprecated free-function spelling of the smoothing workload.

    Use the session facade instead::

        with repro.session(nprocs=16) as sess:
            result = sess.workload("smoothing", size=128, steps=50).run()

    (:func:`execute_smoothing` is the implementation; results are
    bitwise-identical.)
    """
    import warnings

    warnings.warn(
        "run_smoothing() is deprecated; use repro.session(...) and "
        "Session.workload('smoothing', ...).run() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return execute_smoothing(
        n, steps, distribution, nprocs, cost_model, grid,
        seed=seed, backend=backend, machine=machine,
    )


def execute_smoothing(
    n: int,
    steps: int,
    distribution: str,
    nprocs: int,
    cost_model: CostModel,
    grid: np.ndarray | None = None,
    *,
    seed: int = DEFAULT_SEED,
    backend: Backend | str | None = None,
    machine: Machine | None = None,
) -> SmoothingResult:
    """Run ``steps`` smoothing sweeps of an N x N grid.

    ``distribution`` is ``"columns"`` (``(:, BLOCK)`` on a 1-D
    arrangement of all ``nprocs`` processors) or ``"blocks2d"``
    (``(BLOCK, BLOCK)`` on a sqrt(p) x sqrt(p) grid; ``nprocs`` must be
    a perfect square, matching the paper's p^2 processor array).

    With ``backend="multiprocess"`` every halo exchange and stencil
    update executes in per-processor worker processes over the
    message-passing transport; results are bitwise-identical to the
    serial reference.

    An explicit ``machine`` (shape and cost model must match the
    requested distribution) lets callers keep a handle on the machine
    that runs the sweeps — the ``repro trace`` CLI uses this to
    install an event recorder before the run.
    """
    if distribution == "columns":
        expected_shape: tuple[int, ...] = (nprocs,)
        dtype = dist_type(":", "BLOCK")
    elif distribution == "blocks2d":
        side = int(round(nprocs**0.5))
        if side * side != nprocs:
            raise ValueError(
                f"blocks2d needs a square processor count, got {nprocs}"
            )
        expected_shape = (side, side)
        dtype = dist_type("BLOCK", "BLOCK")
    else:
        raise ValueError("distribution must be 'columns' or 'blocks2d'")
    if machine is None:
        machine = Machine(expected_shape, cost_model=cost_model)
    elif machine.processors.shape != expected_shape:
        raise ValueError(
            f"machine shape {machine.processors.shape} does not match "
            f"the {distribution!r} distribution (needs {expected_shape})"
        )
    elif machine.cost_model != cost_model:
        raise ValueError(
            f"machine cost model {machine.cost_model.name!r} does not "
            f"match the requested {cost_model.name!r}"
        )

    if grid is None:
        grid = np.random.default_rng(seed).standard_normal((n, n))
    grid = np.asarray(grid, dtype=np.float64)
    if grid.shape != (n, n):
        raise ValueError(f"grid shape {grid.shape} != ({n}, {n})")

    with attached_backend(machine, backend):
        engine = Engine._create(machine)
        u = engine.declare("U", (n, n), dist=dtype)
        u.from_global(grid)
        kernel = StencilKernel(u, (1, 1), smooth_step_func)
        for _ in range(steps):
            kernel.step()
        stats = machine.stats()
        return SmoothingResult(
            distribution=distribution,
            n=n,
            nprocs=nprocs,
            steps=steps,
            messages=stats.messages,
            bytes=stats.bytes,
            time=machine.time,
            msgs_per_proc_step=stats.messages / (nprocs * steps),
            solution=u.to_global(),
        )


def predicted_step_cost(
    n: int, nprocs: int, distribution: str, cost_model: CostModel, itemsize: int = 8
) -> float:
    """The paper's closed-form per-step communication cost per processor.

    columns:  2 messages of N elements;
    blocks2d: 4 messages of N/p elements (p = sqrt(nprocs)).
    Edge processors send fewer — the model prices the interior worst
    case, which is what governs the synchronized step time.
    """
    if distribution == "columns":
        return 2 * cost_model.message_time(n * itemsize)
    if distribution == "blocks2d":
        side = int(round(nprocs**0.5))
        if side * side != nprocs:
            raise ValueError("blocks2d needs a square processor count")
        return 4 * cost_model.message_time(-(-n // side) * itemsize)
    raise ValueError("distribution must be 'columns' or 'blocks2d'")


def best_distribution(n: int, nprocs: int, cost_model: CostModel, itemsize: int = 8) -> str:
    """Pick the cheaper distribution from the closed-form model.

    This is the decision Vienna Fortran lets the user take at run time
    ("if the code has been written such that the size of the grid is an
    input parameter, then the user can use the dynamic distribution
    facilities ... to set the distribution of the grid", §4): large
    N/p favours 2-D blocks (less volume), small N/p favours columns
    (fewer message startups).
    """
    col = predicted_step_cost(n, nprocs, "columns", cost_model, itemsize)
    try:
        blk = predicted_step_cost(n, nprocs, "blocks2d", cost_model, itemsize)
    except ValueError:
        return "columns"
    return "columns" if col <= blk else "blocks2d"


def planned_distribution(
    n: int, nprocs: int, cost_model: CostModel, steps: int = 50
) -> str:
    """The same choice, made by the automatic distribution planner.

    Instead of the two-way closed form, the planner searches the full
    candidate lattice (1-D strips, every 2-D grid factorization,
    cyclics) against the §3.1 communication estimates.  Returns
    ``"columns"`` for a 1-D block layout (rows and columns are
    symmetric on an N x N grid), ``"blocks2d"`` for a square 2-D block
    layout, or the layout's ``repr`` for anything else.
    """
    from ..core.dimdist import Block
    from ..planner import smoothing_workload
    from ..planner.workloads import _plan_workload

    workload = smoothing_workload(n, nprocs, steps=steps, cost_model=cost_model)
    choice = _plan_workload(workload).steps[0].dist
    blockish = all(
        isinstance(d, Block) for d in choice.dtype.dims if d.consumes_proc_dim
    )
    k = len(choice.dtype.distributed_dims)
    if blockish and k == 1:
        return "columns"
    side = int(round(nprocs**0.5))
    if blockish and k == 2 and choice.target.shape == (side, side):
        return "blocks2d"
    return repr(choice.dtype)
