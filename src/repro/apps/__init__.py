"""The paper's §4 application workloads.

- :mod:`~repro.apps.tridiag` — the TRIDIAG solver of Figure 1;
- :mod:`~repro.apps.adi` — the ADI iteration under the four
  distribution strategies §4 discusses;
- :mod:`~repro.apps.smoothing` — the grid-smoothing distribution
  choice (columns vs. 2-D blocks) with the paper's cost model;
- :mod:`~repro.apps.pic` — the Figure 2 particle-in-cell loop with
  B_BLOCK load balancing;
- :mod:`~repro.apps.load_balance` — the ``balance`` routine (greedy
  and optimal contiguous partitioners).
"""

from .adi import ADIResult, PhaseStats, adi_reference, execute_adi, run_adi

try:  # the unstructured-mesh workload needs networkx (optional)
    from .irregular import (  # noqa: F401
        RelaxationResult,
        edge_cut,
        make_mesh,
        partition_bfs,
        relaxation_reference,
        run_relaxation,
    )

    _HAVE_NETWORKX = True
except ImportError:  # pragma: no cover - exercised only without networkx
    _HAVE_NETWORKX = False
from .load_balance import balance_greedy, balance_optimal, block_loads, imbalance
from .pic import PICConfig, PICResult, StepRecord, execute_pic, initpos, run_pic
from .smoothing import (
    SmoothingResult,
    best_distribution,
    execute_smoothing,
    predicted_step_cost,
    run_smoothing,
    smooth_step_func,
    smoothing_reference,
)
from .tridiag import thomas, thomas_const, tridiag_matvec

__all__ = [
    "ADIResult",
    "PhaseStats",
    "run_adi",
    "execute_adi",
    "adi_reference",
    "balance_greedy",
    "balance_optimal",
    "block_loads",
    "imbalance",
    "PICConfig",
    "PICResult",
    "StepRecord",
    "run_pic",
    "execute_pic",
    "initpos",
    "SmoothingResult",
    "run_smoothing",
    "execute_smoothing",
    "smoothing_reference",
    "smooth_step_func",
    "predicted_step_cost",
    "best_distribution",
    "thomas",
    "thomas_const",
    "tridiag_matvec",
]
