"""Simulated interconnect with full cost accounting.

The network does not move real bytes (the runtime layer moves numpy
data directly); it *accounts* for every message the runtime would have
sent on a distributed-memory machine: count, volume, and modeled time,
both in aggregate and per processor / per directed link.

Timing follows a BSP-like superstep discipline: each processor has its
own clock; :meth:`Network.send` charges the sender and the receiver;
:meth:`Network.synchronize` advances every clock to the global maximum
(used at collective points such as the end of a DISTRIBUTE).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .cost_model import CostModel, ZERO_COST

__all__ = ["MessageRecord", "NetworkStats", "Network"]


@dataclass(frozen=True)
class MessageRecord:
    """One point-to-point message, as recorded by the tracer."""

    src: int
    dst: int
    nbytes: int
    tag: str = ""


@dataclass
class NetworkStats:
    """Aggregate communication statistics (snapshot-able and diffable)."""

    messages: int = 0
    bytes: int = 0
    time: float = 0.0
    per_proc_messages: dict[int, int] = field(default_factory=dict)
    per_proc_bytes: dict[int, int] = field(default_factory=dict)

    def copy(self) -> "NetworkStats":
        return NetworkStats(
            messages=self.messages,
            bytes=self.bytes,
            time=self.time,
            per_proc_messages=dict(self.per_proc_messages),
            per_proc_bytes=dict(self.per_proc_bytes),
        )

    def __sub__(self, other: "NetworkStats") -> "NetworkStats":
        diff_msgs = defaultdict(int, self.per_proc_messages)
        diff_bytes = defaultdict(int, self.per_proc_bytes)
        for p, v in other.per_proc_messages.items():
            diff_msgs[p] -= v
        for p, v in other.per_proc_bytes.items():
            diff_bytes[p] -= v
        return NetworkStats(
            messages=self.messages - other.messages,
            bytes=self.bytes - other.bytes,
            time=self.time - other.time,
            per_proc_messages={p: v for p, v in diff_msgs.items() if v},
            per_proc_bytes={p: v for p, v in diff_bytes.items() if v},
        )


class Network:
    """Cost-accounting interconnect between ``nprocs`` processors.

    Parameters
    ----------
    nprocs:
        Number of processor endpoints.
    cost_model:
        The latency/bandwidth model used to charge clocks.
    trace:
        If true, keep a :class:`MessageRecord` log of every message
        (useful in tests and for the transfer-set benches).
    """

    def __init__(self, nprocs: int, cost_model: CostModel = ZERO_COST, trace: bool = False):
        if nprocs < 1:
            raise ValueError("need at least one processor")
        self.nprocs = int(nprocs)
        self.cost_model = cost_model
        self.trace_enabled = bool(trace)
        #: event-recording seam for the discrete-event simulator: any
        #: object implementing the :class:`repro.sim.events.EventLog`
        #: protocol (``kernel`` / ``begin_phase`` / ``message`` /
        #: ``barrier`` / ``clear``).  ``None`` (default) records
        #: nothing; install one with :func:`repro.sim.record`.
        self.recorder = None
        self.clocks = [0.0] * self.nprocs
        self._messages = 0
        self._bytes = 0
        self._per_proc_messages: defaultdict[int, int] = defaultdict(int)
        self._per_proc_bytes: defaultdict[int, int] = defaultdict(int)
        self._per_link: defaultdict[tuple[int, int], int] = defaultdict(int)
        self.trace: list[MessageRecord] = []

    # -- validation ------------------------------------------------------
    def _check_rank(self, rank: int) -> int:
        rank = int(rank)
        if not 0 <= rank < self.nprocs:
            raise IndexError(f"processor rank {rank} out of range [0, {self.nprocs})")
        return rank

    # -- traffic ---------------------------------------------------------
    def send(self, src: int, dst: int, nbytes: int, tag: str = "") -> float:
        """Record one message from ``src`` to ``dst`` and return its cost.

        A self-message (``src == dst``) is free and not counted: on a
        real machine local data needs no network transfer.  Both
        endpoints are *occupied* for the message's duration (so a
        processor receiving P-1 messages serializes them — this is what
        makes tree reductions beat flat ones in modeled time), and the
        receive cannot complete before the send does.
        """
        src = self._check_rank(src)
        dst = self._check_rank(dst)
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("message size must be non-negative")
        if src == dst:
            return 0.0
        cost = self.cost_model.message_time(nbytes)
        self._messages += 1
        self._bytes += nbytes
        self._per_proc_messages[src] += 1
        self._per_proc_messages[dst] += 1
        self._per_proc_bytes[src] += nbytes
        self._per_proc_bytes[dst] += nbytes
        self._per_link[(src, dst)] += nbytes
        self.clocks[src] += cost
        self.clocks[dst] = max(self.clocks[dst] + cost, self.clocks[src])
        if self.trace_enabled:
            self.trace.append(MessageRecord(src, dst, nbytes, tag))
        if self.recorder is not None:
            self.recorder.message(src, dst, nbytes, tag)
        return cost

    def exchange(
        self, messages: list[tuple[int, int, int]] | list[tuple[int, int, int, str]]
    ) -> float:
        """Record one *exchange phase*: all messages post concurrently.

        Unlike sequential :meth:`send` calls — where each message
        starts after the sender's previous one finished, modeling
        store-and-forward chains — an exchange phase models the
        simultaneous neighbour exchanges of a stencil step or the
        all-to-all of a redistribution: every processor is busy for the
        *sum of its own* message costs (it still serializes its own
        endpoints), but different processors' transfers overlap.  This
        is exactly the granularity of the paper's "2 messages per
        processor, each of size N, per computation step" accounting.

        Each entry is ``(src, dst, nbytes[, tag])``.  Self-messages are
        free and skipped.  Returns the phase duration (max busy time).
        """
        busy = defaultdict(float)
        phase_id = -1
        for msg in messages:
            src, dst, nbytes = msg[0], msg[1], msg[2]
            tag = msg[3] if len(msg) > 3 else ""
            src = self._check_rank(src)
            dst = self._check_rank(dst)
            nbytes = int(nbytes)
            if nbytes < 0:
                raise ValueError("message size must be non-negative")
            if src == dst:
                continue
            cost = self.cost_model.message_time(nbytes)
            self._messages += 1
            self._bytes += nbytes
            self._per_proc_messages[src] += 1
            self._per_proc_messages[dst] += 1
            self._per_proc_bytes[src] += nbytes
            self._per_proc_bytes[dst] += nbytes
            self._per_link[(src, dst)] += nbytes
            busy[src] += cost
            busy[dst] += cost
            if self.trace_enabled:
                self.trace.append(MessageRecord(src, dst, nbytes, tag))
            if self.recorder is not None:
                if phase_id < 0:
                    phase_id = self.recorder.begin_phase(tag)
                self.recorder.message(src, dst, nbytes, tag, phase=phase_id)
        for rank, t in busy.items():
            self.clocks[rank] += t
        return max(busy.values(), default=0.0)

    def compute(self, rank: int, flops: float, tag: str = "") -> float:
        """Charge ``flops`` of local computation to ``rank``'s clock.

        ``tag`` labels the kernel in recorded event traces (it does
        not affect accounting).
        """
        rank = self._check_rank(rank)
        cost = self.cost_model.compute_time(flops)
        self.clocks[rank] += cost
        if self.recorder is not None:
            self.recorder.kernel(rank, flops, tag)
        return cost

    def synchronize(self) -> float:
        """Barrier: advance every clock to the maximum; return that time."""
        t = max(self.clocks)
        self.clocks = [t] * self.nprocs
        if self.recorder is not None:
            self.recorder.barrier()
        return t

    # -- inspection --------------------------------------------------------
    @property
    def time(self) -> float:
        """Current makespan (maximum processor clock)."""
        return max(self.clocks)

    def stats(self) -> NetworkStats:
        return NetworkStats(
            messages=self._messages,
            bytes=self._bytes,
            time=self.time,
            per_proc_messages=dict(self._per_proc_messages),
            per_proc_bytes=dict(self._per_proc_bytes),
        )

    def link_bytes(self) -> dict[tuple[int, int], int]:
        """Bytes sent over each directed (src, dst) link."""
        return dict(self._per_link)

    def reset(self) -> None:
        """Zero all counters, clocks, the trace and any recorded events
        (clocks and event log stay consistent: a replay of the log
        always reproduces the clocks since the last reset)."""
        self.clocks = [0.0] * self.nprocs
        self._messages = 0
        self._bytes = 0
        self._per_proc_messages.clear()
        self._per_proc_bytes.clear()
        self._per_link.clear()
        self.trace.clear()
        if self.recorder is not None:
            self.recorder.clear()
