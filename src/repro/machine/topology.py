"""Processor arrays and processor sections.

Vienna Fortran programs declare the processors that execute them::

    PROCESSORS R(1:M, 1:M)

and distribute arrays *to* a processor array or to a rectangular
*section* of one.  This module models both.  Internally everything is
0-based; the ``repro.lang`` layer normalizes Fortran-style 1-based
declarations.

A :class:`ProcessorArray` is a named Cartesian grid of processors.  Each
processor is identified either by its *coordinate* (a tuple, one entry
per grid dimension) or by its *rank* (the row-major linearization of the
coordinate).  A :class:`ProcessorSection` selects a rectangular,
possibly strided, sub-grid; distributions target sections so that
arrays can be mapped onto subsets of the machine (paper §2.2).
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

import numpy as np

__all__ = ["ProcessorArray", "ProcessorSection", "grid_shapes"]


def grid_shapes(nprocs: int, ndim: int) -> list[tuple[int, ...]]:
    """All ``ndim``-dimensional grid shapes whose extents multiply to
    ``nprocs``, in deterministic (lexicographic) order.

    For ``ndim == 1`` the single shape ``(nprocs,)`` is returned.  For
    higher ranks every factor must be >= 2 — degenerate unit dimensions
    only duplicate lower-rank arrangements and are omitted (so a prime
    ``nprocs`` has no 2-D grids).  Used by the distribution planner to
    enumerate the processor arrangements a candidate layout may target.
    """
    nprocs = int(nprocs)
    ndim = int(ndim)
    if nprocs < 1:
        raise ValueError(f"nprocs must be >= 1, got {nprocs}")
    if ndim < 1:
        raise ValueError(f"ndim must be >= 1, got {ndim}")
    if ndim == 1:
        return [(nprocs,)]
    out: list[tuple[int, ...]] = []
    for first in range(2, nprocs // 2 + 1):
        if nprocs % first == 0:
            for rest in grid_shapes(nprocs // first, ndim - 1):
                if all(r >= 2 for r in rest):
                    out.append((first, *rest))
    return out


def _normalize_shape(shape: Sequence[int] | int) -> tuple[int, ...]:
    if isinstance(shape, int):
        shape = (shape,)
    shape = tuple(int(s) for s in shape)
    if not shape:
        raise ValueError("processor array needs at least one dimension")
    for s in shape:
        if s < 1:
            raise ValueError(f"processor extents must be >= 1, got {shape}")
    return shape


class ProcessorArray:
    """A named Cartesian grid of processors (``PROCESSORS R(...)``).

    Parameters
    ----------
    name:
        The declared name (``R`` in the paper's examples).
    shape:
        Extent of each grid dimension.  ``ProcessorArray("R", (2, 2))``
        corresponds to ``PROCESSORS R(1:2, 1:2)``.
    """

    def __init__(self, name: str, shape: Sequence[int] | int):
        self.name = str(name)
        self.shape = _normalize_shape(shape)

    # -- basic geometry -------------------------------------------------
    @property
    def ndim(self) -> int:
        """Number of grid dimensions."""
        return len(self.shape)

    @property
    def size(self) -> int:
        """Total number of processors ($NP for this array)."""
        n = 1
        for s in self.shape:
            n *= s
        return n

    # -- coordinate <-> rank -------------------------------------------
    def rank_of(self, coord: Sequence[int]) -> int:
        """Row-major rank of a processor coordinate."""
        coord = tuple(int(c) for c in coord)
        if len(coord) != self.ndim:
            raise ValueError(
                f"coordinate {coord} has {len(coord)} dims, expected {self.ndim}"
            )
        rank = 0
        for c, s in zip(coord, self.shape):
            if not 0 <= c < s:
                raise IndexError(f"coordinate {coord} out of bounds for shape {self.shape}")
            rank = rank * s + c
        return rank

    def coord_of(self, rank: int) -> tuple[int, ...]:
        """Inverse of :meth:`rank_of`."""
        rank = int(rank)
        if not 0 <= rank < self.size:
            raise IndexError(f"rank {rank} out of range [0, {self.size})")
        coord = []
        for s in reversed(self.shape):
            coord.append(rank % s)
            rank //= s
        return tuple(reversed(coord))

    def coords(self) -> Iterator[tuple[int, ...]]:
        """Iterate over all processor coordinates in rank order."""
        return itertools.product(*(range(s) for s in self.shape))

    def ranks(self) -> range:
        return range(self.size)

    # -- sections --------------------------------------------------------
    def section(self, *slices: slice | int) -> "ProcessorSection":
        """Select a rectangular sub-grid, e.g. ``R.section(slice(0, 2), 1)``."""
        return ProcessorSection(self, slices)

    def full_section(self) -> "ProcessorSection":
        """The section covering the whole array."""
        return ProcessorSection(self, tuple(slice(None) for _ in self.shape))

    # -- dunder ----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ProcessorArray)
            and self.name == other.name
            and self.shape == other.shape
        )

    def __hash__(self) -> int:
        return hash((self.name, self.shape))

    def __repr__(self) -> str:
        dims = ", ".join(f"1:{s}" for s in self.shape)
        return f"PROCESSORS {self.name}({dims})"


class ProcessorSection:
    """A rectangular (possibly strided) sub-grid of a processor array.

    Distribution targets in Vienna Fortran may be processor sections;
    an integer subscript collapses that grid dimension, so a section of
    an ``R(4, 4)`` array such as ``R(2, :)`` is one-dimensional.
    """

    def __init__(self, parent: ProcessorArray, subscripts: Sequence[slice | int]):
        if len(subscripts) != parent.ndim:
            raise ValueError(
                f"section needs {parent.ndim} subscripts, got {len(subscripts)}"
            )
        self.parent = parent
        norm: list[tuple[int, int, int] | int] = []
        shape: list[int] = []
        for sub, extent in zip(subscripts, parent.shape):
            if isinstance(sub, slice):
                start, stop, step = sub.indices(extent)
                if step <= 0:
                    raise ValueError("section strides must be positive")
                n = max(0, (stop - start + step - 1) // step)
                if n == 0:
                    raise ValueError("empty processor section")
                norm.append((start, stop, step))
                shape.append(n)
            else:
                idx = int(sub)
                if not 0 <= idx < extent:
                    raise IndexError(f"subscript {idx} out of bounds (extent {extent})")
                norm.append(idx)
        self._subs = tuple(norm)
        self.shape = tuple(shape)

    @property
    def ndim(self) -> int:
        """Dimensionality of the *section* (collapsed dims removed)."""
        return len(self.shape)

    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    def coord_in_parent(self, sec_coord: Sequence[int]) -> tuple[int, ...]:
        """Map a section-local coordinate to the parent-array coordinate."""
        sec_coord = tuple(int(c) for c in sec_coord)
        if len(sec_coord) != self.ndim:
            raise ValueError(
                f"coordinate {sec_coord} has {len(sec_coord)} dims, expected {self.ndim}"
            )
        out: list[int] = []
        it = iter(sec_coord)
        for sub, extent in zip(self._subs, self.parent.shape):
            if isinstance(sub, int):
                out.append(sub)
            else:
                start, stop, step = sub
                c = next(it)
                if not 0 <= c < (stop - start + step - 1) // step:
                    raise IndexError(f"section coordinate {sec_coord} out of bounds")
                out.append(start + c * step)
        return tuple(out)

    def rank_of(self, sec_coord: Sequence[int]) -> int:
        """Parent rank of a section-local coordinate."""
        return self.parent.rank_of(self.coord_in_parent(sec_coord))

    def ranks(self) -> list[int]:
        """Parent ranks of all processors in the section, section-rank order."""
        return [self.rank_of(c) for c in self.coords()]

    def coords(self) -> Iterator[tuple[int, ...]]:
        return itertools.product(*(range(s) for s in self.shape))

    def rank_array(self) -> np.ndarray:
        """Parent ranks of the section as an ndarray of shape ``self.shape``.

        Entry ``[c0, c1, ...]`` is the parent rank of section-local
        coordinate ``(c0, c1, ...)``.  Distribution code uses this for
        vectorized owner-map construction.
        """
        out = np.empty(self.shape if self.shape else (1,), dtype=np.int64)
        flat = out.reshape(-1)
        for i, c in enumerate(self.coords()):
            flat[i] = self.rank_of(c)
        return out.reshape(self.shape) if self.shape else out

    def dim_ranks(self, dim: int) -> np.ndarray:
        """Parent coordinates along section dimension ``dim``.

        Used by per-dimension distribution maps: entry ``i`` is the
        parent-array index (in the corresponding parent dimension) of
        the ``i``-th processor slot along this section dimension.
        """
        live = [s for s in self._subs if not isinstance(s, int)]
        start, _stop, step = live[dim]
        return start + step * np.arange(self.shape[dim], dtype=np.int64)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ProcessorSection)
            and self.parent == other.parent
            and self._subs == other._subs
        )

    def __hash__(self) -> int:
        return hash((self.parent, self._subs))

    def __repr__(self) -> str:
        parts = []
        for sub in self._subs:
            if isinstance(sub, int):
                parts.append(str(sub))
            else:
                start, stop, step = sub
                parts.append(f"{start}:{stop}" + (f":{step}" if step != 1 else ""))
        return f"{self.parent.name}({', '.join(parts)})"
