"""Message- and computation-cost models for the simulated machine.

The paper's §4 analysis ("given the startup overhead and cost per byte
of each message of the target machine, the ratio N/p will determine the
most appropriate distribution") is parameterized by exactly two network
constants: the per-message startup latency *alpha* and the per-byte
transfer cost *beta*.  We add a computation rate so simulated clocks can
weigh local work against communication.

Presets approximate the machines contemporary with the paper (Intel
iPSC/860, Intel Paragon) and one modern-cluster point, so crossover
benches (experiment E1) can show how the best distribution shifts with
the machine's alpha/beta ratio.  The numbers are order-of-magnitude
figures from the published literature, not calibrated measurements; the
benches report *shape*, not absolute times.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "IPSC860", "PARAGON", "MODERN_CLUSTER", "ZERO_COST", "PRESETS"]


@dataclass(frozen=True)
class CostModel:
    """Linear (postal) cost model: a message of ``n`` bytes costs
    ``alpha + beta * n`` seconds; ``f`` flops cost ``f / flop_rate``.

    Attributes
    ----------
    alpha:
        Message startup latency in seconds.
    beta:
        Per-byte transfer time in seconds (inverse bandwidth).
    flop_rate:
        Floating-point operations per second of one processor.
    name:
        Human-readable label used in bench output.
    """

    alpha: float
    beta: float
    flop_rate: float
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be non-negative")
        if self.flop_rate <= 0:
            raise ValueError("flop_rate must be positive")

    def message_time(self, nbytes: int) -> float:
        """Time to deliver one message of ``nbytes`` bytes."""
        if nbytes < 0:
            raise ValueError("message size must be non-negative")
        return self.alpha + self.beta * nbytes

    def compute_time(self, flops: float) -> float:
        """Time to execute ``flops`` floating point operations locally."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        return flops / self.flop_rate

    def transfer_time(self, messages: float, nbytes: float) -> float:
        """Modeled time for ``messages`` messages totalling ``nbytes``.

        The aggregate form of :meth:`message_time` used by the
        distribution planner's cost queries: ``messages`` may be a
        per-processor average and is therefore allowed to be
        fractional.
        """
        if messages < 0 or nbytes < 0:
            raise ValueError("messages and nbytes must be non-negative")
        return self.alpha * messages + self.beta * nbytes

    def bytes_equivalent_of_latency(self) -> float:
        """Message size at which transfer time equals startup time.

        This is the machine's half-performance message length
        (n_1/2 in Hockney's model); it controls where few-large-message
        strategies beat many-small-message strategies.
        """
        if self.beta == 0:
            return float("inf")
        return self.alpha / self.beta


# Intel iPSC/860 (ca. 1991): ~75 us latency, ~2.8 MB/s, ~10 MFLOPS/node.
IPSC860 = CostModel(alpha=75e-6, beta=1 / 2.8e6, flop_rate=10e6, name="iPSC/860")

# Intel Paragon (ca. 1993): ~30 us latency, ~90 MB/s, ~50 MFLOPS/node.
PARAGON = CostModel(alpha=30e-6, beta=1 / 90e6, flop_rate=50e6, name="Paragon")

# A modern commodity cluster point: ~2 us latency, ~10 GB/s, ~10 GFLOPS.
MODERN_CLUSTER = CostModel(alpha=2e-6, beta=1 / 10e9, flop_rate=10e9, name="modern")

# Free communication: useful for tests that only check message *counts*.
ZERO_COST = CostModel(alpha=0.0, beta=0.0, flop_rate=1.0, name="zero")

PRESETS = {m.name: m for m in (IPSC860, PARAGON, MODERN_CLUSTER, ZERO_COST)}
