"""The simulated distributed-memory machine.

A :class:`Machine` bundles a processor topology, one
:class:`~repro.machine.memory.LocalMemory` per processor, and a
cost-accounting :class:`~repro.machine.network.Network`.  It is the
substrate every higher layer runs on: the Vienna Fortran Engine
allocates array segments in local memories and routes redistribution
traffic through the network, so the benches can read message counts,
volumes and modeled times straight off the machine.

The paper's target platforms (Intel iPSC hypercubes, §5) are captured
by the :mod:`~repro.machine.cost_model` presets.
"""

from __future__ import annotations

from typing import Sequence

from .cost_model import CostModel, ZERO_COST
from .memory import LocalMemory
from .network import Network, NetworkStats
from .topology import ProcessorArray, ProcessorSection

__all__ = ["Machine"]


class Machine:
    """A simulated multicomputer.

    Parameters
    ----------
    processors:
        Either a :class:`ProcessorArray` or a shape tuple (in which
        case a processor array named ``"P"`` is created).
    cost_model:
        Network/computation cost model; defaults to free communication
        (message *counts* are still recorded).
    memory_capacity:
        Optional per-processor byte limit.
    trace:
        Record every message (see :class:`~repro.machine.network.Network`).
    """

    def __init__(
        self,
        processors: ProcessorArray | Sequence[int] | int,
        cost_model: CostModel = ZERO_COST,
        memory_capacity: int | None = None,
        trace: bool = False,
    ):
        if not isinstance(processors, ProcessorArray):
            processors = ProcessorArray("P", processors)
        self.processors = processors
        self.network = Network(processors.size, cost_model, trace=trace)
        self.memories = [
            LocalMemory(rank, capacity=memory_capacity) for rank in processors.ranks()
        ]
        #: execution backend attached to this machine (see
        #: :mod:`repro.backend`); ``None`` until a backend attaches, in
        #: which case the run time falls back to in-process semantics.
        self.backend = None

    # -- convenience ------------------------------------------------------
    @property
    def nprocs(self) -> int:
        """Number of processors ($NP intrinsic of Vienna Fortran, §4)."""
        return self.processors.size

    @property
    def cost_model(self) -> CostModel:
        return self.network.cost_model

    def memory(self, rank: int) -> LocalMemory:
        return self.memories[rank]

    def full_section(self) -> ProcessorSection:
        return self.processors.full_section()

    # -- accounting -------------------------------------------------------
    def stats(self) -> NetworkStats:
        return self.network.stats()

    @property
    def time(self) -> float:
        return self.network.time

    def total_memory_used(self) -> int:
        return sum(m.used for m in self.memories)

    def max_memory_used(self) -> int:
        return max(m.used for m in self.memories)

    def reset_network(self) -> None:
        """Zero communication counters (keeps memory contents)."""
        self.network.reset()

    # -- backend integration ----------------------------------------------
    def set_segment_allocator(self, allocator) -> None:
        """Install (or, with ``None``, remove) a segment allocator on
        every local memory — how an execution backend makes array
        segments visible to its worker processes."""
        for mem in self.memories:
            mem.allocator = allocator

    def __repr__(self) -> str:
        return (
            f"Machine({self.processors!r}, cost_model={self.cost_model.name!r}, "
            f"nprocs={self.nprocs})"
        )
