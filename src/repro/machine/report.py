"""Human-readable machine reports.

The benches and examples read raw counters off the machine; this
module renders them: per-processor load/traffic tables, link matrices,
and a one-paragraph summary — the kind of output the VFCS performance
tools would surface to a Vienna Fortran programmer deciding whether a
redistribution pays for itself.
"""

from __future__ import annotations

import io

from .machine import Machine

__all__ = ["per_processor_table", "link_matrix", "summary"]


def per_processor_table(machine: Machine) -> str:
    """Rank / messages / bytes / clock / memory table."""
    stats = machine.stats()
    out = io.StringIO()
    header = f"{'rank':>4s} {'msgs':>8s} {'bytes':>12s} {'clock (ms)':>11s} {'mem (B)':>10s}"
    print(header, file=out)
    print("-" * len(header), file=out)
    for rank in range(machine.nprocs):
        print(
            f"{rank:4d} "
            f"{stats.per_proc_messages.get(rank, 0):8d} "
            f"{stats.per_proc_bytes.get(rank, 0):12d} "
            f"{machine.network.clocks[rank] * 1e3:11.3f} "
            f"{machine.memory(rank).used:10d}",
            file=out,
        )
    return out.getvalue().rstrip()


def link_matrix(machine: Machine) -> str:
    """Directed src -> dst byte matrix (empty links blank)."""
    links = machine.network.link_bytes()
    n = machine.nprocs
    width = max(
        [5] + [len(str(v)) for v in links.values()]
    )
    out = io.StringIO()
    print(
        "src\\dst " + " ".join(f"{d:>{width}d}" for d in range(n)), file=out
    )
    for s in range(n):
        row = " ".join(
            f"{links.get((s, d), ''):>{width}}" for d in range(n)
        )
        print(f"{s:7d} {row}", file=out)
    return out.getvalue().rstrip()


def summary(machine: Machine) -> str:
    """One-paragraph communication/compute summary."""
    stats = machine.stats()
    clocks = machine.network.clocks
    imb = (
        max(clocks) / (sum(clocks) / len(clocks))
        if any(c > 0 for c in clocks)
        else 1.0
    )
    return (
        f"{machine.nprocs} processors ({machine.cost_model.name}): "
        f"{stats.messages} messages, {stats.bytes} bytes, makespan "
        f"{machine.time * 1e3:.3f} ms, clock imbalance {imb:.2f}x, "
        f"memory {machine.total_memory_used()} B total "
        f"(max {machine.max_memory_used()} B/processor)"
    )
