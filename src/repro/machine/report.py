"""Human-readable machine reports.

The benches and examples read raw counters off the machine; this
module renders them: per-processor load/traffic tables, link matrices,
and a one-paragraph summary — the kind of output the VFCS performance
tools would surface to a Vienna Fortran programmer deciding whether a
redistribution pays for itself.
"""

from __future__ import annotations

import io
from typing import TYPE_CHECKING

from .machine import Machine

if TYPE_CHECKING:
    from ..sim.clock import Timeline

__all__ = [
    "per_processor_table",
    "link_matrix",
    "summary",
    "timeline_table",
    "timeline_summary",
]


def per_processor_table(machine: Machine) -> str:
    """Rank / messages / bytes / clock / memory table."""
    stats = machine.stats()
    out = io.StringIO()
    header = f"{'rank':>4s} {'msgs':>8s} {'bytes':>12s} {'clock (ms)':>11s} {'mem (B)':>10s}"
    print(header, file=out)
    print("-" * len(header), file=out)
    for rank in range(machine.nprocs):
        print(
            f"{rank:4d} "
            f"{stats.per_proc_messages.get(rank, 0):8d} "
            f"{stats.per_proc_bytes.get(rank, 0):12d} "
            f"{machine.network.clocks[rank] * 1e3:11.3f} "
            f"{machine.memory(rank).used:10d}",
            file=out,
        )
    return out.getvalue().rstrip()


def link_matrix(machine: Machine) -> str:
    """Directed src -> dst byte matrix (empty links blank)."""
    links = machine.network.link_bytes()
    n = machine.nprocs
    width = max(
        [5] + [len(str(v)) for v in links.values()]
    )
    out = io.StringIO()
    print(
        "src\\dst " + " ".join(f"{d:>{width}d}" for d in range(n)), file=out
    )
    for s in range(n):
        row = " ".join(
            f"{links.get((s, d), ''):>{width}}" for d in range(n)
        )
        print(f"{s:7d} {row}", file=out)
    return out.getvalue().rstrip()


def summary(machine: Machine) -> str:
    """One-paragraph communication/compute summary."""
    stats = machine.stats()
    clocks = machine.network.clocks
    imb = (
        max(clocks) / (sum(clocks) / len(clocks))
        if any(c > 0 for c in clocks)
        else 1.0
    )
    return (
        f"{machine.nprocs} processors ({machine.cost_model.name}): "
        f"{stats.messages} messages, {stats.bytes} bytes, makespan "
        f"{machine.time * 1e3:.3f} ms, clock imbalance {imb:.2f}x, "
        f"memory {machine.total_memory_used()} B total "
        f"(max {machine.max_memory_used()} B/processor)"
    )


# -- timeline-aware reports (discrete-event simulator) -----------------------

def timeline_table(timeline: "Timeline") -> str:
    """Per-processor busy/idle breakdown of a simulated timeline.

    The quantity the scalar accounting cannot show: how the makespan
    splits into compute, communication and idle time on *each*
    processor — the load-imbalance picture the paper's dynamic
    redistribution exists to fix.
    """
    out = io.StringIO()
    header = (
        f"{'rank':>4s} {'compute (ms)':>13s} {'comm (ms)':>10s} "
        f"{'wait (ms)':>10s} {'idle (ms)':>10s} {'util':>6s}"
    )
    print(header, file=out)
    print("-" * len(header), file=out)
    span = timeline.makespan
    for p in timeline.procs:
        by_kind = p.busy_by_kind()
        compute = by_kind.get("compute", 0.0)
        comm = by_kind.get("comm", 0.0) + by_kind.get("post", 0.0)
        wait = by_kind.get("wait", 0.0)
        # the four columns partition the makespan: "wait" is idle time
        # with a recorded cause, "idle" the unattributed remainder
        idle = span - compute - comm - wait
        util = (compute + comm) / span if span > 0 else 1.0
        print(
            f"{p.rank:4d} {compute * 1e3:13.3f} {comm * 1e3:10.3f} "
            f"{wait * 1e3:10.3f} {idle * 1e3:10.3f} {util:6.2f}",
            file=out,
        )
    return out.getvalue().rstrip()


def timeline_summary(timeline: "Timeline", machine: Machine | None = None) -> str:
    """Max-clock makespan vs. summed-cost accounting, in one paragraph.

    Compares the timeline's makespan (maximum per-processor clock)
    against the total busy time divided by the processor count — the
    perfectly-balanced, perfectly-overlapped lower bound a summed
    aggregate cost would suggest — and, when ``machine`` is given, the
    machine's own aggregate clock for the same run.
    """
    m = timeline.metrics()
    balanced = m["total_busy"] / timeline.nprocs
    mode = "split-phase" if timeline.overlap else "blocking"
    parts = [
        f"{mode} makespan {m['makespan'] * 1e3:.3f} ms (max clock) vs "
        f"{balanced * 1e3:.3f} ms summed-cost bound "
        f"(total busy / {timeline.nprocs} procs)",
        f"idle {m['idle_time'] * 1e3:.3f} ms "
        f"({1 - m['efficiency']:.0%} of processor-seconds)",
        f"busy imbalance {m['imbalance']:.2f}x",
    ]
    if machine is not None:
        parts.append(f"machine aggregate clock {machine.time * 1e3:.3f} ms")
    return "; ".join(parts)
