"""Simulated distributed-memory machine substrate.

This subpackage stands in for the hardware the paper targets (Intel
iPSC-class multicomputers): a Cartesian grid of processors, each with a
private local memory, connected by a message-passing network modeled by
a linear ``alpha + beta * bytes`` cost function.  Everything above it —
the distribution model, the Vienna Fortran Engine, the compiler — is
machine-independent, exactly as the paper argues.
"""

from .cost_model import CostModel, IPSC860, MODERN_CLUSTER, PARAGON, PRESETS, ZERO_COST
from .machine import Machine
from .measured import Calibration, MeasuredMachine
from .memory import AllocationRecord, LocalMemory, MemoryError_
from .network import MessageRecord, Network, NetworkStats
from .report import (
    link_matrix,
    per_processor_table,
    summary,
    timeline_summary,
    timeline_table,
)
from .topology import ProcessorArray, ProcessorSection, grid_shapes

__all__ = [
    "CostModel",
    "IPSC860",
    "PARAGON",
    "MODERN_CLUSTER",
    "ZERO_COST",
    "PRESETS",
    "Machine",
    "MeasuredMachine",
    "Calibration",
    "LocalMemory",
    "MemoryError_",
    "AllocationRecord",
    "Network",
    "NetworkStats",
    "MessageRecord",
    "ProcessorArray",
    "ProcessorSection",
    "grid_shapes",
    "per_processor_table",
    "link_matrix",
    "summary",
    "timeline_table",
    "timeline_summary",
]
