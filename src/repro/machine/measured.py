"""Measured machines: cost models fitted to real transport benchmarks.

The preset cost models in :mod:`~repro.machine.cost_model` are
order-of-magnitude literature figures — every alpha/beta the planner
optimizes against is an *assumption*.  A :class:`Calibration` closes
that loop: it carries network constants **fitted to measurements** of a
real message-passing transport (see :mod:`repro.backend.calibrate`,
which microbenchmarks the multiprocess backend), and a
:class:`MeasuredMachine` is an ordinary :class:`~repro.machine.machine.Machine`
whose cost model is built from such a fit — so the distribution
planner, the redistribution reports, and every bench can price
schedules against measured rather than assumed constants with no code
changes above this layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .cost_model import CostModel
from .machine import Machine
from .topology import ProcessorArray

__all__ = ["Calibration", "MeasuredMachine"]


@dataclass(frozen=True)
class Calibration:
    """Fitted machine constants plus the raw samples behind the fit.

    Attributes
    ----------
    alpha:
        Fitted per-message startup latency in seconds.
    beta:
        Fitted per-byte transfer time in seconds (inverse bandwidth).
    flop_rate:
        Measured floating-point rate of one worker, flops/second.
    samples:
        The ``(nbytes, seconds)`` one-way message timings the linear
        fit was computed from.
    source:
        Where the numbers came from (e.g. ``"multiprocess"``).
    residual:
        Root-mean-square residual of the alpha+beta*n fit, seconds.
    """

    alpha: float
    beta: float
    flop_rate: float
    samples: tuple[tuple[int, float], ...] = field(default_factory=tuple)
    source: str = "measured"
    residual: float = 0.0

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("fitted alpha and beta must be non-negative")
        if self.flop_rate <= 0:
            raise ValueError("measured flop_rate must be positive")

    @property
    def bandwidth(self) -> float:
        """Fitted asymptotic bandwidth in bytes/second."""
        return float("inf") if self.beta == 0 else 1.0 / self.beta

    def cost_model(self, name: str | None = None) -> CostModel:
        """The fitted constants as a planner-ready :class:`CostModel`."""
        return CostModel(
            alpha=self.alpha,
            beta=self.beta,
            flop_rate=self.flop_rate,
            name=name if name is not None else f"measured({self.source})",
        )

    def summary(self) -> str:
        return (
            f"Calibration[{self.source}]: alpha={self.alpha * 1e6:.1f}us  "
            f"beta={self.beta * 1e9:.3f}ns/B "
            f"({self.bandwidth / 1e6:.0f} MB/s)  "
            f"flops={self.flop_rate / 1e6:.0f}M/s  "
            f"n1/2={self.alpha / self.beta if self.beta else float('inf'):.0f}B  "
            f"({len(self.samples)} samples, rms {self.residual * 1e6:.2f}us)"
        )


class MeasuredMachine(Machine):
    """A machine whose cost model was fitted to transport measurements.

    Construct it from a :class:`Calibration` (typically produced by
    :func:`repro.backend.calibrate.calibrate`); everything downstream —
    the cost engine, the planner, the benches — accepts it wherever a
    :class:`Machine` is accepted, because it *is* one.
    """

    def __init__(
        self,
        processors: ProcessorArray | Sequence[int] | int,
        calibration: Calibration,
        memory_capacity: int | None = None,
        trace: bool = False,
    ):
        super().__init__(
            processors,
            cost_model=calibration.cost_model(),
            memory_capacity=memory_capacity,
            trace=trace,
        )
        self.calibration = calibration

    def __repr__(self) -> str:
        return (
            f"MeasuredMachine({self.processors!r}, nprocs={self.nprocs}, "
            f"alpha={self.calibration.alpha:.2e}, "
            f"beta={self.calibration.beta:.2e})"
        )
