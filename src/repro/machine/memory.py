"""Per-processor local memories.

On the machines the paper targets, a processor stores exactly the array
elements distributed to it ("a processor owns the data which is
distributed to it, and stores it in its local memory", §1), plus any
overlap (ghost) areas and communication buffers.  We model each local
memory as a dictionary of named numpy blocks with byte accounting, so
that the storage-waste argument of §4 (two static arrays vs. one
dynamic array) is measurable (experiment E7).
"""

from __future__ import annotations

import numpy as np

__all__ = ["LocalMemory", "MemoryError_", "AllocationRecord"]


class MemoryError_(RuntimeError):
    """Raised when an allocation would exceed the configured capacity."""


class AllocationRecord:
    """Bookkeeping for one named allocation in a local memory."""

    __slots__ = ("name", "nbytes", "kind")

    def __init__(self, name: str, nbytes: int, kind: str):
        self.name = name
        self.nbytes = nbytes
        self.kind = kind  # "data" | "overlap" | "buffer" | "table"

    def __repr__(self) -> str:
        return f"AllocationRecord({self.name!r}, {self.nbytes}B, {self.kind})"


class LocalMemory:
    """The local memory of one simulated processor.

    Parameters
    ----------
    rank:
        Owning processor's rank (for error messages).
    capacity:
        Optional byte limit; ``None`` means unbounded.

    An execution backend may install a *segment allocator* (see
    :mod:`repro.backend`): an object with ``alloc(rank, name, shape,
    dtype) -> np.ndarray`` and ``free(rank, name)``.  When present,
    named blocks are backed by whatever storage the allocator provides
    (e.g. ``multiprocessing.shared_memory`` so SPMD worker processes
    can see them); byte accounting is unchanged.
    """

    def __init__(self, rank: int, capacity: int | None = None):
        self.rank = int(rank)
        self.capacity = capacity
        self.allocator = None  # backend-installed segment allocator
        self._blocks: dict[str, np.ndarray] = {}
        self._records: dict[str, AllocationRecord] = {}
        self.high_water = 0

    # -- allocation ------------------------------------------------------
    def allocate(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: np.dtype | type = np.float64,
        kind: str = "data",
        fill: float | None = None,
    ) -> np.ndarray:
        """Allocate a named block; re-allocating a name frees the old block."""
        if name in self._blocks:
            self.free(name)
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if self.capacity is not None and self.used + nbytes > self.capacity:
            raise MemoryError_(
                f"processor {self.rank}: allocating {nbytes}B for {name!r} "
                f"exceeds capacity {self.capacity}B (used {self.used}B)"
            )
        if self.allocator is not None:
            arr = self.allocator.alloc(self.rank, name, tuple(shape), dtype)
        else:
            arr = np.empty(shape, dtype=dtype)
        if fill is not None:
            arr.fill(fill)
        self._blocks[name] = arr
        self._records[name] = AllocationRecord(name, nbytes, kind)
        self.high_water = max(self.high_water, self.used)
        return arr

    def adopt(self, name: str, arr: np.ndarray, kind: str = "data") -> np.ndarray:
        """Register an externally-built array as a named block."""
        if name in self._blocks:
            self.free(name)
        if self.capacity is not None and self.used + arr.nbytes > self.capacity:
            raise MemoryError_(
                f"processor {self.rank}: adopting {arr.nbytes}B for {name!r} "
                f"exceeds capacity {self.capacity}B"
            )
        self._blocks[name] = arr
        self._records[name] = AllocationRecord(name, arr.nbytes, kind)
        self.high_water = max(self.high_water, self.used)
        return arr

    def free(self, name: str) -> None:
        if name not in self._blocks:
            raise KeyError(f"processor {self.rank}: no block named {name!r}")
        del self._blocks[name]
        del self._records[name]
        if self.allocator is not None:
            self.allocator.free(self.rank, name)

    def materialize(self, name: str) -> None:
        """Replace a block's backing buffer with a private in-process
        copy.  Called by a closing backend before it withdraws the
        shared storage underneath — array contents survive the
        backend, and later reads see ordinary process memory instead
        of an unmapped segment."""
        arr = self._blocks.get(name)
        if arr is not None:
            self._blocks[name] = np.array(arr, copy=True)

    # -- access ------------------------------------------------------------
    def __getitem__(self, name: str) -> np.ndarray:
        return self._blocks[name]

    def __contains__(self, name: str) -> bool:
        return name in self._blocks

    def block_names(self) -> list[str]:
        return list(self._blocks)

    # -- accounting ----------------------------------------------------------
    @property
    def used(self) -> int:
        """Currently allocated bytes."""
        return sum(r.nbytes for r in self._records.values())

    def used_by_kind(self, kind: str) -> int:
        return sum(r.nbytes for r in self._records.values() if r.kind == kind)

    def __repr__(self) -> str:
        return (
            f"LocalMemory(rank={self.rank}, blocks={len(self._blocks)}, "
            f"used={self.used}B, high_water={self.high_water}B)"
        )
