"""Windowed load monitoring — the adaptive controller's eyes.

The paper's §4 rebalancing test (``IF (MOD(k,10).EQ.0 .AND.
rebalance())``) leaves ``rebalance()`` to the programmer; PR 1's
planner answers it offline from a static cost model.  The
:class:`LoadMonitor` is the online half: it ingests one *window* of
per-processor busy seconds at a time — measured from the live
machine's per-rank compute occupancy, or taken from a simulated
:class:`~repro.sim.clock.Timeline` via
:func:`~repro.sim.trace.windowed_imbalance` — and turns the raw
``max/mean`` imbalance into a drift verdict that is safe to act on:

- an **EWMA** smooths the per-window imbalance so one noisy window
  cannot trigger a redistribution;
- **hysteresis** splits the on/off thresholds (drift turns on above
  ``drift_threshold``, off only below ``drift_threshold -
  hysteresis``), so a signal hovering at the threshold cannot thrash
  the controller;
- a **cooldown** suppresses the drift verdict for a few windows after
  an acknowledged redistribution (:meth:`notify_replanned`), giving
  the new layout time to show up in the measurements before it can be
  second-guessed.  It defaults to 0 — the EWMA hysteresis alone damps
  thrash on the simulator's noise-free signals, and every suppressed
  window is a window the controller cannot react in; raise it for
  noisy live-backend measurements.

Note the one thing the monitor deliberately does *not* read: the
network's post-barrier clocks.  ``Network.synchronize()`` equalizes
all per-rank clocks, so end-of-step clock deltas carry no imbalance
information — callers must account per-rank busy *within* the window
(the adaptive drivers measure each rank's clock advance across its
compute call), exactly what the ``Timeline`` interval history records
for simulated runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:
    from ..sim.clock import Timeline

__all__ = ["WindowSample", "LoadMonitor"]


@dataclass(frozen=True)
class WindowSample:
    """One observed window: the busy vector and the derived signals."""

    index: int
    busy: tuple[float, ...]
    #: max/mean of ``busy`` (1.0 when the window carried no load)
    imbalance: float
    #: EWMA-smoothed imbalance after folding this window in
    ewma: float
    #: the hysteresis/cooldown-filtered drift verdict
    drifting: bool
    #: True while the post-replan cooldown suppressed the verdict
    in_cooldown: bool

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "busy": list(self.busy),
            "imbalance": self.imbalance,
            "ewma": self.ewma,
            "drifting": self.drifting,
            "in_cooldown": self.in_cooldown,
        }


def imbalance_of(busy: Sequence[float]) -> float:
    """``max/mean`` of a per-processor busy vector (1.0 for no load —
    the :meth:`~repro.sim.clock.Timeline.imbalance` convention)."""
    busy = list(busy)
    if not busy:
        raise ValueError("busy vector must have at least one processor")
    mean = sum(busy) / len(busy)
    if mean <= 0.0:
        return 1.0
    return max(busy) / mean


class LoadMonitor:
    """EWMA drift detector over windowed per-processor busy signals."""

    def __init__(
        self,
        nprocs: int,
        *,
        alpha: float = 0.6,
        drift_threshold: float = 1.1,
        hysteresis: float = 0.05,
        cooldown: int = 0,
    ):
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        if not (0.0 < alpha <= 1.0):
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if drift_threshold < 1.0:
            raise ValueError(
                f"drift_threshold is a max/mean ratio and must be >= 1.0, "
                f"got {drift_threshold}"
            )
        if hysteresis < 0.0:
            raise ValueError(f"hysteresis must be >= 0, got {hysteresis}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.nprocs = int(nprocs)
        self.alpha = float(alpha)
        self.drift_threshold = float(drift_threshold)
        self.hysteresis = float(hysteresis)
        self.cooldown = int(cooldown)
        self.samples: list[WindowSample] = []
        self._ewma = 1.0  # perfect balance until told otherwise
        self._drifting = False
        self._cooldown_left = 0

    # -- observation -------------------------------------------------------
    def observe(self, busy: Sequence[float]) -> WindowSample:
        """Fold one window's per-processor busy seconds into the
        detector; returns the sample with the filtered verdict."""
        busy = tuple(float(b) for b in busy)
        if len(busy) != self.nprocs:
            raise ValueError(
                f"busy vector has {len(busy)} entries, monitor watches "
                f"{self.nprocs} processors"
            )
        imb = imbalance_of(busy)
        self._ewma = self.alpha * imb + (1.0 - self.alpha) * self._ewma
        # hysteresis: enter above the threshold, leave only below the
        # threshold minus the band — a signal sitting at the threshold
        # cannot flip the verdict back and forth
        if self._drifting:
            if self._ewma < self.drift_threshold - self.hysteresis:
                self._drifting = False
        elif self._ewma > self.drift_threshold:
            self._drifting = True
        in_cooldown = self._cooldown_left > 0
        if in_cooldown:
            self._cooldown_left -= 1
        sample = WindowSample(
            index=len(self.samples),
            busy=busy,
            imbalance=imb,
            ewma=self._ewma,
            drifting=self._drifting and not in_cooldown,
            in_cooldown=in_cooldown,
        )
        self.samples.append(sample)
        return sample

    def observe_timeline(
        self, timeline: "Timeline", windows: int = 8
    ) -> list[WindowSample]:
        """Feed a simulated timeline through the detector, one equal
        time bin at a time (the :func:`~repro.sim.trace.windowed_imbalance`
        series is the oracle for the per-window busy vectors)."""
        from ..sim.trace import windowed_imbalance

        return [
            self.observe(w["busy"])
            for w in windowed_imbalance(timeline, windows=windows)
        ]

    # -- controller hooks --------------------------------------------------
    def notify_replanned(self) -> None:
        """The controller redistributed: suppress the drift verdict for
        ``cooldown`` windows so the new layout can be measured before
        it is judged."""
        self._cooldown_left = self.cooldown
        self._drifting = False

    # -- inspection --------------------------------------------------------
    @property
    def latest(self) -> WindowSample | None:
        return self.samples[-1] if self.samples else None

    @property
    def ewma(self) -> float:
        return self._ewma

    def streak(self, threshold: float) -> int:
        """Trailing consecutive windows whose raw imbalance exceeded
        ``threshold`` — the ``k``-windows condition of threshold rules."""
        n = 0
        for sample in reversed(self.samples):
            if sample.imbalance > threshold:
                n += 1
            else:
                break
        return n

    def imbalance_series(self) -> list[float]:
        return [s.imbalance for s in self.samples]

    def __repr__(self) -> str:
        return (
            f"LoadMonitor(nprocs={self.nprocs}, windows={len(self.samples)}, "
            f"ewma={self._ewma:.3f}, drifting={self._drifting})"
        )
