"""Bench E16: online adaptive redistribution vs every offline answer.

For each drifting-load scenario the bench drives the same workload —
same seed, same RNG stream, bitwise-identical solution — under the
four layout policies of :class:`~repro.adapt.AdaptiveController` and
compares modeled makespans.  The claims under test:

- **adaptive beats the best static layout** (``static`` BLOCK and
  ``balanced`` B_BLOCK-at-t0 both held fixed): under drift, any fixed
  layout decays;
- **adaptive beats the offline plan**: the planner forecasts from the
  t=0 state (pure drift for PIC — diffusion is invisible to it; for
  the irregular hot spot, nothing at all), so measuring beats
  predicting once the forecast diverges;
- **the loop is deterministic**: the adaptive arm runs twice with the
  same seed and must reproduce the solution digest *and* the replan
  decision log, bit for bit.

``python -m repro adapt`` writes the ``repro-bench-adapt/1`` report to
``BENCH_ADAPT.json`` plus the policy coverage sweep to
``ADAPT_COVERAGE.json``; ``--check`` turns gate failures into exit
code 2 (the CI contract), ``--trajectory`` appends the report to the
bench history the regression sentinel reads.
"""

from __future__ import annotations

import json
from typing import Mapping

from .controller import AdaptiveController
from .policies import PolicyLibrary, dump_coverage

__all__ = ["ADAPT_SCHEMA", "SCENARIOS", "SMOKE_SCENARIOS", "run_adapt_bench"]

#: schema of the BENCH_ADAPT.json document
ADAPT_SCHEMA = "repro-bench-adapt/1"

#: full-size drifting-load scenarios (the committed baseline)
SCENARIOS: tuple[dict, ...] = (
    {
        "name": "pic-drift",
        "workload": "pic",
        "nprocs": 4,
        "cost_model": "Paragon",
        "params": {
            "ncell": 96, "npart": 6000, "steps": 60, "window": 6,
            "drift": 0.008, "diffusion": 0.01, "cluster_width": 0.06,
        },
    },
    {
        "name": "irregular-hotspot",
        "workload": "irregular",
        "nprocs": 4,
        "cost_model": "Paragon",
        "params": {
            "n": 192, "sweeps": 48, "window": 6, "drift": 0.02,
            "amp": 6.0, "width": 0.06,
        },
    },
)

#: CI-sized scenarios (same structure, minutes -> seconds)
SMOKE_SCENARIOS: tuple[dict, ...] = (
    {
        "name": "pic-drift",
        "workload": "pic",
        "nprocs": 4,
        "cost_model": "Paragon",
        "params": {
            "ncell": 48, "npart": 1500, "steps": 24, "window": 4,
            "drift": 0.02, "diffusion": 0.012, "cluster_width": 0.06,
        },
    },
    {
        "name": "irregular-hotspot",
        "workload": "irregular",
        "nprocs": 4,
        "cost_model": "Paragon",
        "params": {
            "n": 96, "sweeps": 20, "window": 4, "drift": 0.045,
            "amp": 6.0, "width": 0.06,
        },
    },
)


def _run_scenario(scenario: Mapping, seed: int) -> dict:
    """All four modes plus the determinism repeat, one scenario."""
    controller = AdaptiveController(
        str(scenario["workload"]),
        nprocs=int(scenario["nprocs"]),
        cost_model=str(scenario["cost_model"]),
        seed=seed,
        params=dict(scenario["params"]),
    )
    runs = {mode: controller.run(mode) for mode in
            ("static", "balanced", "offline", "adaptive")}
    repeat = controller.run("adaptive")

    adaptive = runs["adaptive"]
    makespans = {m: r.makespan for m, r in runs.items()}
    best_static_mode = min(("static", "balanced"), key=makespans.__getitem__)
    solution_digests = {m: r.solution_digest() for m, r in runs.items()}
    deterministic = (
        repeat.solution_digest() == adaptive.solution_digest()
        and repeat.decision_digest() == adaptive.decision_digest()
    )
    gates = {
        "adaptive_beats_static": (
            adaptive.makespan < makespans[best_static_mode]
        ),
        "adaptive_beats_offline": adaptive.makespan < makespans["offline"],
        "adaptive_replanned": len(adaptive.replans) >= 1,
        "deterministic": deterministic,
        "solutions_identical": len(set(solution_digests.values())) == 1,
    }
    return {
        "name": scenario["name"],
        "workload": scenario["workload"],
        "nprocs": scenario["nprocs"],
        "cost_model": scenario["cost_model"],
        "params": dict(scenario["params"]),
        "seed": seed,
        "makespans": makespans,
        "best_static_mode": best_static_mode,
        "speedup_vs_best_static": (
            makespans[best_static_mode] / adaptive.makespan
            if adaptive.makespan > 0 else 1.0
        ),
        "speedup_vs_offline": (
            makespans["offline"] / adaptive.makespan
            if adaptive.makespan > 0 else 1.0
        ),
        "replans": [r.to_json() for r in adaptive.replans],
        "decisions": adaptive.decision_log(),
        "mean_imbalance": {
            m: r.mean_imbalance for m, r in runs.items()
        },
        "solution_digest": solution_digests["adaptive"],
        "decision_digest": adaptive.decision_digest(),
        "checkpoints": len(adaptive.checkpoints),
        "gates": gates,
        "pass": all(gates.values()),
    }


def run_adapt_bench(
    smoke: bool = False,
    out: str | None = "BENCH_ADAPT.json",
    coverage_out: str | None = "ADAPT_COVERAGE.json",
    check: bool = False,
    trajectory: str | None = None,
    quiet: bool = False,
    seed: int = 0,
) -> dict:
    """Run the E16 adaptive-redistribution bench; returns the report.

    ``out``/``coverage_out`` name the JSON artifacts (``None`` skips
    writing); ``check`` raises ``SystemExit(2)`` when any scenario
    gate fails; ``trajectory`` appends the report to the bench-history
    JSONL (kind ``"adapt"``).
    """
    from ..obs.trajectory import TrajectoryStore, environment_fingerprint

    scenarios = SMOKE_SCENARIOS if smoke else SCENARIOS
    results = []
    for scenario in scenarios:
        if not quiet:
            print(f"adapt bench: {scenario['name']} "
                  f"({'smoke' if smoke else 'full'}) ...")
        record = _run_scenario(scenario, seed)
        results.append(record)
        if not quiet:
            ms = record["makespans"]
            print(
                f"  static {ms['static'] * 1e3:8.3f} ms   "
                f"balanced {ms['balanced'] * 1e3:8.3f} ms   "
                f"offline {ms['offline'] * 1e3:8.3f} ms   "
                f"adaptive {ms['adaptive'] * 1e3:8.3f} ms"
            )
            print(
                f"  {len(record['replans'])} replan(s), "
                f"{record['speedup_vs_best_static']:.2f}x vs best static, "
                f"{record['speedup_vs_offline']:.2f}x vs offline plan, "
                f"gates {'PASS' if record['pass'] else 'FAIL'}"
            )
    report = {
        "schema": ADAPT_SCHEMA,
        "smoke": bool(smoke),
        "seed": int(seed),
        "env": environment_fingerprint(),
        "scenarios": results,
        "pass": all(r["pass"] for r in results),
    }
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        if not quiet:
            print(f"  wrote {out}")
    if coverage_out:
        coverage = PolicyLibrary().coverage_report(seed=seed)
        dump_coverage(coverage, coverage_out)
        if not quiet:
            n = len(coverage["entries"])
            print(f"  wrote {coverage_out} ({n} registry entries, "
                  f"complete={coverage['complete']})")
    if trajectory:
        entry = TrajectoryStore(trajectory).append("adapt", report)
        if not quiet:
            print(f"  appended to {trajectory} (env {entry['env_digest']})")
    if check and not report["pass"]:
        failing = [
            f"{r['name']}: " + ", ".join(
                g for g, ok in r["gates"].items() if not ok
            )
            for r in results if not r["pass"]
        ]
        print("adapt bench gate failed -- " + "; ".join(failing))
        raise SystemExit(2)
    return report
