"""Versioned redistribution policies with tiered fallback.

A policy answers the question the paper's ``rebalance()`` predicate
leaves open: *given what the monitor measured, should the array be
redistributed now?*  The library is tiered, cheapest verdict first:

===== =========== ========================================================
tier  name        answers when
===== =========== ========================================================
0     static      the drift detector is quiet (or the policy is
                  static-only) — keep the current layout, ask nothing
1     threshold   imbalance exceeded ``threshold`` for ``windows``
                  consecutive windows; fires directly when the signal is
                  *strong* (``threshold * strong_factor``) or when no
                  pricing oracle is available
2     planner     the gray zone — drift confirmed but not overwhelming:
                  price the candidate redistribution with the planner's
                  cost engine and replan only when the modeled gain over
                  the remaining horizon beats the transfer cost
===== =========== ========================================================

Policies are plain data (``repro-adapt-policy/1`` JSON) so a tuned
policy can be committed, diffed, and replayed;
:meth:`PolicyLibrary.coverage_report` sweeps the workload registry and
reports which tier answers for every workload × machine × drift
scenario — the CI artifact that proves no registered workload falls
through the tiers unhandled.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, IO, Mapping, Sequence

if TYPE_CHECKING:
    from .monitor import LoadMonitor

__all__ = [
    "POLICY_SCHEMA",
    "COVERAGE_SCHEMA",
    "TIER_STATIC",
    "TIER_THRESHOLD",
    "TIER_PLANNER",
    "TIER_NAMES",
    "Rule",
    "Decision",
    "PolicyLibrary",
]

POLICY_SCHEMA = "repro-adapt-policy/1"
COVERAGE_SCHEMA = "repro-adapt-coverage/1"

TIER_STATIC = 0
TIER_THRESHOLD = 1
TIER_PLANNER = 2
TIER_NAMES = {
    TIER_STATIC: "static",
    TIER_THRESHOLD: "threshold",
    TIER_PLANNER: "planner",
}


@dataclass(frozen=True)
class Rule:
    """One redistribution rule at one tier (plain data, JSON round-trip)."""

    name: str
    tier: int
    #: raw-imbalance trigger level (max/mean)
    threshold: float = 1.25
    #: consecutive windows the threshold must hold before firing
    windows: int = 2
    #: imbalance >= threshold*strong_factor skips the pricing tier
    strong_factor: float = 1.5

    def __post_init__(self) -> None:
        if self.tier not in TIER_NAMES:
            raise ValueError(
                f"tier must be one of {sorted(TIER_NAMES)}, got {self.tier}"
            )
        if self.threshold < 1.0:
            raise ValueError(
                f"threshold is a max/mean ratio, must be >= 1.0, "
                f"got {self.threshold}"
            )
        if self.windows < 1:
            raise ValueError(f"windows must be >= 1, got {self.windows}")
        if self.strong_factor < 1.0:
            raise ValueError(
                f"strong_factor must be >= 1.0, got {self.strong_factor}"
            )

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "tier": self.tier,
            "threshold": self.threshold,
            "windows": self.windows,
            "strong_factor": self.strong_factor,
        }

    @classmethod
    def from_json(cls, doc: Mapping) -> "Rule":
        return cls(
            name=str(doc["name"]),
            tier=int(doc["tier"]),
            threshold=float(doc.get("threshold", 1.25)),
            windows=int(doc.get("windows", 2)),
            strong_factor=float(doc.get("strong_factor", 1.5)),
        )


@dataclass(frozen=True)
class Decision:
    """One policy verdict, with enough context to audit it later."""

    replan: bool
    tier: int
    rule: str
    imbalance: float
    reason: str
    #: modeled gain (cost saved minus transfer cost) when tier 2 priced
    #: the move; ``None`` for tiers that never consulted the planner
    plan_delta: float | None = None

    @property
    def tier_name(self) -> str:
        return TIER_NAMES[self.tier]

    def to_json(self) -> dict:
        return {
            "replan": self.replan,
            "tier": self.tier,
            "tier_name": self.tier_name,
            "rule": self.rule,
            "imbalance": self.imbalance,
            "reason": self.reason,
            "plan_delta": self.plan_delta,
        }


class PolicyLibrary:
    """An ordered set of rules, consulted cheapest tier first."""

    def __init__(self, rules: Sequence[Rule] | None = None):
        if rules is None:
            rules = self.default_rules()
        self.rules: tuple[Rule, ...] = tuple(rules)
        tiers = [r.tier for r in self.rules]
        if len(set(tiers)) != len(tiers):
            raise ValueError("at most one rule per tier")
        if not any(r.tier == TIER_STATIC for r in self.rules):
            raise ValueError("a policy library needs a tier-0 static rule")

    # -- construction ------------------------------------------------------
    @staticmethod
    def default_rules() -> tuple[Rule, ...]:
        # the tuned defaults BENCH_ADAPT.json is gated on: react within
        # one window of a confirmed trigger (the monitor's EWMA
        # hysteresis already filters transients; demanding a longer
        # streak here just cedes windows to the drift)
        return (
            Rule("hold-static", TIER_STATIC),
            Rule("flip-on-sustained-imbalance", TIER_THRESHOLD,
                 threshold=1.2, windows=1, strong_factor=1.5),
            Rule("price-the-gray-zone", TIER_PLANNER,
                 threshold=1.2, windows=1),
        )

    @classmethod
    def static(cls) -> "PolicyLibrary":
        """A policy that never redistributes (the tier-0-only baseline)."""
        return cls((Rule("hold-static", TIER_STATIC),))

    # -- serialization -----------------------------------------------------
    def to_json(self) -> dict:
        return {
            "schema": POLICY_SCHEMA,
            "rules": [r.to_json() for r in self.rules],
        }

    @classmethod
    def from_json(cls, doc: Mapping | str) -> "PolicyLibrary":
        if isinstance(doc, str):
            doc = json.loads(doc)
        schema = doc.get("schema")
        if schema != POLICY_SCHEMA:
            raise ValueError(
                f"expected schema {POLICY_SCHEMA!r}, got {schema!r}"
            )
        return cls(tuple(Rule.from_json(r) for r in doc["rules"]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PolicyLibrary):
            return NotImplemented
        return self.rules == other.rules

    def __hash__(self) -> int:
        return hash(self.rules)

    def __repr__(self) -> str:
        names = ", ".join(f"{r.tier}:{r.name}" for r in self.rules)
        return f"PolicyLibrary([{names}])"

    # -- the verdict -------------------------------------------------------
    def rule_for(self, tier: int) -> Rule | None:
        for r in self.rules:
            if r.tier == tier:
                return r
        return None

    def decide(
        self,
        monitor: "LoadMonitor",
        pricing: Callable[[], float] | None = None,
    ) -> Decision:
        """Consult the tiers against the monitor's current state.

        ``pricing`` is tier 2's oracle: a zero-argument callable
        returning the modeled gain of redistributing now (cost saved
        over the remaining horizon minus the transfer cost).  Without
        it, a confirmed tier-1 trigger fires directly.
        """
        latest = monitor.latest
        static = self.rule_for(TIER_STATIC)
        assert static is not None  # guaranteed by __init__
        if latest is None:
            return Decision(False, TIER_STATIC, static.name, 1.0,
                            "no observations yet")
        imb = latest.imbalance
        threshold = self.rule_for(TIER_THRESHOLD)
        # tier 0: the detector is quiet, or the policy is static-only
        if threshold is None:
            return Decision(False, TIER_STATIC, static.name, imb,
                            "static-only policy")
        if not latest.drifting:
            reason = (
                "post-replan cooldown" if latest.in_cooldown
                else "drift detector quiet"
            )
            return Decision(False, TIER_STATIC, static.name, imb, reason)
        # tier 1: sustained-threshold rule
        streak = monitor.streak(threshold.threshold)
        if streak < threshold.windows:
            return Decision(
                False, TIER_THRESHOLD, threshold.name, imb,
                f"imbalance streak {streak}/{threshold.windows} windows",
            )
        strong = threshold.threshold * threshold.strong_factor
        planner = self.rule_for(TIER_PLANNER)
        if imb >= strong:
            return Decision(
                True, TIER_THRESHOLD, threshold.name, imb,
                f"strong signal: imbalance {imb:.3f} >= {strong:.3f}",
            )
        if planner is None or pricing is None:
            return Decision(
                True, TIER_THRESHOLD, threshold.name, imb,
                f"sustained imbalance {imb:.3f} for {streak} windows "
                "(no pricing oracle)",
            )
        # tier 2: price the gray zone with the planner's cost engine
        delta = float(pricing())
        if delta > 0.0:
            return Decision(
                True, TIER_PLANNER, planner.name, imb,
                f"modeled gain {delta:.3e}s over remaining horizon",
                plan_delta=delta,
            )
        return Decision(
            False, TIER_PLANNER, planner.name, imb,
            f"modeled gain {delta:.3e}s does not cover the transfer",
            plan_delta=delta,
        )

    # -- registry coverage -------------------------------------------------
    def coverage_report(
        self,
        *,
        machines: Sequence[str] = ("iPSC/860", "Paragon"),
        drifts: Mapping[str, float] | None = None,
        nprocs: int = 4,
        seed: int = 0,
    ) -> dict:
        """Which tier answers, per registered workload × machine × drift.

        Runs a small probe of every supported workload under each cost
        model and drift scenario and records the highest tier that
        fired (tier 0 when the run never redistributed).  Workloads the
        adaptive controller has no driver for are reported as
        unsupported rather than silently skipped — the report covers
        the *whole* registry by construction.
        """
        from ..api.registry import REGISTRY
        from ..machine.cost_model import PRESETS
        from .controller import AdaptiveController, supported_workloads

        if drifts is None:
            drifts = {"none": 0.0, "slow": 0.004, "fast": 0.02}
        supported = supported_workloads()
        entries: list[dict] = []
        for name in REGISTRY.names():
            for machine in machines:
                if machine not in PRESETS:
                    raise ValueError(
                        f"unknown cost model {machine!r} "
                        f"(presets: {sorted(PRESETS)})"
                    )
                for scenario, drift in sorted(drifts.items()):
                    entry = {
                        "workload": name,
                        "machine": machine,
                        "drift_scenario": scenario,
                        "drift": drift,
                        "supported": name in supported,
                    }
                    if name not in supported:
                        entry.update(
                            tier=None, tier_name="unsupported",
                            replans=0, decisions=0,
                        )
                        entries.append(entry)
                        continue
                    controller = AdaptiveController(
                        name,
                        nprocs=nprocs,
                        cost_model=machine,
                        policy=self,
                        seed=seed,
                    )
                    run = controller.probe(drift=drift)
                    fired = [d for d in run.decisions if d.replan]
                    tier = max((d.tier for d in fired), default=TIER_STATIC)
                    entry.update(
                        tier=tier,
                        tier_name=TIER_NAMES[tier],
                        replans=len(fired),
                        decisions=len(run.decisions),
                    )
                    entries.append(entry)
        covered = {(e["workload"], e["machine"]) for e in entries}
        want = {
            (n, m) for n in REGISTRY.names() for m in machines
        }
        return {
            "schema": COVERAGE_SCHEMA,
            "policy": self.to_json(),
            "nprocs": nprocs,
            "seed": seed,
            "workloads": list(REGISTRY.names()),
            "machines": list(machines),
            "drift_scenarios": dict(sorted(drifts.items())),
            "complete": covered == want,
            "entries": entries,
        }


def dump_coverage(report: Mapping, file: str | IO[str]) -> None:
    """Write a coverage report as stable, diff-friendly JSON."""
    if isinstance(file, str):
        with open(file, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    else:
        json.dump(report, file, indent=2, sort_keys=True)


__all__.append("dump_coverage")
