"""Online adaptive redistribution — closing the paper's open loop.

Vienna Fortran's dynamic distributions make redistribution
*expressible*; the planner (PR 1) makes it *schedulable* offline.
This subpackage makes it *adaptive*: a feedback controller that
measures per-processor load window by window while the program runs,
detects drift, and redistributes through the ordinary ``DISTRIBUTE``
path exactly when a tiered policy says the move pays for itself.

- :class:`LoadMonitor` — windowed busy/imbalance signals with an EWMA
  drift detector, hysteresis, and a post-replan cooldown;
- :class:`PolicyLibrary` — versioned (``repro-adapt-policy/1``)
  redistribution rules with tiered fallback: static -> sustained
  threshold -> full planner pricing; plus the registry-wide
  :meth:`~PolicyLibrary.coverage_report`;
- :class:`AdaptiveController` — drives a workload in ``static`` /
  ``balanced`` / ``offline`` / ``adaptive`` modes sharing one RNG
  stream, checkpointing at window boundaries and logging every
  decision to the flight recorder and the ``repro_adapt_*`` metrics;
- :func:`run_adapt_bench` — bench E16: adaptive must beat the best
  static layout *and* the offline plan on drifting load, bitwise
  deterministically (``BENCH_ADAPT.json``, ``repro-bench-adapt/1``).
"""

from .bench import ADAPT_SCHEMA, run_adapt_bench
from .controller import (
    MODES,
    AdaptiveController,
    AdaptiveRun,
    Checkpoint,
    ReplanRecord,
    supported_workloads,
)
from .monitor import LoadMonitor, WindowSample
from .policies import (
    COVERAGE_SCHEMA,
    POLICY_SCHEMA,
    TIER_NAMES,
    Decision,
    PolicyLibrary,
    Rule,
    dump_coverage,
)

__all__ = [
    "LoadMonitor",
    "WindowSample",
    "PolicyLibrary",
    "Rule",
    "Decision",
    "POLICY_SCHEMA",
    "COVERAGE_SCHEMA",
    "TIER_NAMES",
    "dump_coverage",
    "AdaptiveController",
    "AdaptiveRun",
    "Checkpoint",
    "ReplanRecord",
    "MODES",
    "supported_workloads",
    "ADAPT_SCHEMA",
    "run_adapt_bench",
]
