"""The adaptive controller — closing the loop the paper leaves open.

Vienna Fortran makes redistribution *expressible* (``DYNAMIC`` arrays,
run-time ``DISTRIBUTE``); PR 1's planner makes it *schedulable* from a
static cost model.  Neither answers what happens when the load evolves
in ways no offline model predicts — the PIC cluster diffusing apart,
an unstructured mesh's hot spot wandering.  The
:class:`AdaptiveController` answers online: it wraps a workload run,
measures per-processor busy time window by window (clock deltas taken
around each rank's compute call, *before* the equalizing barrier),
feeds a :class:`~repro.adapt.LoadMonitor`, consults a
:class:`~repro.adapt.PolicyLibrary`, and redistributes through the
engine's ordinary ``DISTRIBUTE`` path — the same transfer-plan memos
every other redistribution pays.

Four modes share one driver per workload, so their runs differ *only*
in redistribution decisions (the physical state consumes an identical
RNG stream, making solutions bitwise-equal across modes — the property
the determinism gate leans on):

=========== =============================================================
mode        layout policy
=========== =============================================================
static      BLOCK at declaration, held for the whole run
balanced    B_BLOCK from the load measured at step 0, then held
offline     the planner's precomputed schedule, applied at window
            boundaries (for PIC, :func:`~repro.planner.workloads
            .pic_workload`'s drift-only forecast; for irregular, the
            t=0 balance held fixed — the hot spot is run-time data an
            offline tool cannot see, which is exactly the paper's gap)
adaptive    the feedback loop: monitor -> policy tiers -> DISTRIBUTE
=========== =============================================================

Every window boundary records a :class:`Checkpoint` (step, modeled
time, live block sizes, state digest) — the in-process echo of the
multiprocess backend's op-boundary segment snapshots — and every
policy consultation lands in the decision log, on the flight recorder,
and (when metrics are enabled) in ``repro_adapt_*`` instruments.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..machine.cost_model import PRESETS, CostModel
from ..machine.machine import Machine
from ..machine.topology import ProcessorArray
from ..obs import metrics as _obs
from ..obs.flight import flight_recorder as _flight
from ..obs.tracing import span as _span
from .monitor import LoadMonitor, WindowSample
from .policies import Decision, PolicyLibrary, TIER_NAMES

__all__ = [
    "MODES",
    "Checkpoint",
    "ReplanRecord",
    "AdaptiveRun",
    "AdaptiveController",
    "supported_workloads",
]

MODES = ("static", "balanced", "offline", "adaptive")

_REPLANS = _obs.counter(
    "repro_adapt_replans_total",
    "Online redistributions the adaptive controller committed, "
    "by workload and policy tier.",
    ("workload", "tier"),
)
_DECISIONS = _obs.counter(
    "repro_adapt_decisions_total",
    "Policy consultations at window boundaries, by workload and verdict.",
    ("workload", "verdict"),
)
_DRIFT = _obs.gauge(
    "repro_adapt_drift",
    "EWMA-smoothed load imbalance the monitor last observed, by workload.",
    ("workload",),
)


@dataclass(frozen=True)
class Checkpoint:
    """Phase-boundary snapshot of the run's restorable state.

    The in-process analogue of the multiprocess backend's op-boundary
    segment snapshots: enough to audit (and in a fault-tolerant
    deployment, restore) the run at a window boundary — the step
    reached, the modeled clock, the live block sizes, and a digest of
    the physical state.
    """

    window: int
    step: int
    time: float
    sizes: tuple[int, ...]
    state_digest: str

    def to_json(self) -> dict:
        return {
            "window": self.window,
            "step": self.step,
            "time": self.time,
            "sizes": list(self.sizes),
            "state_digest": self.state_digest,
        }


@dataclass(frozen=True)
class ReplanRecord:
    """One committed redistribution, with the decision that caused it."""

    window: int
    step: int
    tier: int
    rule: str
    imbalance: float
    reason: str
    plan_delta: float | None
    old_sizes: tuple[int, ...]
    new_sizes: tuple[int, ...]
    transfer_bytes: int
    time: float

    def to_json(self) -> dict:
        return {
            "window": self.window,
            "step": self.step,
            "tier": self.tier,
            "tier_name": TIER_NAMES[self.tier],
            "rule": self.rule,
            "imbalance": self.imbalance,
            "reason": self.reason,
            "plan_delta": self.plan_delta,
            "old_sizes": list(self.old_sizes),
            "new_sizes": list(self.new_sizes),
            "transfer_bytes": self.transfer_bytes,
            "time": self.time,
        }


@dataclass
class AdaptiveRun:
    """One driven run: what happened, measured and decided."""

    workload: str
    mode: str
    nprocs: int
    window: int
    steps: int
    seed: int
    cost_model: str
    params: dict
    makespan: float
    messages: int
    bytes: int
    solution: np.ndarray
    samples: list[WindowSample] = field(default_factory=list)
    decisions: list[Decision] = field(default_factory=list)
    replans: list[ReplanRecord] = field(default_factory=list)
    checkpoints: list[Checkpoint] = field(default_factory=list)

    def solution_digest(self) -> str:
        h = hashlib.sha256()
        h.update(str(self.solution.shape).encode())
        h.update(str(self.solution.dtype).encode())
        h.update(np.ascontiguousarray(self.solution).tobytes())
        return h.hexdigest()

    def decision_log(self) -> list[dict]:
        """The replan decisions in canonical JSON form — the payload
        the determinism gate compares across repeated runs."""
        return [d.to_json() for d in self.decisions]

    def decision_digest(self) -> str:
        payload = json.dumps(
            {
                "decisions": self.decision_log(),
                "replans": [r.to_json() for r in self.replans],
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    @property
    def mean_imbalance(self) -> float:
        if not self.samples:
            return 1.0
        return float(np.mean([s.imbalance for s in self.samples]))

    def to_json(self) -> dict:
        return {
            "workload": self.workload,
            "mode": self.mode,
            "nprocs": self.nprocs,
            "window": self.window,
            "steps": self.steps,
            "seed": self.seed,
            "cost_model": self.cost_model,
            "params": dict(self.params),
            "makespan": self.makespan,
            "messages": self.messages,
            "bytes": self.bytes,
            "mean_imbalance": self.mean_imbalance,
            "solution_digest": self.solution_digest(),
            "decision_digest": self.decision_digest(),
            "samples": [s.to_json() for s in self.samples],
            "decisions": self.decision_log(),
            "replans": [r.to_json() for r in self.replans],
            "checkpoints": [c.to_json() for c in self.checkpoints],
        }


def _digest_state(*arrays: np.ndarray) -> str:
    h = hashlib.sha256()
    for a in arrays:
        h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()


def _even_sizes(n: int, p: int) -> list[int]:
    from ..core.dimdist import Block

    return [int(c) for c in np.bincount(Block().owners_vec(n, p), minlength=p)]


class _WindowLoop:
    """Shared per-window bookkeeping: measure -> monitor -> policy ->
    (maybe) redistribute -> checkpoint.  The workload drivers feed it
    busy vectors and callables; it owns the records."""

    def __init__(
        self,
        run: AdaptiveRun,
        machine: Machine,
        monitor: LoadMonitor,
        policy: PolicyLibrary,
        mode: str,
        offline_schedule: Sequence[Sequence[int]] | None = None,
    ):
        self.run = run
        self.machine = machine
        self.monitor = monitor
        self.policy = policy
        self.mode = mode
        self.offline_schedule = offline_schedule
        self.windows_seen = 0

    def boundary(
        self,
        step: int,
        busy: Sequence[float],
        current_sizes: Sequence[int],
        pricing: Callable[[], float] | None,
        redistribute: Callable[[Sequence[int]], int],
        propose: Callable[[], list[int]],
        state: np.ndarray,
    ) -> list[int]:
        """One window boundary; returns the (possibly new) sizes."""
        w = self.windows_seen
        self.windows_seen += 1
        run = self.run
        sample = self.monitor.observe(busy)
        if _obs.enabled():
            _DRIFT.set(self.monitor.ewma, workload=run.workload)
        sizes = [int(s) for s in current_sizes]
        if self.mode == "adaptive":
            with _span("adapt.decide", workload=run.workload, window=w):
                decision = self.policy.decide(self.monitor, pricing=pricing)
            run.decisions.append(decision)
            if _obs.enabled():
                _DECISIONS.inc(
                    workload=run.workload,
                    verdict="replan" if decision.replan else "hold",
                )
            _flight.note(
                "adapt.decision",
                workload=run.workload,
                window=w,
                step=step,
                tier=decision.tier_name,
                replan=decision.replan,
                imbalance=round(decision.imbalance, 4),
                reason=decision.reason,
            )
            if decision.replan:
                new_sizes = [int(s) for s in propose()]
                with _span("adapt.replan", workload=run.workload, window=w):
                    moved = int(redistribute(new_sizes))
                self.monitor.notify_replanned()
                record = ReplanRecord(
                    window=w,
                    step=step,
                    tier=decision.tier,
                    rule=decision.rule,
                    imbalance=decision.imbalance,
                    reason=decision.reason,
                    plan_delta=decision.plan_delta,
                    old_sizes=tuple(sizes),
                    new_sizes=tuple(new_sizes),
                    transfer_bytes=moved,
                    time=self.machine.time,
                )
                run.replans.append(record)
                if _obs.enabled():
                    _REPLANS.inc(
                        workload=run.workload, tier=decision.tier_name
                    )
                _flight.note(
                    "adapt.replan",
                    workload=run.workload,
                    window=w,
                    step=step,
                    tier=decision.tier_name,
                    imbalance=round(decision.imbalance, 4),
                    plan_delta=decision.plan_delta,
                    sizes_delta=[
                        int(b - a) for a, b in zip(sizes, new_sizes)
                    ],
                    transfer_bytes=moved,
                )
                sizes = new_sizes
        elif self.mode == "offline" and self.offline_schedule is not None:
            nxt = w + 1
            if nxt < len(self.offline_schedule):
                planned = [int(s) for s in self.offline_schedule[nxt]]
                if planned != sizes:
                    redistribute(planned)
                    sizes = planned
        run.samples.append(sample)
        run.checkpoints.append(
            Checkpoint(
                window=w,
                step=step,
                time=self.machine.time,
                sizes=tuple(sizes),
                state_digest=_digest_state(state),
            )
        )
        return sizes


# -- PIC driver --------------------------------------------------------------

PIC_DEFAULTS: dict = {
    "ncell": 96,
    "npart": 6000,
    "steps": 60,
    "window": 6,
    "drift": 0.008,
    "diffusion": 0.01,
    "cluster_width": 0.06,
    "flops_per_particle": 20.0,
    "particle_bytes": 32,
}

PIC_PROBE: dict = {"ncell": 32, "npart": 512, "steps": 12, "window": 4}


def _pic_offline_schedule(
    params: Mapping, nprocs: int, cost_model: CostModel, seed: int
) -> list[list[int]]:
    """The planner's precomputed per-window block sizes for PIC.

    :func:`~repro.planner.workloads.pic_workload` forecasts the load
    from pure drift of the initial positions (``reflected_position``);
    with ``rebalance_every`` set to the controller's window the plan's
    phases line up one-to-one with the online windows.  Non-contiguous
    layouts (the planner's lattice can in principle pick CYCLIC) fall
    back to even blocks — the drivers redistribute by contiguous
    sizes, the shape every B_BLOCK layout has.
    """
    from ..core.dimdist import GenBlock
    from ..planner.costs import CostEngine
    from ..planner.workloads import _plan_workload, pic_workload

    ncell, nprocs_ = int(params["ncell"]), int(nprocs)
    workload = pic_workload(
        ncell=ncell,
        npart=int(params["npart"]),
        steps=int(params["steps"]),
        nprocs=nprocs_,
        rebalance_every=int(params["window"]),
        drift=float(params["drift"]),
        cluster_width=float(params["cluster_width"]),
        flops_per_particle=float(params["flops_per_particle"]),
        particle_bytes=int(params["particle_bytes"]),
        cost_model=cost_model,
        seed=seed,
    )
    plan = _plan_workload(workload, cost_engine=CostEngine(workload.machine))
    schedule: list[list[int]] = []
    for step in plan.steps:
        dd = step.dist.dtype.dims[0]
        if isinstance(dd, GenBlock):
            schedule.append([int(s) for s in dd.sizes])
        else:
            schedule.append(_even_sizes(ncell, nprocs_))
    return schedule


def _drive_pic(
    mode: str,
    nprocs: int,
    cost_model: CostModel,
    seed: int,
    params: Mapping,
    policy: PolicyLibrary,
    monitor_kwargs: Mapping,
) -> AdaptiveRun:
    """The Figure 2 PIC loop under controller-owned redistribution.

    Built from the same primitives as :func:`repro.apps.pic._run_pic`
    (counts -> owner-computes field work -> particle motion ->
    cross-processor reassignment), but layout changes are decided at
    window boundaries by the mode, not hard-wired.  The particle state
    consumes one RNG stream that no mode branches on, so the final
    positions — the solution — are bitwise-identical across modes.
    """
    from ..apps.load_balance import balance_greedy
    from ..apps.pic import _cell_of, _field_dist
    from ..planner.costs import CostEngine
    from ..planner.phases import ArrayLoad
    from ..runtime.engine import Engine

    ncell = int(params["ncell"])
    npart = int(params["npart"])
    steps = int(params["steps"])
    window = int(params["window"])
    drift = float(params["drift"])
    diffusion = float(params["diffusion"])
    cluster_width = float(params["cluster_width"])
    flops_per_particle = float(params["flops_per_particle"])
    particle_bytes = int(params["particle_bytes"])

    machine = Machine(ProcessorArray("P", (nprocs,)), cost_model=cost_model)
    engine = Engine._create(machine)
    machine.reset_network()
    nfield = 4
    fld = engine.declare(
        "FIELD", (ncell, nfield), dist=_field_dist(None, ncell, nprocs),
        dynamic=True,
    )
    sizes = _even_sizes(ncell, nprocs)

    rng = np.random.default_rng(seed)
    pos = np.clip(
        rng.normal(0.2, cluster_width, size=npart),
        0.0,
        np.nextafter(1.0, 0.0),
    )
    vel = np.full(npart, drift)

    def counts() -> np.ndarray:
        return np.bincount(_cell_of(pos, ncell), minlength=ncell)

    def redistribute(new_sizes: Sequence[int]) -> int:
        b0 = machine.stats().bytes
        engine.distribute(
            "FIELD", _field_dist([int(s) for s in new_sizes], ncell, nprocs)
        )
        return machine.stats().bytes - b0

    offline_schedule = None
    if mode == "offline":
        offline_schedule = _pic_offline_schedule(
            params, nprocs, cost_model, seed
        )
    if mode in ("balanced", "adaptive"):
        start_sizes = [int(s) for s in balance_greedy(counts(), nprocs)]
    elif mode == "offline":
        start_sizes = (
            offline_schedule[0] if offline_schedule else list(sizes)
        )
    else:  # static
        start_sizes = list(sizes)
    if start_sizes != sizes:
        redistribute(start_sizes)
        sizes = start_sizes

    cost_engine = CostEngine(
        machine, itemsize=fld.itemsize, plan_cache=engine.plan_cache
    )
    monitor = LoadMonitor(nprocs, **dict(monitor_kwargs))
    run = AdaptiveRun(
        workload="pic", mode=mode, nprocs=nprocs, window=window,
        steps=steps, seed=seed, cost_model=cost_model.name,
        params=dict(params), makespan=0.0, messages=0, bytes=0,
        solution=pos,
    )
    loop = _WindowLoop(run, machine, monitor, policy, mode, offline_schedule)

    busy_acc = np.zeros(nprocs)
    for k in range(1, steps + 1):
        owners = np.repeat(np.arange(nprocs), sizes)
        w = counts()

        # owner-computes field update; busy measured per rank *before*
        # the barrier equalizes the clocks
        loads = np.bincount(owners, weights=w, minlength=nprocs)
        clocks = machine.network.clocks
        for rank in range(nprocs):
            c0 = clocks[rank]
            machine.network.compute(
                rank, flops_per_particle * float(loads[rank]),
                tag="pic:update_field",
            )
            busy_acc[rank] += machine.network.clocks[rank] - c0
        machine.network.synchronize()

        # particle motion: one RNG stream, no mode-dependent branch
        old_cells = _cell_of(pos, ncell)
        pos = pos + vel + rng.normal(0.0, diffusion, size=npart)
        pos = np.abs(pos)
        over = pos >= 1.0
        pos[over] = 2.0 - pos[over]
        pos = np.clip(pos, 0.0, np.nextafter(1.0, 0.0))
        vel[over] = -vel[over]
        new_cells = _cell_of(pos, ncell)

        moved = old_cells != new_cells
        src = owners[old_cells[moved]]
        dst = owners[new_cells[moved]]
        cross = src != dst
        if cross.any():
            pair = src[cross] * nprocs + dst[cross]
            cnt = np.bincount(pair, minlength=nprocs * nprocs).reshape(
                nprocs, nprocs
            )
            machine.network.exchange(
                [
                    (int(s), int(d), int(cnt[s, d]) * particle_bytes,
                     "pic:reassign")
                    for s, d in zip(*np.nonzero(cnt))
                ]
            )
            machine.network.synchronize()

        if k % window == 0:
            w = counts()

            def pricing() -> float:
                cand_sizes = balance_greedy(w, nprocs)
                cand = _field_dist(
                    [int(s) for s in cand_sizes], ncell, nprocs
                ).apply((ncell, nfield), machine.full_section())
                load = ArrayLoad(
                    "FIELD", 0, tuple(float(c) for c in w),
                    flops_per_unit=flops_per_particle,
                )
                horizon = min(window, steps - k)
                gain = (
                    cost_engine.load_cost(load, fld.dist)
                    - cost_engine.load_cost(load, cand)
                ) * horizon
                return gain - cost_engine.transition_cost(fld.dist, cand)

            sizes = loop.boundary(
                step=k,
                busy=busy_acc,
                current_sizes=sizes,
                pricing=pricing,
                redistribute=redistribute,
                propose=lambda: [int(s) for s in balance_greedy(w, nprocs)],
                state=pos,
            )
            busy_acc = np.zeros(nprocs)

    stats = machine.stats()
    run.makespan = machine.time
    run.messages = stats.messages
    run.bytes = stats.bytes
    run.solution = pos
    return run


# -- irregular driver --------------------------------------------------------

IRREGULAR_DEFAULTS: dict = {
    "n": 192,
    "sweeps": 48,
    "window": 6,
    "drift": 0.02,
    "kind": "geometric",
    "amp": 6.0,
    "width": 0.06,
    "value_bytes": 8,
    #: modeled flops per unit of node weight — a heavier-than-Jacobi
    #: per-node kernel (the regime where load balance, not the cut,
    #: dominates; at the relaxation's historical 4 flops/node the cut
    #: traffic drowns any compute rebalancing)
    "flops_per_node": 2000.0,
}

IRREGULAR_PROBE: dict = {"n": 48, "sweeps": 12, "window": 4}


def _drive_irregular(
    mode: str,
    nprocs: int,
    cost_model: CostModel,
    seed: int,
    params: Mapping,
    policy: PolicyLibrary,
    monitor_kwargs: Mapping,
) -> AdaptiveRun:
    """Jacobi relaxation on an unstructured mesh with a wandering
    compute hot spot (:func:`repro.apps.irregular.drifting_weights`).

    Node ids are GenBlock-distributed; per-sweep compute is the summed
    weight of the owned nodes, communication the cut edges between
    owner blocks.  The offline arm is the t=0 balance held fixed: the
    hot spot's trajectory is run-time data, precisely the thing the
    paper's offline tooling cannot see.  The Jacobi arithmetic is one
    global vectorized update, independent of ownership, so the
    solution is bitwise-identical across modes.
    """
    from ..apps.irregular import drifting_weights, make_mesh
    from ..apps.load_balance import balance_greedy
    from ..core.dimdist import GenBlock
    from ..core.distribution import DistributionType
    from ..planner.costs import CostEngine
    from ..planner.phases import ArrayLoad
    from ..runtime.engine import Engine

    n = int(params["n"])
    sweeps = int(params["sweeps"])
    window = int(params["window"])
    drift = float(params["drift"])
    kind = str(params["kind"])
    amp = float(params["amp"])
    width = float(params["width"])
    value_bytes = int(params["value_bytes"])
    flops_per_node = float(params["flops_per_node"])

    machine = Machine(ProcessorArray("P", (nprocs,)), cost_model=cost_model)
    engine = Engine._create(machine)
    machine.reset_network()

    rng = np.random.default_rng(seed)
    graph = make_mesh(n, seed=seed, kind=kind, rng=rng)
    values = rng.standard_normal(n)
    edges = np.array(graph.edges, dtype=np.int64).reshape(-1, 2)
    deg = np.bincount(
        np.concatenate([edges[:, 0], edges[:, 1]]), minlength=n
    ).astype(np.float64)

    def node_weights(sweep: int) -> np.ndarray:
        return drifting_weights(n, sweep, drift, amp=amp, width=width)

    sizes = _even_sizes(n, nprocs)
    arr = engine.declare(
        "V", (n,), dist=DistributionType((GenBlock(sizes),)), dynamic=True
    )

    def redistribute(new_sizes: Sequence[int]) -> int:
        b0 = machine.stats().bytes
        engine.distribute(
            "V", DistributionType((GenBlock([int(s) for s in new_sizes]),))
        )
        return machine.stats().bytes - b0

    if mode in ("balanced", "adaptive", "offline"):
        start_sizes = [int(s) for s in balance_greedy(node_weights(0), nprocs)]
        if start_sizes != sizes:
            redistribute(start_sizes)
            sizes = start_sizes

    cost_engine = CostEngine(
        machine, itemsize=arr.itemsize, plan_cache=engine.plan_cache
    )
    monitor = LoadMonitor(nprocs, **dict(monitor_kwargs))
    run = AdaptiveRun(
        workload="irregular", mode=mode, nprocs=nprocs, window=window,
        steps=sweeps, seed=seed, cost_model=cost_model.name,
        params=dict(params), makespan=0.0, messages=0, bytes=0,
        solution=values,
    )
    loop = _WindowLoop(run, machine, monitor, policy, mode, None)

    busy_acc = np.zeros(nprocs)
    for sweep in range(sweeps):
        owners = np.repeat(np.arange(nprocs), sizes)
        weights = node_weights(sweep)

        # owner-computes Jacobi work, weighted by the hot spot
        per_rank = np.bincount(owners, weights=weights, minlength=nprocs)
        clocks = machine.network.clocks
        for rank in range(nprocs):
            c0 = clocks[rank]
            machine.network.compute(
                rank, flops_per_node * float(per_rank[rank]), tag="relax:V"
            )
            busy_acc[rank] += machine.network.clocks[rank] - c0

        # cut edges: each crossing edge ships one value each way
        if len(edges):
            eu, ev = owners[edges[:, 0]], owners[edges[:, 1]]
            cross = eu != ev
            if cross.any():
                pair = np.concatenate(
                    [eu[cross] * nprocs + ev[cross],
                     ev[cross] * nprocs + eu[cross]]
                )
                cnt = np.bincount(pair, minlength=nprocs * nprocs).reshape(
                    nprocs, nprocs
                )
                machine.network.exchange(
                    [
                        (int(s), int(d), int(cnt[s, d]) * value_bytes,
                         "relax:gather")
                        for s, d in zip(*np.nonzero(cnt))
                    ]
                )
        machine.network.synchronize()

        # the global Jacobi update — ownership never enters
        nbrsum = np.bincount(
            edges[:, 0], weights=values[edges[:, 1]], minlength=n
        ) + np.bincount(
            edges[:, 1], weights=values[edges[:, 0]], minlength=n
        )
        values = np.where(
            deg > 0, 0.5 * values + 0.5 * nbrsum / np.maximum(deg, 1.0),
            values,
        )

        k = sweep + 1
        if k % window == 0:
            w_now = node_weights(sweep)

            def pricing() -> float:
                cand_sizes = balance_greedy(w_now, nprocs)
                cand = DistributionType(
                    (GenBlock([int(s) for s in cand_sizes]),)
                ).apply((n,), machine.full_section())
                load = ArrayLoad(
                    "V", 0, tuple(float(x) for x in w_now),
                    flops_per_unit=flops_per_node,
                )
                horizon = min(window, sweeps - k)
                gain = (
                    cost_engine.load_cost(load, arr.dist)
                    - cost_engine.load_cost(load, cand)
                ) * horizon
                return gain - cost_engine.transition_cost(arr.dist, cand)

            sizes = loop.boundary(
                step=k,
                busy=busy_acc,
                current_sizes=sizes,
                pricing=pricing,
                redistribute=redistribute,
                propose=lambda: [
                    int(s) for s in balance_greedy(w_now, nprocs)
                ],
                state=values,
            )
            busy_acc = np.zeros(nprocs)

    stats = machine.stats()
    run.makespan = machine.time
    run.messages = stats.messages
    run.bytes = stats.bytes
    run.solution = values
    return run


# -- the controller ----------------------------------------------------------

_DRIVERS: dict[str, Callable] = {"pic": _drive_pic}
_DEFAULTS: dict[str, dict] = {"pic": PIC_DEFAULTS}
_PROBES: dict[str, dict] = {"pic": PIC_PROBE}

try:  # networkx-gated, like the workload registration
    import networkx  # noqa: F401

    _DRIVERS["irregular"] = _drive_irregular
    _DEFAULTS["irregular"] = IRREGULAR_DEFAULTS
    _PROBES["irregular"] = IRREGULAR_PROBE
except ImportError:  # pragma: no cover - exercised only without networkx
    pass


def supported_workloads() -> tuple[str, ...]:
    """Workloads the adaptive controller has a driver for."""
    return tuple(sorted(_DRIVERS))


class AdaptiveController:
    """Online feedback control of one workload's data distribution.

    ``controller = AdaptiveController("pic"); run = controller.run()``
    drives the workload in ``"adaptive"`` mode; ``run(mode=...)``
    selects the baselines the bench compares against.  All modes share
    the driver, the seed, and the RNG stream, so only redistribution
    decisions differ between them.
    """

    def __init__(
        self,
        workload: str,
        *,
        nprocs: int = 4,
        cost_model: CostModel | str = "Paragon",
        window: int | None = None,
        policy: PolicyLibrary | None = None,
        seed: int = 0,
        params: Mapping | None = None,
        monitor: Mapping | None = None,
    ):
        if workload not in _DRIVERS:
            raise ValueError(
                f"workload {workload!r} has no adaptive driver "
                f"(supported: {list(supported_workloads())})"
            )
        if isinstance(cost_model, str):
            if cost_model not in PRESETS:
                raise ValueError(
                    f"unknown cost model {cost_model!r} "
                    f"(presets: {sorted(PRESETS)})"
                )
            cost_model = PRESETS[cost_model]
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.workload = workload
        self.nprocs = int(nprocs)
        self.cost_model = cost_model
        self.policy = policy if policy is not None else PolicyLibrary()
        self.seed = int(seed)
        self.monitor_kwargs = dict(monitor or {})
        self.params = dict(_DEFAULTS[workload])
        unknown = sorted(set(params or ()) - set(self.params))
        if unknown:
            raise TypeError(
                f"adaptive driver for {workload!r} got unknown "
                f"parameter(s) {unknown} (accepted: {sorted(self.params)})"
            )
        self.params.update(params or {})
        if window is not None:
            self.params["window"] = int(window)
        if int(self.params["window"]) < 1:
            raise ValueError(
                f"window must be >= 1, got {self.params['window']}"
            )

    def run(self, mode: str = "adaptive", **overrides) -> AdaptiveRun:
        """Drive the workload once under ``mode``; see :data:`MODES`."""
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        params = dict(self.params)
        unknown = sorted(set(overrides) - set(params))
        if unknown:
            raise TypeError(
                f"adaptive driver for {self.workload!r} got unknown "
                f"parameter(s) {unknown} (accepted: {sorted(params)})"
            )
        params.update(overrides)
        with _span(
            "adapt.run", workload=self.workload, mode=mode,
            window=int(params["window"]),
        ):
            return _DRIVERS[self.workload](
                mode,
                self.nprocs,
                self.cost_model,
                self.seed,
                params,
                self.policy,
                self.monitor_kwargs,
            )

    def probe(self, drift: float | None = None) -> AdaptiveRun:
        """A small, fast adaptive run (coverage sweeps and smoke tests)."""
        overrides = dict(_PROBES[self.workload])
        if drift is not None:
            overrides["drift"] = float(drift)
        return self.run("adaptive", **overrides)
