"""Package-wide defaults shared across layers.

This module sits below everything else (it imports nothing from the
package) so both the application workloads and the :mod:`repro.api`
facade can agree on one default without creating an import cycle.
"""

__all__ = ["DEFAULT_SEED"]

#: The one default RNG seed every workload entry point shares.  A
#: workload run with no explicit ``seed`` is deterministic and equal
#: across entry points (legacy shims, ``Session`` handles, the CLI).
DEFAULT_SEED = 0
