"""The Vienna Fortran Engine (VFE) — run-time support (paper §3.2).

Distributed arrays with global addressing, access functions and
translation tables, overlap areas, section/element communication
routines, the DISTRIBUTE redistribution algorithm, a PARTI-style
inspector/executor, and the :class:`Engine` facade tying them to a
simulated machine.
"""

from .batched import BatchedReadAccessor, forall_batched
from .communication import broadcast_from, gather_to, reduce_scalar, shift_exchange
from .darray import DistributedArray
from .engine import Engine
from .forall import ReadAccessor, forall, forall_gathered
from .inspector import CommSchedule, Inspector
from .overlap import OverlapManager
from .redistribute import (
    PlanCache,
    RedistributionReport,
    communicate,
    default_plan_cache,
    transfer_matrix,
    transfer_matrix_bruteforce,
    transfer_matrix_naive,
)
from .translation import DimTranslationTable, TranslationTable

__all__ = [
    "DistributedArray",
    "Engine",
    "forall",
    "forall_gathered",
    "forall_batched",
    "ReadAccessor",
    "BatchedReadAccessor",
    "Inspector",
    "CommSchedule",
    "OverlapManager",
    "RedistributionReport",
    "PlanCache",
    "communicate",
    "default_plan_cache",
    "transfer_matrix",
    "transfer_matrix_naive",
    "transfer_matrix_bruteforce",
    "TranslationTable",
    "DimTranslationTable",
    "shift_exchange",
    "gather_to",
    "broadcast_from",
    "reduce_scalar",
]
