"""The Vienna Fortran Engine (VFE) — run-time support (paper §3.2).

Distributed arrays with global addressing, access functions and
translation tables, overlap areas, section/element communication
routines, the DISTRIBUTE redistribution algorithm, a PARTI-style
inspector/executor, and the :class:`Engine` facade tying them to a
simulated machine.
"""

from .communication import broadcast_from, gather_to, reduce_scalar, shift_exchange
from .darray import DistributedArray
from .engine import Engine
from .forall import ReadAccessor, forall, forall_gathered
from .inspector import CommSchedule, Inspector
from .overlap import OverlapManager
from .redistribute import (
    PlanCache,
    RedistributionReport,
    communicate,
    transfer_matrix,
    transfer_matrix_naive,
)
from .translation import DimTranslationTable, TranslationTable

__all__ = [
    "DistributedArray",
    "Engine",
    "forall",
    "forall_gathered",
    "ReadAccessor",
    "Inspector",
    "CommSchedule",
    "OverlapManager",
    "RedistributionReport",
    "PlanCache",
    "communicate",
    "transfer_matrix",
    "transfer_matrix_naive",
    "TranslationTable",
    "DimTranslationTable",
    "shift_exchange",
    "gather_to",
    "broadcast_from",
    "reduce_scalar",
]
