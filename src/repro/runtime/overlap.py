"""Overlap (ghost) areas (paper §3.1, §3.2.1).

The compiler "generates code to create and maintain data structures
describing the distributions and other attributes of arrays, such as
the associated overlap areas".  An overlap area widens each local
segment by a halo of remote elements so a stencil sweep can run on
purely local data after one boundary exchange per step.

:class:`OverlapManager` allocates the padded buffers in each
processor's local memory (kind ``"overlap"`` — the storage shows up in
the memory accounting), fills the interior from the distributed array,
and refreshes halos with :func:`~repro.runtime.communication.shift_exchange`.
Only contiguous (BLOCK-family) distributions carry overlap areas,
matching the paper's ``segment`` descriptor applicability.
"""

from __future__ import annotations

import numpy as np

from .communication import shift_exchange
from .darray import DistributedArray

__all__ = ["OverlapManager"]


class OverlapManager:
    """Halo management for one distributed array.

    Parameters
    ----------
    array:
        The distributed array (BLOCK-family distribution required).
    widths:
        Halo width per dimension (0 = no halo along that dimension).
    boundary:
        Value used outside the global domain (Dirichlet pad).
    """

    def __init__(
        self,
        array: DistributedArray,
        widths: tuple[int, ...],
        boundary: float = 0.0,
        plan_cache=None,
    ):
        self.plan_cache = plan_cache  # None: the shared default cache
        if len(widths) != array.ndim:
            raise ValueError(f"need one width per dimension ({array.ndim})")
        if any(w < 0 for w in widths):
            raise ValueError("halo widths must be non-negative")
        self.array = array
        self.widths = tuple(int(w) for w in widths)
        self.boundary = float(boundary)
        self._version = array.version
        for rank in array.owning_ranks():
            if array.dist.segment(rank) is None:
                raise ValueError(
                    f"{array.name!r} is not contiguously distributed on "
                    f"processor {rank}; overlap areas require BLOCK-family "
                    f"distributions"
                )
        self._allocate()

    def _buf_name(self) -> str:
        return f"overlap:{self.array.name}"

    def _allocate(self) -> None:
        for rank in self.array.owning_ranks():
            local = self.array.local(rank)
            padded_shape = tuple(
                s + 2 * w for s, w in zip(local.shape, self.widths)
            )
            self.array.machine.memory(rank).allocate(
                self._buf_name(),
                padded_shape,
                self.array.np_dtype,
                kind="overlap",
                fill=self.boundary,
            )
        self._version = self.array.version

    def invalidated(self) -> bool:
        """True if the array was redistributed since allocation."""
        return self.array.version != self._version

    def refresh(self) -> None:
        """Re-allocate after a redistribution."""
        self._allocate()

    # -- access ----------------------------------------------------------
    def padded(self, rank: int) -> np.ndarray:
        """The halo-padded local buffer of ``rank``."""
        return self.array.machine.memory(rank)[self._buf_name()]

    def interior(self, rank: int) -> np.ndarray:
        """View of the owned region inside the padded buffer."""
        pad = self.padded(rank)
        sl = tuple(
            slice(w, pad.shape[d] - w) for d, w in enumerate(self.widths)
        )
        return pad[sl]

    # -- exchange ------------------------------------------------------------
    def load_interior(self) -> None:
        """Copy current array values into each padded buffer's interior."""
        if self.invalidated():
            self.refresh()
        for rank in self.array.owning_ranks():
            self.interior(rank)[...] = self.array.local(rank)

    def store_interior(self) -> None:
        """Copy each padded buffer's interior back into the array."""
        for rank in self.array.owning_ranks():
            self.array.local(rank)[...] = self.interior(rank)

    def exchange(self) -> int:
        """One halo refresh: boundary exchange along every haloed dim.

        Returns the number of messages sent.  This is the per-step
        communication of the paper's smoothing example.
        """
        if self.invalidated():
            raise RuntimeError(
                f"overlap area of {self.array.name!r} is stale after a "
                f"redistribution; call refresh()/load_interior() first"
            )
        net = self.array.machine.network
        before = net.stats().messages
        for dim, w in enumerate(self.widths):
            if w == 0:
                continue
            recv = shift_exchange(
                self.array, dim, width=w, plan_cache=self.plan_cache
            )
            for rank, slabs in recv.items():
                pad = self.padded(rank)
                n_own = self.array.local(rank).shape[dim]
                idx_all = [slice(w2, pad.shape[d] - w2) for d, w2 in enumerate(self.widths)]
                if "lo" in slabs:
                    sl = list(idx_all)
                    sl[dim] = slice(0, w)
                    pad[tuple(sl)] = slabs["lo"]
                if "hi" in slabs:
                    sl = list(idx_all)
                    sl[dim] = slice(w + n_own, 2 * w + n_own)
                    pad[tuple(sl)] = slabs["hi"]
        return net.stats().messages - before
