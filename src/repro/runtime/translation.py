"""Translation tables for irregular distributions (paper §3.2.1).

"For certain complex distributions, a pointer to a translation table
is required."  In PARTI-style run-time systems the translation table
maps a global index to its (owner, local offset) pair; regular
distributions compute this closed-form, but indirect/general-block
distributions need the table.

We build the table per *dimension* (distributions factor per
dimension) and compose lookups.  The table is replicated here — each
simulated processor would hold a copy; the distributed-table variant
of PARTI (pages of the table spread across processors, lookups costing
a message) is modeled by :meth:`DimTranslationTable.lookup_cost`.
"""

from __future__ import annotations

import numpy as np

from ..core.dimdist import DimDist
from ..core.distribution import Distribution

__all__ = ["DimTranslationTable", "TranslationTable"]


class DimTranslationTable:
    """Owner and local-offset maps along one array dimension."""

    def __init__(self, dimdist: DimDist, extent: int, slots: int):
        self.extent = int(extent)
        self.slots = int(slots)
        #: owner slot of each global index (primary owner)
        self.owner = dimdist.owners_vec(self.extent, self.slots).copy()
        #: local offset of each global index within its owner's segment
        self.offset = np.empty(self.extent, dtype=np.int64)
        for s in range(self.slots):
            idx = dimdist.indices_of(s, self.extent, self.slots)
            self.offset[idx] = np.arange(len(idx), dtype=np.int64)
        self.owner.setflags(write=False)
        self.offset.setflags(write=False)

    def lookup(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized (owner_slot, local_offset) for global indices."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.extent):
            raise IndexError("translation lookup out of range")
        return self.owner[indices], self.offset[indices]

    def lookup_cost(self, nqueries: int, page_size: int = 1024) -> int:
        """Messages a *distributed* table variant would need.

        With the table paged across processors (page ``i`` on processor
        ``i % slots``), each off-processor page touched costs one
        request/response exchange; we return the page count as a
        conservative message estimate (PARTI's dereference step).
        """
        if nqueries <= 0:
            return 0
        pages = -(-self.extent // page_size)
        return min(int(nqueries), pages)

    @property
    def nbytes(self) -> int:
        return self.owner.nbytes + self.offset.nbytes


class TranslationTable:
    """Full-array translation table: one per-dimension table composed.

    ``lookup`` maps an ``(n, ndim)`` batch of global indices to owner
    *slot tuples* and per-dimension local offsets.  The distribution's
    section then converts slot tuples to parent ranks.
    """

    def __init__(self, dist: Distribution):
        self.dist = dist
        self.dim_tables = [
            DimTranslationTable(dd, dist.shape[d], dist._slots(d))
            for d, dd in enumerate(dist.dtype.dims)
        ]

    def lookup(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(owners, offsets): each of shape ``(n, ndim)``.

        ``owners[i]`` is the per-dimension slot tuple of query ``i``;
        ``offsets[i]`` its per-dimension local offsets.
        """
        indices = np.atleast_2d(np.asarray(indices, dtype=np.int64))
        if indices.shape[1] != self.dist.ndim:
            raise ValueError(
                f"queries have {indices.shape[1]} dims, array has {self.dist.ndim}"
            )
        owners = np.empty_like(indices)
        offsets = np.empty_like(indices)
        for d, table in enumerate(self.dim_tables):
            owners[:, d], offsets[:, d] = table.lookup(indices[:, d])
        return owners, offsets

    def owner_ranks(self, indices: np.ndarray) -> np.ndarray:
        """Primary-owner parent ranks for a batch of global indices."""
        owners, _ = self.lookup(indices)
        rank_array = self.dist._rank_array
        coords = []
        for d, dd in enumerate(self.dist.dtype.dims):
            if dd.consumes_proc_dim:
                coords.append((self.dist._secdim_of[d], owners[:, d]))
        if not coords:
            return np.full(
                len(owners), int(rank_array.reshape(-1)[0]), dtype=np.int64
            )
        index_arrays: list[np.ndarray | None] = [None] * self.dist.target.ndim
        for secdim, vec in coords:
            index_arrays[secdim] = vec
        return rank_array[tuple(index_arrays)]

    @property
    def nbytes(self) -> int:
        return sum(t.nbytes for t in self.dim_tables)
