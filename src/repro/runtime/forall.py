"""Owner-computes FORALL loops.

Vienna Fortran's feature set includes "explicitly parallel
asynchronous forall loops" (§2 intro); under the SPMD model the
compiler distributes forall iterations by the owner-computes rule —
"the processor performs the computation that defines data elements
owned locally" — and satisfies non-local reads with messages.

:func:`forall` executes ``lhs(i) = func(i, read)`` for every index of
the left-hand-side array: iterations are partitioned by ownership, the
``read`` accessor resolves global reads of other distributed arrays
(local reads free, remote reads accounted), and an optional
*inspector* pre-pass batches the remote reads PARTI-style when the
index set is known up front.

The per-element path is the semantic reference; production code uses
the gather-batched :func:`repro.runtime.batched.forall_batched` (one
vectorized gather per (owner rank, array) pair, accounting identical
bitwise) or the vectorized lowerings in :mod:`repro.compiler.codegen`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..obs import metrics as _obs
from .darray import DistributedArray
from .inspector import Inspector

__all__ = ["ReadAccessor", "forall", "forall_gathered"]

#: which forall implementation ran — the batched path increments
#: ``path="batched"`` in :mod:`repro.runtime.batched`
FORALL_CALLS = _obs.counter(
    "repro_forall_calls_total",
    "forall executions, by implementation path.",
    ("path",),
)


class ReadAccessor:
    """Global-read proxy handed to forall bodies.

    ``read[("B", i, j)]`` or ``read("B", (i, j))`` returns the value of
    ``B(i, j)``, charging a one-element message when the executing
    processor does not own it (§3.2.1's non-local access path).
    """

    def __init__(self, arrays: dict[str, DistributedArray], rank: int):
        self._arrays = arrays
        self._rank = rank
        self.remote_reads = 0

    def __call__(self, name: str, index) -> float:
        arr = self._arrays[name]
        owners = arr.dist.owners(arr.descriptor.index_dom.check(index))
        if self._rank not in owners:
            self.remote_reads += 1
        return arr.read_remote(self._rank, index)

    def local(self, name: str, index) -> float:
        """Assert-local read: raises if the element is remote (used by
        bodies that the compiler proved communication-free)."""
        arr = self._arrays[name]
        index = arr.descriptor.index_dom.check(index)
        if self._rank not in arr.dist.owners(index):
            raise RuntimeError(
                f"forall body read non-local element {name}{index} on "
                f"processor {self._rank} but was declared local-only"
            )
        return arr.get(index)


def forall(
    lhs: DistributedArray,
    func: Callable[[tuple[int, ...], ReadAccessor], float],
    reads: dict[str, DistributedArray] | None = None,
    flops_per_element: float = 1.0,
) -> dict[int, int]:
    """Execute ``lhs(i) = func(i, read)`` under owner-computes.

    Returns per-processor remote-read counts (the communication the
    compiler would try to hoist or batch).  Iterations run in
    processor-rank order; Vienna Fortran foralls require the iterations
    to be independent, so ordering is unobservable for legal bodies.
    """
    FORALL_CALLS.inc(path="reference")
    reads = dict(reads or {})
    reads.setdefault(lhs.name, lhs)
    machine = lhs.machine
    remote_counts: dict[int, int] = {}
    import itertools

    # two-phase execution: every iteration reads pre-loop state (the
    # defining property of forall), so all staged results are computed
    # before any processor commits its writes
    staged_by_rank: dict[int, np.ndarray] = {}
    for rank in lhs.owning_ranks():
        accessor = ReadAccessor(reads, rank)
        idx_arrays = lhs.local_indices(rank)
        assert idx_arrays is not None
        local = lhs.local(rank)
        staged = np.empty_like(local)
        for lidx in itertools.product(*(range(len(a)) for a in idx_arrays)):
            gidx = tuple(int(idx_arrays[d][lidx[d]]) for d in range(lhs.ndim))
            staged[lidx] = func(gidx, accessor)
        staged_by_rank[rank] = staged
        machine.network.compute(
            rank, flops_per_element * local.size, tag=f"forall:{lhs.name}"
        )
        remote_counts[rank] = accessor.remote_reads
    for rank, staged in staged_by_rank.items():
        lhs.local(rank)[...] = staged
    machine.network.synchronize()
    return remote_counts


def forall_gathered(
    lhs: DistributedArray,
    index_func: Callable[[tuple[int, ...]], Sequence[tuple[int, ...]]],
    combine: Callable[[tuple[int, ...], np.ndarray], float],
    source: DistributedArray | None = None,
    flops_per_element: float = 1.0,
) -> dict[int, int]:
    """Inspector/executor forall: remote reads batched PARTI-style.

    ``index_func(i)`` names the global elements of ``source`` that the
    body of iteration ``i`` reads; the inspector translates and batches
    them (one aggregated message per processor pair) and the executor
    calls ``combine(i, values)`` with the gathered values in
    ``index_func`` order.  This is the lowering §4 prescribes for the
    PIC particle loop.  Returns per-processor off-processor element
    counts.
    """
    FORALL_CALLS.inc(path="gathered")
    source = source if source is not None else lhs
    machine = lhs.machine
    inspector = Inspector(source)

    # inspector phase: collect every processor's read set
    requests: dict[int, np.ndarray] = {}
    iter_slices: dict[int, list[tuple[tuple[int, ...], int, int]]] = {}
    for rank in lhs.owning_ranks():
        idx_arrays = lhs.local_indices(rank)
        assert idx_arrays is not None
        flat: list[tuple[int, ...]] = []
        slices: list[tuple[tuple[int, ...], int, int]] = []
        import itertools

        for lidx in itertools.product(*(range(len(a)) for a in idx_arrays)):
            gidx = tuple(int(idx_arrays[d][lidx[d]]) for d in range(lhs.ndim))
            wanted = list(index_func(gidx))
            slices.append((gidx, len(flat), len(flat) + len(wanted)))
            flat.extend(wanted)
        requests[rank] = (
            np.asarray(flat, dtype=np.int64).reshape(-1, source.ndim)
            if flat
            else np.empty((0, source.ndim), dtype=np.int64)
        )
        iter_slices[rank] = slices
    schedule = inspector.inspect(requests)

    # executor phase: one batched gather, then pure-local computation
    values = inspector.gather(schedule)
    for rank in lhs.owning_ranks():
        local = lhs.local(rank)
        staged = np.empty_like(local)
        vals = values[rank]
        for gidx, lo, hi in iter_slices[rank]:
            lidx = lhs.dist.global_to_local(rank, gidx)
            staged[lidx] = combine(gidx, vals[lo:hi])
        local[...] = staged
        machine.network.compute(
            rank, flops_per_element * local.size, tag=f"forall:{lhs.name}"
        )
    machine.network.synchronize()
    return schedule.nonlocal_counts()
