"""Bulk communication primitives of the VFE run-time library (§3.2).

"A run time library of communication routines for transferring single
array elements and array sections, including specialized routines for
handling reductions."  Single-element transfers live on
:class:`~repro.runtime.darray.DistributedArray` itself; this module
provides the section-level routines the application kernels use:

- :func:`shift_exchange` — nearest-neighbour boundary exchange along
  one dimension (the smoothing example's per-step messages);
- :func:`gather_to` / :func:`broadcast_from` — collect a distributed
  array on (or spread it from) one processor;
- :func:`reduce_scalar` — global reduction of per-processor partial
  values, with flat or binary-tree message schedules.

Every routine moves the actual numpy data *and* records the messages a
distributed-memory machine would send, so the cost model sees exactly
the traffic the paper reasons about.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..obs import metrics as _obs
from .darray import DistributedArray

__all__ = [
    "shift_exchange",
    "gather_to",
    "broadcast_from",
    "reduce_scalar",
]

_COMM_MESSAGES = _obs.counter(
    "repro_comm_messages_total",
    "Messages posted on the machine network, by communication kind.",
    ("kind",),
)
_COMM_BYTES = _obs.counter(
    "repro_comm_bytes_total",
    "Bytes posted on the machine network, by communication kind.",
    ("kind",),
)


def shift_exchange(
    array: DistributedArray,
    dim: int,
    width: int = 1,
    plan_cache=None,
) -> dict[int, dict[str, np.ndarray]]:
    """Exchange ``width``-deep boundary slabs with neighbours along ``dim``.

    For every pair of processors owning adjacent index ranges along
    array dimension ``dim``, the boundary slab of each is sent to the
    other (two messages per interior boundary).  Returns, per rank, the
    received slabs under keys ``"lo"`` (from the lower neighbour) and
    ``"hi"`` (from the upper neighbour) — the ghost values a stencil
    sweep needs.

    This is exactly the traffic of the paper's smoothing analysis: a
    column distribution of an N x N grid exchanges 2 messages of N
    elements per processor per step; a 2-D block distribution exchanges
    4 messages of N/p elements (two per distributed dimension).

    The slab plan is memoized per (distribution, dim, width) on
    ``plan_cache`` (the engine's, or the shared default) — a
    steady-state stencil loop re-derives its neighbour slices zero
    times after the first step.
    """
    if width < 1:
        raise ValueError("exchange width must be >= 1")
    machine = array.machine

    # the slab plan is shared, verbatim, with the SPMD worker op
    # (repro.backend.ops.op_stencil_step): same neighbours, same
    # slabs, same element counts — only the mover differs.
    if plan_cache is None:
        from .redistribute import default_plan_cache

        plan_cache = default_plan_cache()
    try:
        entries = plan_cache.shift_plan(array.dist, dim, width)
    except ValueError as exc:
        raise ValueError(f"{array.name!r}: {exc}") from None
    received: dict[int, dict[str, np.ndarray]] = {
        r: {} for r in array.owning_ranks()
    }
    phase: list[tuple[int, int, int, str]] = []
    for src, dst, key, src_sl, _count in entries:
        slab = array.local(src)[src_sl].copy()
        phase.append((src, dst, slab.nbytes, f"shift:{array.name}:d{dim}"))
        received[dst][key] = slab
    # all boundary transfers of one sweep post concurrently
    machine.network.exchange(phase)
    machine.network.synchronize()
    if _obs.enabled() and phase:
        _COMM_MESSAGES.inc(len(phase), kind="halo")
        _COMM_BYTES.inc(sum(p[2] for p in phase), kind="halo")
    return received


def gather_to(array: DistributedArray, root: int = 0) -> np.ndarray:
    """Collect the whole array on ``root`` (one message per other owner)."""
    machine = array.machine
    phase = [
        (rank, root, array.dist.local_size(rank) * array.itemsize,
         f"gather:{array.name}")
        for rank in array.owning_ranks()
        if rank != root
    ]
    machine.network.exchange(phase)
    machine.network.synchronize()
    if _obs.enabled() and phase:
        _COMM_MESSAGES.inc(len(phase), kind="gather")
        _COMM_BYTES.inc(sum(p[2] for p in phase), kind="gather")
    return array.to_global()


def broadcast_from(array: DistributedArray, values: np.ndarray, root: int = 0) -> None:
    """Scatter ``values`` from ``root`` into the distributed segments."""
    machine = array.machine
    phase = [
        (root, rank, array.dist.local_size(rank) * array.itemsize,
         f"scatter:{array.name}")
        for rank in array.owning_ranks()
        if rank != root
    ]
    machine.network.exchange(phase)
    machine.network.synchronize()
    if _obs.enabled() and phase:
        _COMM_MESSAGES.inc(len(phase), kind="broadcast")
        _COMM_BYTES.inc(sum(p[2] for p in phase), kind="broadcast")
    array.from_global(values)


def reduce_scalar(
    machine,
    partials: dict[int, float],
    op: Callable[[float, float], float] = lambda a, b: a + b,
    root: int = 0,
    tree: bool = True,
    nbytes: int = 8,
) -> float:
    """Reduce per-processor partial values to ``root``.

    ``tree=True`` uses the binary-combining schedule (ceil(log2 P)
    rounds, P-1 messages); ``tree=False`` sends every partial straight
    to the root (also P-1 messages but serialized at the root — the
    latency difference shows up in the modeled time).
    """
    ranks = sorted(partials)
    if root not in partials:
        raise ValueError(f"root {root} contributed no partial value")
    vals = dict(partials)
    if not tree:
        acc = vals[root]
        for r in ranks:
            if r == root:
                continue
            machine.network.send(r, root, nbytes, tag="reduce")
            acc = op(acc, vals[r])
        machine.network.synchronize()
        return acc
    # binary tree: pair up, halve the active set each round
    active = [r for r in ranks if r != root]
    active = [root] + active
    while len(active) > 1:
        nxt = []
        for i in range(0, len(active), 2):
            if i + 1 < len(active):
                src, dst = active[i + 1], active[i]
                machine.network.send(src, dst, nbytes, tag="reduce")
                vals[dst] = op(vals[dst], vals[src])
            nxt.append(active[i])
        active = nxt
    machine.network.synchronize()
    return vals[root]
