"""Vectorized owner-computes FORALL — the inspector-backed hot path.

:func:`repro.runtime.forall.forall` is the semantic reference: it
walks every owned index in Python, resolving each global read through
a per-element :class:`~repro.runtime.forall.ReadAccessor`.  This
module is the production lowering the paper's §4 argument licenses —
the iteration and transfer sets of a forall are known up front, so the
executor can precompute them once and execute in bulk:

- the iteration set of each processor is materialized as per-dimension
  index columns (one ``meshgrid``, row-major — the same order the
  reference's ``itertools.product`` walks);
- every global read the body performs is resolved for *all* iterations
  at once: ownership and local offsets come from the PARTI-style
  :class:`~repro.runtime.translation.TranslationTable`, and the values
  arrive with **one fancy-indexed gather per (owner rank, array)
  pair** instead of per-element ``read_remote`` calls;
- owned elements are written back with a single reshaped assignment.

Accounting is *identical to the reference by construction*: the same
per-element messages (owner → reader, one element each, same tags) are
recorded in the same order — iteration-major, then read-call order
within an iteration — so remote-read counts, network statistics,
per-processor clocks and recorded event logs all match the per-element
path bitwise (property-tested in
``tests/properties/test_vectorized_props.py``).

The body contract mirrors the scalar one, lifted to arrays: where a
scalar body computes ``func(i, read)`` for one index tuple, a batched
body computes ``body(cols, read)`` for *all* indices at once —
``cols`` is a tuple of per-dimension int64 arrays and ``read(name,
index_cols)`` returns the referenced values as an array.  A scalar
body and a batched body correspond when they perform the same reads in
the same order and compute the same function elementwise.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .darray import DistributedArray
from .translation import TranslationTable

__all__ = ["BatchedReadAccessor", "forall_batched"]


class BatchedReadAccessor:
    """Vectorized global-read proxy handed to batched forall bodies.

    ``read(name, index_cols)`` returns the values of
    ``name(index_cols)`` for every iteration at once; ``index_cols``
    is a tuple of per-dimension integer arrays (a single array is
    accepted for 1-D arrays).  Remote elements are fetched with one
    gather per owning rank; the per-element message *accounting* is
    deferred and replayed in reference order by :meth:`emit`.
    """

    def __init__(self, arrays: dict[str, DistributedArray], rank: int):
        self._arrays = arrays
        self._rank = rank
        self.remote_reads = 0
        #: one entry per read call: (tag, itemsize, remote iteration
        #: indices, remote source ranks) — replayed by :meth:`emit`
        self._pending: list[tuple[str, int, np.ndarray, np.ndarray]] = []
        self._tables: dict[str, TranslationTable] = {}

    # -- index plumbing ---------------------------------------------------
    def _table(self, arr: DistributedArray) -> TranslationTable:
        table = self._tables.get(arr.name)
        if table is None:
            table = TranslationTable(arr.dist)
            self._tables[arr.name] = table
        return table

    @staticmethod
    def _normalize(arr: DistributedArray, index_cols) -> np.ndarray:
        """``(niter, ndim)`` int64 index matrix from per-dim columns."""
        if isinstance(index_cols, np.ndarray) and index_cols.ndim == 2:
            idx = np.ascontiguousarray(index_cols, dtype=np.int64)
        else:
            if isinstance(index_cols, (np.ndarray, list)) and arr.ndim == 1:
                index_cols = (index_cols,)
            if len(index_cols) != arr.ndim:
                raise ValueError(
                    f"{arr.name!r} needs {arr.ndim} index columns, "
                    f"got {len(index_cols)}"
                )
            idx = np.stack(
                [np.asarray(c, dtype=np.int64) for c in index_cols], axis=1
            )
        lo_ok = idx.size == 0 or idx.min() >= 0
        hi_ok = idx.size == 0 or bool((idx.max(axis=0) < arr.shape).all())
        if not (lo_ok and hi_ok):
            raise IndexError(
                f"index out of range for {arr.name!r} of shape {arr.shape}"
            )
        return idx

    def _local_mask(
        self, arr: DistributedArray, owner_slots: np.ndarray
    ) -> np.ndarray:
        """Which referenced elements the reading processor owns."""
        slots = arr.dist._slots_of_proc(self._rank)
        n = len(owner_slots)
        if slots is None:  # reader outside the target section
            return np.zeros(n, dtype=bool)
        mask = np.ones(n, dtype=bool)
        for d, dd in enumerate(arr.dist.dtype.dims):
            if dd.consumes_proc_dim and dd.exclusive:
                mask &= owner_slots[:, d] == slots[d]
            # replicated / undistributed dimensions never exclude
        return mask

    # -- the read ---------------------------------------------------------
    def __call__(self, name: str, index_cols) -> np.ndarray:
        """Batched read: one gather per (owner rank, array) pair."""
        arr = self._arrays[name]
        idx = self._normalize(arr, index_cols)
        table = self._table(arr)
        owner_slots, offsets = table.lookup(idx)
        local = self._local_mask(arr, owner_slots)
        src = table.owner_ranks(idx)  # primary owners (reference's src)
        src[local] = self._rank
        vals = np.empty(len(idx), dtype=arr.np_dtype)
        for q in np.unique(src):
            sel = src == q
            seg = arr.local(int(q))
            vals[sel] = seg[tuple(offsets[sel, d] for d in range(arr.ndim))]
        remote = np.flatnonzero(~local)
        self.remote_reads += len(remote)
        self._pending.append(
            (f"elem:{arr.name}", arr.itemsize, remote, src[remote])
        )
        return vals

    def local(self, name: str, index_cols) -> np.ndarray:
        """Assert-local batched read (communication-free bodies)."""
        arr = self._arrays[name]
        idx = self._normalize(arr, index_cols)
        owner_slots, offsets = self._table(arr).lookup(idx)
        local = self._local_mask(arr, owner_slots)
        if not local.all():
            bad = idx[np.argmin(local)]
            raise RuntimeError(
                f"forall body read non-local element {name}{tuple(bad)} on "
                f"processor {self._rank} but was declared local-only"
            )
        seg = arr.local(self._rank)
        return seg[tuple(offsets[:, d] for d in range(arr.ndim))]

    # -- deferred accounting ----------------------------------------------
    def emit(self, network) -> None:
        """Replay the recorded remote reads as per-element messages in
        reference order: iteration-major, read-call order within one
        iteration — exactly the sequence the per-element path sends."""
        if not any(len(p[2]) for p in self._pending):
            return
        iters = np.concatenate([p[2] for p in self._pending])
        calls = np.concatenate(
            [np.full(len(p[2]), ci, dtype=np.int64)
             for ci, p in enumerate(self._pending)]
        )
        srcs = np.concatenate([p[3] for p in self._pending])
        order = np.lexsort((calls, iters))
        tags = [p[0] for p in self._pending]
        sizes = [p[1] for p in self._pending]
        rank = self._rank
        for k in order:
            c = calls[k]
            network.send(int(srcs[k]), rank, sizes[c], tag=tags[c])


def forall_batched(
    lhs: DistributedArray,
    body: Callable[[tuple[np.ndarray, ...], BatchedReadAccessor], np.ndarray],
    reads: dict[str, DistributedArray] | None = None,
    flops_per_element: float = 1.0,
) -> dict[int, int]:
    """Execute ``lhs(i) = body(i, read)`` vectorized, owner-computes.

    The drop-in production counterpart of
    :func:`repro.runtime.forall.forall`: ``body`` receives the full
    iteration set of one processor as per-dimension index columns and
    a :class:`BatchedReadAccessor`, and returns the staged values as a
    flat array in iteration order.  Returns per-processor remote-read
    counts; all accounting (messages, events, clocks) matches the
    per-element reference bitwise for corresponding bodies.
    """
    from .forall import FORALL_CALLS

    FORALL_CALLS.inc(path="batched")
    reads = dict(reads or {})
    reads.setdefault(lhs.name, lhs)
    machine = lhs.machine
    remote_counts: dict[int, int] = {}

    # two-phase execution: stage every processor's results against
    # pre-loop state, then commit all writes (forall semantics)
    staged_by_rank: dict[int, np.ndarray] = {}
    for rank in lhs.owning_ranks():
        idx_arrays = lhs.local_indices(rank)
        assert idx_arrays is not None
        grids = np.meshgrid(*idx_arrays, indexing="ij")
        cols = tuple(g.ravel() for g in grids)  # row-major == reference
        accessor = BatchedReadAccessor(reads, rank)
        staged = np.asarray(body(cols, accessor), dtype=lhs.np_dtype)
        shape = lhs.local(rank).shape
        if staged.shape != shape:
            staged = staged.reshape(shape)
        staged_by_rank[rank] = staged
        # reference order per processor: element messages, then the
        # kernel charge
        accessor.emit(machine.network)
        machine.network.compute(
            rank, flops_per_element * staged.size, tag=f"forall:{lhs.name}"
        )
        remote_counts[rank] = accessor.remote_reads
    for rank, staged in staged_by_rank.items():
        lhs.local(rank)[...] = staged
    machine.network.synchronize()
    return remote_counts
