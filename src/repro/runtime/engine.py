"""The Vienna Fortran Engine facade (paper §3.2).

"The run time support required may be described as the Vienna Fortran
Engine (VFE), an abstract machine that executes Vienna Fortran object
programs."  :class:`Engine` is that abstract machine's front door:

- :meth:`declare` — create statically or dynamically distributed
  arrays, with ``RANGE``, initial distributions, and ``CONNECT``
  (extraction or alignment) secondary annotations;
- :meth:`distribute` — the executable DISTRIBUTE statement, §3.2.2:
  evaluate the new distribution, derive every connected array's
  distribution via CONSTRUCT, and COMMUNICATE each member not named in
  NOTRANSFER;
- :meth:`idt` / :meth:`dcase` — run-time distribution queries bound to
  the engine's arrays;
- inspector access and simple SPMD loop helpers for the app kernels.
"""

from __future__ import annotations

import warnings
from typing import Callable, Sequence

import numpy as np

from ..backend.base import Backend, resolve_backend
from ..core.alignment import Alignment
from ..core.descriptor import ArrayDescriptor
from ..core.distribution import Distribution, DistributionType
from ..core.dynamic import Aligned, ConnectClass, Connection, DynamicAttr, Extraction
from ..core.index_domain import IndexDomain
from ..core.query import DCase, idt as _idt
from ..machine.machine import Machine
from ..machine.topology import ProcessorArray, ProcessorSection
from .darray import DistributedArray
from .inspector import Inspector
from .redistribute import PlanCache, RedistributionReport, communicate

__all__ = ["Engine"]


class Engine:
    """One Vienna Fortran Engine instance over a simulated machine.

    Parameters
    ----------
    machine:
        The simulated multicomputer to run on.
    plan_cache:
        Memoized transfer plans (§3.2 run-time optimization); pass one
        explicitly to share it across engines.
    backend:
        Execution backend — a :class:`~repro.backend.base.Backend`
        instance, ``"serial"``, or ``"multiprocess"``.  ``None``
        (default) reuses whatever backend is already attached to the
        machine, or plain in-process semantics if there is none.  A
        named backend constructed here is attached to the machine;
        its lifecycle (``close()``) belongs to the caller via
        :attr:`backend`.
    """

    def __init__(
        self,
        machine: Machine,
        plan_cache: PlanCache | None = None,
        backend: Backend | str | None = None,
    ):
        warnings.warn(
            "constructing Engine(...) directly is deprecated; open a "
            "session with repro.session(...) and use Session.engine() "
            "(or Session.workload(...) for the named workloads)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._init(machine, plan_cache, backend)

    @classmethod
    def _create(
        cls,
        machine: Machine,
        plan_cache: PlanCache | None = None,
        backend: Backend | str | None = None,
    ) -> "Engine":
        """Internal constructor: same semantics as ``Engine(...)``
        without the deprecation warning.  :meth:`repro.api.Session.engine`
        and the in-package callers use this; user code should go
        through the session facade."""
        self = object.__new__(cls)
        self._init(machine, plan_cache, backend)
        return self

    def _init(
        self,
        machine: Machine,
        plan_cache: PlanCache | None,
        backend: Backend | str | None,
    ) -> None:
        self.machine = machine
        if backend is None:
            self.backend = machine.backend  # may be None: inline serial
        else:
            self.backend = resolve_backend(backend)
            self.backend.attach(machine)
        self.arrays: dict[str, DistributedArray] = {}
        self._classes: dict[str, ConnectClass] = {}  # primary name -> class
        self.reports: list[RedistributionReport] = []
        #: memoized transfer plans (§3.2 run-time optimization); pass
        #: ``plan_cache=None`` explicitly to share one across engines
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()

    # -- declaration (§2.3) ----------------------------------------------
    def declare(
        self,
        name: str,
        shape: Sequence[int] | int,
        dist: DistributionType | Distribution | None = None,
        to: ProcessorSection | ProcessorArray | None = None,
        dynamic: DynamicAttr | bool | None = None,
        connect: tuple[str, Connection | Alignment | str] | None = None,
        dtype: np.dtype | type = np.float64,
    ) -> DistributedArray:
        """Declare an array.

        Parameters mirror the Vienna Fortran annotations:

        - ``dist`` + ``to``: ``DIST (expr) TO section`` — the (initial)
          distribution.  For a static array this is mandatory; for a
          dynamic one it is the optional initial distribution.
        - ``dynamic``: the ``DYNAMIC`` attribute (``True`` for a bare
          one, or a :class:`DynamicAttr` carrying ``RANGE``).
        - ``connect``: secondary annotation ``(primary_name, conn)``
          where ``conn`` is an :class:`Extraction` (or the string
          ``"="``), an :class:`Aligned`, or a bare
          :class:`~repro.core.alignment.Alignment`.  Secondary arrays
          must be dynamic and may not carry their own distribution.
        """
        if name in self.arrays:
            raise ValueError(f"array {name!r} already declared")
        domain = IndexDomain(shape)

        dyn: DynamicAttr | None
        if dynamic is True:
            dyn = DynamicAttr()
        elif dynamic is False:
            dyn = None
        else:
            dyn = dynamic

        connect_class: ConnectClass | None = None
        if connect is not None:
            if dyn is None:
                raise ValueError(
                    f"secondary array {name!r} must be DYNAMIC (§2.3)"
                )
            if dist is not None:
                raise ValueError(
                    f"secondary array {name!r} may not declare its own "
                    f"distribution; it is derived from the primary"
                )
            primary_name, conn = connect
            if primary_name not in self.arrays:
                raise ValueError(f"unknown primary array {primary_name!r}")
            primary = self.arrays[primary_name]
            if not primary.descriptor.is_dynamic:
                raise ValueError(
                    f"primary array {primary_name!r} must be DYNAMIC"
                )
            if isinstance(conn, str):
                if conn.strip() in ("=", f"={primary_name}"):
                    conn = Extraction()
                else:
                    raise ValueError(f"cannot interpret connection {conn!r}")
            elif isinstance(conn, Alignment):
                conn = Aligned(conn)
            if not isinstance(conn, Connection):
                raise TypeError(f"bad connection {conn!r}")
            connect_class = self._class_of_primary(primary_name)
            connect_class.add_secondary(name, domain, conn)

        desc = ArrayDescriptor(name, domain, dynamic=dyn, connect_class=connect_class)
        arr = DistributedArray(desc, self.machine, dtype=dtype)
        self.arrays[name] = arr

        if connect_class is not None:
            # derive the secondary's distribution if the primary has one
            primary_arr = self.arrays[connect_class.primary]
            if primary_arr.descriptor.is_distributed:
                desc.set_dist(connect_class.derive(name, primary_arr.dist))
                arr._allocate_segments()
            return arr

        if dist is not None:
            bound = self._bind(domain, dist, to)
            if dyn is None:
                desc.set_dist(bound)  # static: invariant association
            else:
                dyn.range.check(bound.dtype, name)
                desc.set_dist(bound)
            arr._allocate_segments()
        elif dyn is None:
            raise ValueError(
                f"statically distributed array {name!r} needs a distribution"
            )
        elif dyn.initial is not None:
            bound = self._bind(domain, dyn.initial, to)
            desc.set_dist(bound)
            arr._allocate_segments()
        return arr

    def _class_of_primary(self, primary_name: str) -> ConnectClass:
        if primary_name not in self._classes:
            self._classes[primary_name] = ConnectClass(
                primary_name, self.arrays[primary_name].descriptor.index_dom
            )
            self.arrays[primary_name].descriptor.connect_class = self._classes[
                primary_name
            ]
        return self._classes[primary_name]

    def _bind(
        self,
        domain: IndexDomain,
        dist: DistributionType | Distribution,
        to: ProcessorSection | ProcessorArray | None,
    ) -> Distribution:
        if isinstance(dist, Distribution):
            if to is not None:
                raise ValueError("give either a bound Distribution or a type + to")
            return dist
        target = to if to is not None else self.machine.full_section()
        return dist.apply(domain, target)

    # -- the DISTRIBUTE statement (§2.4, §3.2.2) ---------------------------
    def distribute(
        self,
        name: str,
        dist: DistributionType | Distribution | Alignment | str,
        to: ProcessorSection | ProcessorArray | None = None,
        notransfer: Sequence[str] = (),
        with_array: str | None = None,
    ) -> list[RedistributionReport]:
        """Execute ``DISTRIBUTE name :: dist [NOTRANSFER (...)]``.

        ``dist`` may be a distribution type (optionally with ``to``),
        a fully bound :class:`Distribution`, the string ``"=OTHER"``
        (distribution extraction from another array), or an
        :class:`~repro.core.alignment.Alignment` together with
        ``with_array`` (alignment form of the distribute statement).

        Applies to *primary* arrays only; secondaries are redistributed
        through their connection, and members named in ``notransfer``
        get descriptor-only updates.  Returns one report per member.
        """
        arr = self._get(name)
        desc = arr.descriptor
        if not desc.is_dynamic:
            raise ValueError(
                f"DISTRIBUTE applies to dynamically distributed arrays; "
                f"{name!r} is static (§2.3)"
            )
        cls = desc.connect_class
        if cls is not None and name != cls.primary:
            raise ValueError(
                f"DISTRIBUTE applies to primary arrays only; {name!r} is a "
                f"secondary of C({cls.primary}) (§2.3 item 3)"
            )
        # Step 0: validate NOTRANSFER ⊆ secondaries of C(B).
        notransfer = tuple(str(n) for n in notransfer)
        secondaries = set(cls.secondaries) if cls is not None else set()
        bad = [n for n in notransfer if n not in secondaries]
        if bad:
            raise ValueError(
                f"NOTRANSFER names must be secondary arrays in C({name}): {bad}"
            )

        # Step 1: evaluate da -> new distribution of B.
        if isinstance(dist, str):
            src = dist.strip()
            if not src.startswith("="):
                raise ValueError(f"cannot interpret distribute target {dist!r}")
            other = self._get(src[1:].strip())
            new_b = Extraction().derive(other.dist, desc.index_dom)
        elif isinstance(dist, Alignment):
            if with_array is None:
                raise ValueError("alignment form needs with_array=<name>")
            other = self._get(with_array)
            new_b = Aligned(dist).derive(other.dist, desc.index_dom)
        else:
            new_b = self._bind(desc.index_dom, dist, to)
        if desc.dynamic is not None:
            desc.dynamic.range.check(new_b.dtype, name)

        # Step 2: determine the distributions of connected arrays.
        plan: list[tuple[DistributedArray, Distribution, bool]] = [
            (arr, new_b, True)
        ]
        if cls is not None:
            for sec in cls.secondaries:
                sec_arr = self._get(sec)
                sec_dist = cls.derive(sec, new_b)
                plan.append((sec_arr, sec_dist, sec not in notransfer))

        # Step 3: COMMUNICATE each member (unless NOTRANSFER / first dist).
        reports = []
        for member, new_dist, transfer in plan:
            if not member.descriptor.is_distributed:
                member.descriptor.set_dist(new_dist)
                member._allocate_segments()
                reports.append(
                    RedistributionReport(member.name, 0, 0, 0, member.size, 0.0)
                )
                continue
            reports.append(
                communicate(
                    member, new_dist, transfer=transfer,
                    plan_cache=self.plan_cache,
                )
            )
        self.reports.extend(reports)
        return reports

    def ensure_dist(
        self,
        name: str,
        dist: DistributionType | Distribution,
        to: ProcessorSection | ProcessorArray | None = None,
    ) -> list[RedistributionReport]:
        """Redistribute ``name`` to ``dist`` only if it differs.

        The execution primitive of planner-lowered schedules: a
        schedule assigns a layout to every phase, and most consecutive
        phases share one; this makes re-asserting the current layout
        free (no DISTRIBUTE, no reports) instead of a full
        re-COMMUNICATE.
        """
        arr = self._get(name)
        bound = self._bind(arr.descriptor.index_dom, dist, to)
        if arr.descriptor.is_distributed and arr.dist == bound:
            return []
        return self.distribute(name, bound)

    # -- queries (§2.5) -------------------------------------------------------
    def idt(
        self,
        name: str,
        pattern: object,
        section: ProcessorSection | ProcessorArray | None = None,
    ) -> bool:
        """The IDT intrinsic over a declared array."""
        return _idt(self._get(name).dist, pattern, section)

    def dcase(self, *selector_names: str) -> DCase:
        """Open a DCASE over the named selector arrays.

        "At the time of execution of the dcase construct, each selector
        must be allocated and associated with a well-defined
        distribution" — enforced by the descriptor access.
        """
        return DCase([(n, self._get(n).dist) for n in selector_names])

    # -- helpers ----------------------------------------------------------------
    def record_events(self, log=None):
        """Record typed execution events for the discrete-event
        simulator (context manager yielding the log).

        Everything this engine — and any attached SPMD backend —
        charges to the machine network while the context is open
        (kernels, sends/recvs, exchange phases, barriers,
        redistribution transfers) lands in the log in program order;
        replay it with :func:`repro.sim.simulate`::

            with vfe.record_events() as log:
                ...   # declare / distribute / kernels
            timeline = simulate(log, machine.cost_model, machine.nprocs)
        """
        from ..sim.events import record

        return record(self.machine, log)

    def inspector(self, name: str) -> Inspector:
        return Inspector(self._get(name))

    def foreach_owned(
        self,
        name: str,
        func: Callable[[int, np.ndarray, tuple[np.ndarray, ...]], None],
        flops_per_element: float = 0.0,
    ) -> None:
        """Owner-computes loop: run ``func(rank, local, global_indices)``
        on every owning processor, charging local compute time.

        With an SPMD backend attached, a picklable ``func`` executes
        in the worker processes (one per owning rank, against the
        shared-memory segment); anything unpicklable falls back to the
        in-process loop — contents are identical either way, only the
        executing process differs.
        """
        arr = self._get(name)
        backend = self.machine.backend
        if (
            backend is not None
            and backend.executes_spmd
            and backend.can_ship(func)
        ):
            backend.run_kernel(arr, func)
            if flops_per_element:
                for rank in arr.owning_ranks():
                    self.machine.network.compute(
                        rank, flops_per_element * arr.dist.local_size(rank),
                        tag=f"kernel:{name}",
                    )
            return
        for rank in arr.owning_ranks():
            idx = arr.local_indices(rank)
            assert idx is not None
            func(rank, arr.local(rank), idx)
            if flops_per_element:
                self.machine.network.compute(
                    rank, flops_per_element * arr.dist.local_size(rank),
                    tag=f"kernel:{name}",
                )

    def connect_class_of(self, name: str) -> ConnectClass | None:
        return self._get(name).descriptor.connect_class

    def redistribution_summary(self) -> str:
        """Multi-line summary of every redistribution this engine ran,
        plus the plan cache's cumulative hit/miss statistics."""
        lines = [r.summary() for r in self.reports]
        s = self.plan_cache.stats()
        lines.append(
            f"plan cache: {s['hits']} hits / {s['misses']} misses "
            f"({s['matrices']} matrices, {s['moves']} move plans resident)"
        )
        return "\n".join(lines)

    def _get(self, name: str) -> DistributedArray:
        try:
            return self.arrays[name]
        except KeyError:
            raise KeyError(f"no array named {name!r} declared") from None

    def __repr__(self) -> str:
        return f"Engine({self.machine!r}, arrays={list(self.arrays)})"
