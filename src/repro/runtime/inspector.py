"""PARTI-style inspector/executor (paper §3.2 item 1 and §4's PIC code).

For irregular accesses ("the compiler will have to generate runtime
code using the inspector/executor paradigm [10, 15] to support this
particle motion"), the run time splits a communication-heavy loop into

- an **inspector**, run once per access pattern: translate the global
  indices each processor references, discover which are off-processor,
  and build a :class:`CommSchedule` of exactly the needed exchanges;
- an **executor**, run every iteration: carry out the schedule's
  gathers/scatters and then execute the loop on local + buffered data.

Schedules are *reused* across iterations as long as neither the access
pattern nor the distribution changes; redistribution bumps the array's
version counter, which invalidates the schedule (the "cost of
maintaining runtime information about the current distribution" from
§1 shows up here as schedule rebuilds — benchmarked in E3).
"""

from __future__ import annotations

import numpy as np

from .darray import DistributedArray
from .translation import TranslationTable

__all__ = ["CommSchedule", "Inspector"]


class CommSchedule:
    """The communication plan produced by an inspector.

    For each requesting processor ``p`` and owning processor ``q != p``,
    the schedule stores the flat positions (within ``p``'s request
    list) and the owners' local offsets of the elements ``q`` must ship
    to ``p``.
    """

    def __init__(
        self,
        array_version: int,
        requests: dict[int, np.ndarray],
        owner_of: dict[int, np.ndarray],
        local_offsets: dict[int, np.ndarray],
    ):
        self.array_version = array_version
        #: rank -> (nreq, ndim) global indices requested by that rank
        self.requests = requests
        #: rank -> (nreq,) owner rank of each request
        self.owner_of = owner_of
        #: rank -> (nreq, ndim) local offset at the owner
        self.local_offsets = local_offsets

    def nonlocal_counts(self) -> dict[int, int]:
        """Per requesting rank, how many requests are off-processor."""
        return {
            p: int((own != p).sum()) for p, own in self.owner_of.items()
        }

    def message_pairs(self) -> dict[tuple[int, int], int]:
        """(owner, requester) -> element count, for all off-processor data."""
        out: dict[tuple[int, int], int] = {}
        for p, own in self.owner_of.items():
            ranks, counts = np.unique(own[own != p], return_counts=True)
            for q, c in zip(ranks, counts):
                out[(int(q), p)] = int(c)
        return out


class Inspector:
    """Builds and executes communication schedules for one array."""

    def __init__(self, array: DistributedArray):
        self.array = array
        self._table: TranslationTable | None = None
        self._table_version = -1

    def _translation(self) -> TranslationTable:
        if self._table is None or self._table_version != self.array.version:
            self._table = TranslationTable(self.array.dist)
            self._table_version = self.array.version
        return self._table

    # -- inspector phase --------------------------------------------------
    def inspect(self, requests: dict[int, np.ndarray]) -> CommSchedule:
        """Translate per-processor global index requests into a schedule.

        ``requests[p]`` is an ``(n_p, ndim)`` (or ``(n_p,)`` for 1-D
        arrays) array of global indices processor ``p`` will read.
        """
        table = self._translation()
        req_norm: dict[int, np.ndarray] = {}
        owner_of: dict[int, np.ndarray] = {}
        offsets: dict[int, np.ndarray] = {}
        for p, idx in requests.items():
            idx = np.asarray(idx, dtype=np.int64)
            if idx.ndim == 1 and self.array.ndim == 1:
                idx = idx.reshape(-1, 1)
            if idx.ndim != 2 or idx.shape[1] != self.array.ndim:
                raise ValueError(
                    f"requests for rank {p} must be (n, {self.array.ndim})"
                )
            req_norm[p] = idx
            owner_of[p] = table.owner_ranks(idx)
            _, offsets[p] = table.lookup(idx)
        return CommSchedule(self.array.version, req_norm, owner_of, offsets)

    # -- executor phase ----------------------------------------------------
    def gather(self, schedule: CommSchedule) -> dict[int, np.ndarray]:
        """Execute the gathers of ``schedule``; returns per-rank values.

        ``result[p][i]`` is the value of ``schedule.requests[p][i]``.
        Off-processor elements are fetched with one aggregated message
        per (owner, requester) pair — the PARTI buffering scheme —
        charged to the machine network.  Raises if the schedule is
        stale (array redistributed since :meth:`inspect`).
        """
        self._check_fresh(schedule)
        machine = self.array.machine
        itemsize = self.array.itemsize
        machine.network.exchange(
            [
                (q, p, count * itemsize, f"gather:{self.array.name}")
                for (q, p), count in schedule.message_pairs().items()
            ]
        )
        machine.network.synchronize()

        out: dict[int, np.ndarray] = {}
        for p, idx in schedule.requests.items():
            vals = np.empty(len(idx), dtype=self.array.np_dtype)
            own = schedule.owner_of[p]
            offs = schedule.local_offsets[p]
            for q in np.unique(own):
                mask = own == q
                seg = self.array.local(int(q))
                sel = tuple(offs[mask][:, d] for d in range(self.array.ndim))
                vals[mask] = seg[sel]
            out[p] = vals
        return out

    def scatter_add(
        self, schedule: CommSchedule, values: dict[int, np.ndarray]
    ) -> None:
        """Execute scatter-with-accumulate (the PIC particle reassignment).

        Each requesting rank ``p`` contributes ``values[p][i]`` to
        global element ``schedule.requests[p][i]``; contributions to
        off-processor elements cost one aggregated message per
        (requester, owner) pair.  Accumulation order is deterministic
        (ascending requester rank).
        """
        self._check_fresh(schedule)
        machine = self.array.machine
        itemsize = self.array.itemsize
        # data flows requester -> owner here (reverse of gather)
        machine.network.exchange(
            [
                (p, q, count * itemsize, f"scatter:{self.array.name}")
                for (q, p), count in schedule.message_pairs().items()
            ]
        )
        machine.network.synchronize()

        for p in sorted(schedule.requests):
            idx = schedule.requests[p]
            vals = np.asarray(values[p], dtype=self.array.np_dtype)
            if len(vals) != len(idx):
                raise ValueError(
                    f"rank {p}: {len(vals)} values for {len(idx)} requests"
                )
            own = schedule.owner_of[p]
            offs = schedule.local_offsets[p]
            for q in np.unique(own):
                mask = own == q
                seg = self.array.local(int(q))
                sel = tuple(offs[mask][:, d] for d in range(self.array.ndim))
                np.add.at(seg, sel, vals[mask])

    def _check_fresh(self, schedule: CommSchedule) -> None:
        if schedule.array_version != self.array.version:
            raise RuntimeError(
                f"stale schedule for {self.array.name!r}: built at version "
                f"{schedule.array_version}, array is at {self.array.version} "
                f"(redistributed since; re-run the inspector)"
            )
