"""The DISTRIBUTE implementation (paper §3.2.2).

    DISTRIBUTE B :: da [NOTRANSFER (C1, ..., Cm)]

is realized "by a run-time routine executed on each processor which is
passed the array and its current set of descriptors and returns new
descriptors.  Each processor determines the new locations of current
local data, sends it to the new locations, and receives data from
other processors."  The three steps:

1. evaluate the new distribution and access functions for ``B``;
2. derive the distribution of every connected array via CONSTRUCT;
3. ``COMMUNICATE(C, old_dist, new_dist)`` for every member not in
   NOTRANSFER.

This module implements steps 1 and 3 for a single array
(:func:`communicate`); the engine orchestrates connect classes.

Transfer-set computation is vectorized: the old and new primary-owner
rank maps are compared element-wise and grouped with ``bincount`` into
per-(src, dst) message volumes — the design choice benchmarked against
the naive per-element loop (:func:`transfer_matrix_naive`) in
experiment E4.  "Data motion is suppressed where data flow analysis,
or a NOTRANSFER specification, permits": elements whose owner does not
change generate no traffic, and NOTRANSFER skips COMMUNICATE entirely.
"""

from __future__ import annotations

import threading

import numpy as np

from ..backend.base import serial_move
from ..backend.plan import segment_moves as _segment_moves
from ..backend.plan import shift_plan as _shift_plan
from ..backend.plan import sweep_plan as _sweep_plan
from ..core.distribution import Distribution
from ..core.interning import LRUCache, owners_cache_stats
from ..obs import metrics as _obs
from ..obs.tracing import span as _span
from .darray import DistributedArray

__all__ = [
    "transfer_matrix",
    "transfer_matrix_naive",
    "transfer_matrix_bruteforce",
    "communicate",
    "RedistributionReport",
    "PlanCache",
    "default_plan_cache",
]


class RedistributionReport:
    """What one COMMUNICATE did: messages, bytes, elements moved/kept.

    ``cache_hits``/``cache_misses`` are the
    :class:`PlanCache` lookups this operation performed (a recurring
    redistribution in a steady-state loop should show pure hits —
    the §3.2 run-time optimization at work); ``backend`` names the
    execution backend that moved the data.
    """

    def __init__(
        self,
        array_name: str,
        messages: int,
        bytes_: int,
        elements_moved: int,
        elements_kept: int,
        time: float,
        cache_hits: int = 0,
        cache_misses: int = 0,
        backend: str = "serial",
    ):
        self.array_name = array_name
        self.messages = messages
        self.bytes = bytes_
        self.elements_moved = elements_moved
        self.elements_kept = elements_kept
        self.time = time
        self.cache_hits = cache_hits
        self.cache_misses = cache_misses
        self.backend = backend

    def summary(self) -> str:
        """One-line human summary including plan-cache behaviour."""
        return (
            f"{self.array_name}: {self.messages} msgs, {self.bytes}B, "
            f"moved={self.elements_moved}, kept={self.elements_kept}, "
            f"t={self.time:.3e}s  [backend={self.backend}, plan cache "
            f"{self.cache_hits} hit / {self.cache_misses} miss]"
        )

    def __repr__(self) -> str:
        return (
            f"RedistributionReport({self.array_name!r}: {self.messages} msgs, "
            f"{self.bytes}B, moved={self.elements_moved}, "
            f"kept={self.elements_kept}, t={self.time:.3e}s)"
        )


def transfer_matrix(
    old: Distribution, new: Distribution, nprocs: int
) -> np.ndarray:
    """Element counts to move between processors, vectorized.

    Returns an ``(nprocs, nprocs)`` matrix ``T`` with ``T[s, d]`` the
    number of elements processor ``s`` must send to processor ``d``.
    The diagonal is zero: elements staying put need no transfer.  Data
    is sourced from the old *primary* owner; if the new distribution
    replicates, every replica receives a copy (one rank map per owner
    combination).
    """
    if old.domain != new.domain:
        raise ValueError(
            f"redistribution must preserve the index domain: "
            f"{old.domain!r} vs {new.domain!r}"
        )
    src = np.asarray(old.rank_map()).ravel().astype(np.int64)
    T = np.zeros((nprocs, nprocs), dtype=np.int64)
    for new_rm in new.owner_rank_maps():
        dst = np.asarray(new_rm).ravel().astype(np.int64)
        pair = src * nprocs + dst
        counts = np.bincount(pair, minlength=nprocs * nprocs)
        T += counts.reshape(nprocs, nprocs)
    np.fill_diagonal(T, 0)
    return T


def transfer_matrix_naive(
    old: Distribution, new: Distribution, nprocs: int
) -> np.ndarray:
    """Brute-force per-element reference for :func:`transfer_matrix`.

    Walks every element of the domain and asks ``owner()``/``owners()``
    per index — quadratically slower than the vectorized bincount form.
    It exists **only** as the ablation baseline of experiment E4 and as
    the oracle of the redistribution property tests; no production
    path reaches it: :func:`communicate`, the planner's cost engines
    and the SPMD backends all go through :func:`transfer_matrix`
    (usually :class:`PlanCache`-mediated), which is asserted by
    ``tests/runtime/test_redistribute.py``.  Also exported as
    ``transfer_matrix_bruteforce``.
    """
    if old.domain != new.domain:
        raise ValueError("redistribution must preserve the index domain")
    T = np.zeros((nprocs, nprocs), dtype=np.int64)
    for index in old.domain:
        s = old.owner(index)
        for d in new.owners(index):
            if d != s:
                T[s, d] += 1
    return T


#: the name the experiment write-ups use for the E4 ablation baseline
transfer_matrix_bruteforce = transfer_matrix_naive


_PLAN_CACHE_LOOKUPS = _obs.counter(
    "repro_plan_cache_lookups_total",
    "PlanCache lookups across every plan family, by outcome.",
    ("result",),
)
_COMM_MESSAGES = _obs.counter(
    "repro_comm_messages_total",
    "Messages posted on the machine network, by communication kind.",
    ("kind",),
)
_COMM_BYTES = _obs.counter(
    "repro_comm_bytes_total",
    "Bytes posted on the machine network, by communication kind.",
    ("kind",),
)
_REDIST_ELEMENTS = _obs.counter(
    "repro_redistribute_elements_total",
    "Elements handled by COMMUNICATE, split moved vs kept in place.",
    ("action",),
)


class PlanCache:
    """Memoized redistribution plans (§3.2: "run time optimization of
    communication related to dynamic array references").

    A phase-alternating program (the ADI outer loop, PIC with a small
    set of recurring BOUNDS) redistributes between the *same* pairs of
    distributions over and over; the transfer matrix depends only on
    the (old, new) pair, so the run time caches it instead of
    recomputing the owner maps each time.  The cache is keyed by the
    bound distributions (hashable by construction); each plan family
    (transfer matrices, segment moves, halo shift plans, sweep plans)
    lives in its own ``capacity``-bounded LRU store.

    One ``PlanCache`` may be shared by many sessions — that is exactly
    what the ``repro.serve`` session pool does — so lookups and the
    hit/miss totals are guarded by a lock.  Plan computation runs
    outside the lock (plans are pure functions of the key, so a racing
    duplicate compute is benign and cannot corrupt the cache).
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._plans = LRUCache(capacity)
        self._moves = LRUCache(capacity)
        self._shifts = LRUCache(capacity)
        self._sweeps = LRUCache(capacity)
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def _memo(self, store: LRUCache, key, compute):
        """One lookup against a plan store, counted on the cache-wide
        hit/miss totals (the per-store LRU counters are not used)."""
        with self._lock:
            value = store.get(key)
            if value is not None:
                self.hits += 1
                _PLAN_CACHE_LOOKUPS.inc(result="hit")
                return value
            self.misses += 1
        _PLAN_CACHE_LOOKUPS.inc(result="miss")
        value = compute()
        store.put(key, value)
        return value

    def transfer_matrix(
        self, old: Distribution, new: Distribution, nprocs: int
    ) -> np.ndarray:
        return self._memo(
            self._plans,
            (old, new, nprocs),
            lambda: transfer_matrix(old, new, nprocs),
        )

    def segment_moves(
        self, old: Distribution, new: Distribution, nprocs: int
    ) -> dict:
        """Memoized per-rank segment move plan (what SPMD workers
        execute; see :func:`repro.backend.plan.segment_moves`).  The
        worker fleet shares recurring plans through this cache exactly
        as the serial path shares transfer matrices."""
        return self._memo(
            self._moves,
            (old, new, nprocs),
            lambda: _segment_moves(old, new, nprocs),
        )

    def shift_plan(self, dist: Distribution, dim: int, width: int) -> list:
        """Memoized halo slab-exchange plan, keyed by (distribution,
        dimension, width) — the slice plan every stencil step reuses
        instead of re-deriving neighbour slabs (see
        :func:`repro.backend.plan.shift_plan`)."""
        return self._memo(
            self._shifts,
            (dist, int(dim), int(width)),
            lambda: _shift_plan(dist, dim, width),
        )

    def sweep_plan(self, dist: Distribution, dim: int):
        """Memoized grouped line-sweep plan, keyed by (distribution,
        dimension) (see :func:`repro.backend.plan.sweep_plan`)."""
        return self._memo(
            self._sweeps,
            (dist, int(dim)),
            lambda: _sweep_plan(dist, dim),
        )

    def stats(self) -> dict[str, int]:
        """Hit/miss counters, cache populations, and the shared
        owner-map LRU counters (``owners_vec_*`` / ``rank_map_*`` —
        process-wide, see :mod:`repro.core.interning`)."""
        with self._lock:
            out = {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": sum(
                    store.evictions
                    for store in (self._plans, self._moves,
                                  self._shifts, self._sweeps)),
                "matrices": len(self._plans),
                "moves": len(self._moves),
                "shift_plans": len(self._shifts),
                "sweep_plans": len(self._sweeps),
            }
        out.update(owners_cache_stats())
        return out

    def clear(self) -> None:
        with self._lock:
            for store in (self._plans, self._moves, self._shifts, self._sweeps):
                store.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._plans)


_DEFAULT_PLAN_CACHE: PlanCache | None = None


def default_plan_cache() -> PlanCache:
    """The process-wide plan cache for kernels built without an engine.

    :func:`~repro.compiler.codegen.lower_stencil` and friends share
    the engine's cache; apps that construct kernels directly (the ADI
    driver builds :class:`~repro.compiler.codegen.LineSweepKernel`
    itself) fall back to this shared instance so recurring halo and
    sweep plans are still reused across steps.  Plans are pure
    functions of immutable (distribution, dim, width) keys, so sharing
    across engines/machines is safe.
    """
    global _DEFAULT_PLAN_CACHE
    if _DEFAULT_PLAN_CACHE is None:
        _DEFAULT_PLAN_CACHE = PlanCache(capacity=128)
    return _DEFAULT_PLAN_CACHE


def communicate(
    array: DistributedArray,
    new_dist: Distribution,
    transfer: bool = True,
    tag: str | None = None,
    plan_cache: PlanCache | None = None,
) -> RedistributionReport:
    """COMMUNICATE(C, old_dist, new_dist): move ``array`` to ``new_dist``.

    Performs the physical data motion (unless ``transfer`` is false —
    the NOTRANSFER case, where "only the access function ... is changed
    and the elements of the array are not physically moved"), records
    one aggregated message per communicating processor pair on the
    machine network, updates the descriptor, and reallocates segments.

    Returns a :class:`RedistributionReport`.
    """
    with _span("runtime.redistribute", array=array.name,
               transfer=transfer) as sp:
        report = _communicate(array, new_dist, transfer, tag, plan_cache)
        if sp is not None:
            sp.attrs.update(messages=report.messages, bytes=report.bytes,
                            moved=report.elements_moved)
        if report.messages or report.bytes:
            _COMM_MESSAGES.inc(report.messages, kind="redistribute")
            _COMM_BYTES.inc(report.bytes, kind="redistribute")
        _REDIST_ELEMENTS.inc(report.elements_moved, action="moved")
        _REDIST_ELEMENTS.inc(report.elements_kept, action="kept")
        return report


def _communicate(
    array: DistributedArray,
    new_dist: Distribution,
    transfer: bool,
    tag: str | None,
    plan_cache: PlanCache | None,
) -> RedistributionReport:
    machine = array.machine
    backend = machine.backend
    old_dist = array.descriptor.dist
    name = array.name
    tag = tag or f"redistribute:{name}"
    backend_name = backend.name if backend is not None else "serial"

    if not transfer:
        # Descriptor/access-function update only; element values are
        # left undefined under the new distribution (paper semantics:
        # the caller asserts it will overwrite them before reading).
        array.descriptor.set_dist(new_dist)
        array._allocate_segments(fill=0.0)
        return RedistributionReport(
            name, 0, 0, 0, array.size, 0.0, backend=backend_name
        )

    t0 = machine.network.time
    stats0 = machine.stats()
    hits0 = plan_cache.hits if plan_cache is not None else 0
    misses0 = plan_cache.misses if plan_cache is not None else 0

    if plan_cache is not None:
        T = plan_cache.transfer_matrix(old_dist, new_dist, machine.nprocs)
    else:
        T = transfer_matrix(old_dist, new_dist, machine.nprocs)
    itemsize = array.itemsize
    # One aggregated message per communicating (src, dst) pair — the
    # run time "transfers ... array sections", not single elements —
    # all posted as one concurrent all-to-all phase.
    machine.network.exchange(
        [
            (int(s), int(d), int(T[s, d]) * itemsize, tag)
            for s, d in zip(*np.nonzero(T))
        ]
    )
    machine.network.synchronize()

    # Physical data motion.  The network above *accounts* (identically
    # for every backend); the attached execution backend *moves* —
    # in-process global reassembly for the serial reference, real
    # send/recv of segment data in worker processes for SPMD backends.
    if backend is not None and backend.executes_spmd:
        backend.move(array, new_dist, plan_cache=plan_cache)
    else:
        serial_move(array, new_dist)

    stats1 = machine.stats()
    moved = int(T.sum())
    # "kept" counts elements whose primary owner did not change.
    kept = int(
        (np.asarray(old_dist.rank_map()) == np.asarray(new_dist.rank_map())).sum()
    )
    return RedistributionReport(
        name,
        messages=stats1.messages - stats0.messages,
        bytes_=stats1.bytes - stats0.bytes,
        elements_moved=moved,
        elements_kept=kept,
        time=machine.network.time - t0,
        cache_hits=(plan_cache.hits - hits0) if plan_cache is not None else 0,
        cache_misses=(
            plan_cache.misses - misses0 if plan_cache is not None else 0
        ),
        backend=backend_name,
    )
