"""The DISTRIBUTE implementation (paper §3.2.2).

    DISTRIBUTE B :: da [NOTRANSFER (C1, ..., Cm)]

is realized "by a run-time routine executed on each processor which is
passed the array and its current set of descriptors and returns new
descriptors.  Each processor determines the new locations of current
local data, sends it to the new locations, and receives data from
other processors."  The three steps:

1. evaluate the new distribution and access functions for ``B``;
2. derive the distribution of every connected array via CONSTRUCT;
3. ``COMMUNICATE(C, old_dist, new_dist)`` for every member not in
   NOTRANSFER.

This module implements steps 1 and 3 for a single array
(:func:`communicate`); the engine orchestrates connect classes.

Transfer-set computation is vectorized: the old and new primary-owner
rank maps are compared element-wise and grouped with ``bincount`` into
per-(src, dst) message volumes — the design choice benchmarked against
the naive per-element loop (:func:`transfer_matrix_naive`) in
experiment E4.  "Data motion is suppressed where data flow analysis,
or a NOTRANSFER specification, permits": elements whose owner does not
change generate no traffic, and NOTRANSFER skips COMMUNICATE entirely.
"""

from __future__ import annotations

import numpy as np

from ..core.distribution import Distribution
from .darray import DistributedArray

__all__ = [
    "transfer_matrix",
    "transfer_matrix_naive",
    "communicate",
    "RedistributionReport",
    "PlanCache",
]


class RedistributionReport:
    """What one COMMUNICATE did: messages, bytes, elements moved/kept."""

    def __init__(
        self,
        array_name: str,
        messages: int,
        bytes_: int,
        elements_moved: int,
        elements_kept: int,
        time: float,
    ):
        self.array_name = array_name
        self.messages = messages
        self.bytes = bytes_
        self.elements_moved = elements_moved
        self.elements_kept = elements_kept
        self.time = time

    def __repr__(self) -> str:
        return (
            f"RedistributionReport({self.array_name!r}: {self.messages} msgs, "
            f"{self.bytes}B, moved={self.elements_moved}, "
            f"kept={self.elements_kept}, t={self.time:.3e}s)"
        )


def transfer_matrix(
    old: Distribution, new: Distribution, nprocs: int
) -> np.ndarray:
    """Element counts to move between processors, vectorized.

    Returns an ``(nprocs, nprocs)`` matrix ``T`` with ``T[s, d]`` the
    number of elements processor ``s`` must send to processor ``d``.
    The diagonal is zero: elements staying put need no transfer.  Data
    is sourced from the old *primary* owner; if the new distribution
    replicates, every replica receives a copy (one rank map per owner
    combination).
    """
    if old.domain != new.domain:
        raise ValueError(
            f"redistribution must preserve the index domain: "
            f"{old.domain!r} vs {new.domain!r}"
        )
    src = np.asarray(old.rank_map()).ravel().astype(np.int64)
    T = np.zeros((nprocs, nprocs), dtype=np.int64)
    for new_rm in new.owner_rank_maps():
        dst = np.asarray(new_rm).ravel().astype(np.int64)
        pair = src * nprocs + dst
        counts = np.bincount(pair, minlength=nprocs * nprocs)
        T += counts.reshape(nprocs, nprocs)
    np.fill_diagonal(T, 0)
    return T


def transfer_matrix_naive(
    old: Distribution, new: Distribution, nprocs: int
) -> np.ndarray:
    """Per-element reference implementation of :func:`transfer_matrix`.

    Quadratically slower; kept as the ablation baseline for E4 and as
    an oracle for property tests.
    """
    if old.domain != new.domain:
        raise ValueError("redistribution must preserve the index domain")
    T = np.zeros((nprocs, nprocs), dtype=np.int64)
    for index in old.domain:
        s = old.owner(index)
        for d in new.owners(index):
            if d != s:
                T[s, d] += 1
    return T


class PlanCache:
    """Memoized redistribution plans (§3.2: "run time optimization of
    communication related to dynamic array references").

    A phase-alternating program (the ADI outer loop, PIC with a small
    set of recurring BOUNDS) redistributes between the *same* pairs of
    distributions over and over; the transfer matrix depends only on
    the (old, new) pair, so the run time caches it instead of
    recomputing the owner maps each time.  The cache is keyed by the
    bound distributions (hashable by construction) and bounded LRU-ish
    by ``capacity``.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._plans: dict[tuple[Distribution, Distribution, int], np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def transfer_matrix(
        self, old: Distribution, new: Distribution, nprocs: int
    ) -> np.ndarray:
        key = (old, new, nprocs)
        plan = self._plans.get(key)
        if plan is not None:
            self.hits += 1
            return plan
        self.misses += 1
        plan = transfer_matrix(old, new, nprocs)
        if len(self._plans) >= self.capacity:
            self._plans.pop(next(iter(self._plans)))  # evict oldest
        self._plans[key] = plan
        return plan

    def clear(self) -> None:
        self._plans.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._plans)


def communicate(
    array: DistributedArray,
    new_dist: Distribution,
    transfer: bool = True,
    tag: str | None = None,
    plan_cache: PlanCache | None = None,
) -> RedistributionReport:
    """COMMUNICATE(C, old_dist, new_dist): move ``array`` to ``new_dist``.

    Performs the physical data motion (unless ``transfer`` is false —
    the NOTRANSFER case, where "only the access function ... is changed
    and the elements of the array are not physically moved"), records
    one aggregated message per communicating processor pair on the
    machine network, updates the descriptor, and reallocates segments.

    Returns a :class:`RedistributionReport`.
    """
    machine = array.machine
    old_dist = array.descriptor.dist
    name = array.name
    tag = tag or f"redistribute:{name}"

    if not transfer:
        # Descriptor/access-function update only; element values are
        # left undefined under the new distribution (paper semantics:
        # the caller asserts it will overwrite them before reading).
        array.descriptor.set_dist(new_dist)
        array._allocate_segments(fill=0.0)
        return RedistributionReport(name, 0, 0, 0, array.size, 0.0)

    t0 = machine.network.time
    stats0 = machine.stats()

    if plan_cache is not None:
        T = plan_cache.transfer_matrix(old_dist, new_dist, machine.nprocs)
    else:
        T = transfer_matrix(old_dist, new_dist, machine.nprocs)
    itemsize = array.itemsize
    # One aggregated message per communicating (src, dst) pair — the
    # run time "transfers ... array sections", not single elements —
    # all posted as one concurrent all-to-all phase.
    machine.network.exchange(
        [
            (int(s), int(d), int(T[s, d]) * itemsize, tag)
            for s, d in zip(*np.nonzero(T))
        ]
    )
    machine.network.synchronize()

    # Physical data motion via global reassembly (simulation shortcut:
    # the values end up exactly where the per-pair sends put them).
    gvals = array.to_global()
    array.descriptor.set_dist(new_dist)
    array._allocate_segments(fill=None)
    array.from_global(gvals)

    stats1 = machine.stats()
    moved = int(T.sum())
    # "kept" counts elements whose primary owner did not change.
    kept = int(
        (np.asarray(old_dist.rank_map()) == np.asarray(new_dist.rank_map())).sum()
    )
    return RedistributionReport(
        name,
        messages=stats1.messages - stats0.messages,
        bytes_=stats1.bytes - stats0.bytes,
        elements_moved=moved,
        elements_kept=kept,
        time=machine.network.time - t0,
    )
