"""Distributed arrays: global addressing over per-processor segments.

The central run-time object of the Vienna Fortran Engine.  A
:class:`DistributedArray` owns an :class:`~repro.core.descriptor.ArrayDescriptor`
and one numpy segment per owning processor, allocated in that
processor's simulated :class:`~repro.machine.memory.LocalMemory`.
Programs address it with **global** indices — the defining property of
Vienna Fortran ("allows the user to write programs ... using global
addresses") — and the array translates through the descriptor's
``loc_map`` access functions.

Two access styles are provided:

- *oracle* access (:meth:`get` / :meth:`set`, :meth:`to_global` /
  :meth:`from_global`): reads and writes without communication
  accounting.  This is the simulation-harness view, used to set up
  inputs and check results.
- *SPMD* access (:meth:`read_remote`): processor ``p`` reads a global
  element; if ``p`` does not own it, a single-element message from the
  owner is recorded, mirroring §3.2.1's "access in processor p to a
  non-local array element A(i) is performed by determining a processor
  q owning A(i) from dist(A), and inserting message passing operations".
  Bulk SPMD patterns live in :mod:`repro.runtime.communication` and
  :mod:`repro.runtime.inspector`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.descriptor import ArrayDescriptor
from ..core.distribution import Distribution
from ..machine.machine import Machine

__all__ = ["DistributedArray"]


class DistributedArray:
    """A globally addressed array with per-processor local segments.

    Construct through :class:`repro.runtime.engine.Engine.declare` in
    normal use; direct construction requires an already-distributed
    descriptor or none-yet (segments allocated on first distribution).
    """

    def __init__(
        self,
        descriptor: ArrayDescriptor,
        machine: Machine,
        dtype: np.dtype | type = np.float64,
    ):
        self.descriptor = descriptor
        self.machine = machine
        self.np_dtype = np.dtype(dtype)
        self._local_index_cache: dict[int, tuple[np.ndarray, ...] | None] = {}
        if descriptor.is_distributed:
            self._allocate_segments()

    # -- identity ----------------------------------------------------------
    @property
    def name(self) -> str:
        return self.descriptor.name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.descriptor.index_dom.shape

    @property
    def ndim(self) -> int:
        return self.descriptor.index_dom.ndim

    @property
    def size(self) -> int:
        return self.descriptor.index_dom.size

    @property
    def dist(self) -> Distribution:
        return self.descriptor.dist

    @property
    def itemsize(self) -> int:
        return self.np_dtype.itemsize

    @property
    def version(self) -> int:
        """Redistribution counter; schedules cache against this."""
        return self.descriptor.version

    def _block_name(self) -> str:
        return f"array:{self.name}"

    # -- segment management --------------------------------------------------
    def _allocate_segments(self, fill: float | None = 0.0) -> None:
        """(Re)allocate each processor's local segment for current dist."""
        self._local_index_cache.clear()
        dist = self.dist
        for rank in range(self.machine.nprocs):
            shape = dist.local_shape(rank)
            mem = self.machine.memory(rank)
            if all(s > 0 for s in shape):
                mem.allocate(self._block_name(), shape, self.np_dtype, fill=fill)
            elif self._block_name() in mem:
                mem.free(self._block_name())

    def local(self, rank: int) -> np.ndarray:
        """Processor ``rank``'s local segment (zero-size if it owns nothing)."""
        mem = self.machine.memory(rank)
        if self._block_name() in mem:
            return mem[self._block_name()]
        return np.empty((0,) * self.ndim, dtype=self.np_dtype)

    def local_indices(self, rank: int) -> tuple[np.ndarray, ...] | None:
        """Cached per-dimension global indices of ``rank``'s segment."""
        if rank not in self._local_index_cache:
            self._local_index_cache[rank] = self.dist.local_index_arrays(rank)
        return self._local_index_cache[rank]

    def owning_ranks(self) -> list[int]:
        """Ranks that own at least one element."""
        return [
            r
            for r in range(self.machine.nprocs)
            if self.dist.local_size(r) > 0 and self.dist.local_index_arrays(r) is not None
        ]

    # -- oracle access ---------------------------------------------------------
    def get(self, index: Sequence[int] | int) -> float:
        """Read a global element (no communication accounting)."""
        index = self.descriptor.index_dom.check(index)
        rank = self.dist.owner(index)
        lidx = self.dist.global_to_local(rank, index)
        return self.local(rank)[lidx]

    def set(self, index: Sequence[int] | int, value) -> None:
        """Write a global element to *every* owner (keeps replicas equal)."""
        index = self.descriptor.index_dom.check(index)
        for rank in self.dist.owners(index):
            lidx = self.dist.global_to_local(rank, index)
            self.local(rank)[lidx] = value

    def to_global(self) -> np.ndarray:
        """Assemble the full array (primary copies win; no comm accounting)."""
        out = np.empty(self.shape, dtype=self.np_dtype)
        for rank in range(self.machine.nprocs):
            idx = self.local_indices(rank)
            if idx is None:
                continue
            if any(len(a) == 0 for a in idx):
                continue
            out[np.ix_(*idx)] = self.local(rank)
        return out

    def from_global(self, arr: np.ndarray) -> None:
        """Scatter a full array into every owner's segment (no accounting)."""
        arr = np.asarray(arr, dtype=self.np_dtype)
        if arr.shape != self.shape:
            raise ValueError(f"shape {arr.shape} != array shape {self.shape}")
        for rank in range(self.machine.nprocs):
            idx = self.local_indices(rank)
            if idx is None or any(len(a) == 0 for a in idx):
                continue
            self.local(rank)[...] = arr[np.ix_(*idx)]

    # -- SPMD access -------------------------------------------------------------
    def read_remote(self, reader: int, index: Sequence[int] | int) -> float:
        """Processor ``reader`` reads global ``index`` SPMD-style.

        If ``reader`` owns the element the read is local and free;
        otherwise one element-sized message from (an) owner to
        ``reader`` is recorded on the network.
        """
        index = self.descriptor.index_dom.check(index)
        owners = self.dist.owners(index)
        src = owners[0]
        for o in owners:
            if o == reader:
                src = o
                break
        value = self.local(src)[self.dist.global_to_local(src, index)]
        if src != reader:
            self.machine.network.send(src, reader, self.itemsize, tag=f"elem:{self.name}")
        return value

    def write_owner(self, writer: int, index: Sequence[int] | int, value) -> None:
        """Processor ``writer`` writes a global element under owner-computes.

        If ``writer`` owns the element the write is local; otherwise the
        value is shipped to each owner (one element message per owner).
        """
        index = self.descriptor.index_dom.check(index)
        for rank in self.dist.owners(index):
            if rank != writer:
                self.machine.network.send(
                    writer, rank, self.itemsize, tag=f"elem:{self.name}"
                )
            self.local(rank)[self.dist.global_to_local(rank, index)] = value

    # -- numpy conveniences ---------------------------------------------------------
    def fill(self, value: float) -> None:
        for rank in range(self.machine.nprocs):
            seg = self.local(rank)
            if seg.size:
                seg.fill(value)

    def __repr__(self) -> str:
        d = (
            repr(self.descriptor.dist.dtype)
            if self.descriptor.is_distributed
            else "<undistributed>"
        )
        return (
            f"DistributedArray({self.name!r}, shape={self.shape}, dist={d}, "
            f"dtype={self.np_dtype.name})"
        )
