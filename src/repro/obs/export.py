"""Export surfaces: span→Chrome-trace conversion and merged timelines.

:func:`chrome_trace` turns recorded runtime spans into the same
``chrome://tracing`` JSON that :func:`repro.sim.trace.to_chrome_trace`
emits for simulated timelines, and can merge both into one file: the
simulated machine keeps ``pid 0`` (one ``tid`` per virtual processor),
runtime spans get ``pid 1`` (one ``tid`` per Python thread).  Load the
result in ``chrome://tracing`` or Perfetto to see a served request and
the timeline it simulated side by side.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional

from .tracing import SpanRecord, finished_spans

__all__ = ["chrome_trace", "dump_chrome_trace"]

#: pid used for runtime spans (the simulator owns pid 0)
RUNTIME_PID = 1


def _span_events(spans: Iterable[SpanRecord]) -> List[dict]:
    events: List[dict] = []
    tids: dict = {}
    for s in spans:
        tid = tids.setdefault(s.thread, len(tids))
        args = {"trace_id": s.trace_id, "span_id": s.span_id}
        if s.parent_id:
            args["parent_id"] = s.parent_id
        if s.request_id:
            args["request_id"] = s.request_id
        args.update({k: v for k, v in s.attrs.items()
                     if isinstance(v, (str, int, float, bool, type(None)))})
        events.append({
            "name": s.name,
            "cat": "runtime",
            "ph": "X",
            "pid": RUNTIME_PID,
            "tid": tid,
            "ts": round(s.start * 1e6, 3),
            "dur": round(s.duration * 1e6, 3),
            "args": args,
        })
    events.extend(
        {"name": "thread_name", "ph": "M", "pid": RUNTIME_PID, "tid": tid,
         "args": {"name": thread}}
        for thread, tid in tids.items())
    if events:
        events.append({"name": "process_name", "ph": "M", "pid": RUNTIME_PID,
                       "tid": 0, "args": {"name": "repro runtime"}})
    return events


def chrome_trace(spans: Optional[Iterable[SpanRecord]] = None,
                 timeline=None) -> dict:
    """Build a ``chrome://tracing`` document from spans (and a timeline).

    ``spans`` defaults to every finished span in the ring buffer; pass
    a :class:`~repro.sim.timeline.Timeline` as ``timeline`` to merge
    the simulated machine's events into the same document.
    """
    if spans is None:
        spans = finished_spans()
    events = _span_events(spans)
    other = {"runtime_spans": sum(1 for e in events if e.get("ph") == "X")}
    if timeline is not None:
        from ..sim.trace import to_chrome_trace

        base = to_chrome_trace(timeline)
        merged = list(base.get("traceEvents", ()))
        merged.append({"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
                       "args": {"name": "simulated machine"}})
        merged.extend(events)
        events = merged
        other.update(base.get("otherData", {}))
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": other}


def dump_chrome_trace(path: str,
                      spans: Optional[Iterable[SpanRecord]] = None,
                      timeline=None) -> dict:
    """Write :func:`chrome_trace` output to ``path``; returns the dict."""
    doc = chrome_trace(spans, timeline)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
    return doc
