"""Structured tracing: ``span(...)`` + contextvars-propagated IDs.

The tracing half of :mod:`repro.obs`.  A span is a named, timed region
with arbitrary attributes; spans nest via a contextvar, so a
``session.plan`` span started in an executor thread automatically
parents the ``planner.search`` span opened deeper in the same call
chain.  Trace and request IDs ride the same mechanism: the serving
tier opens a :func:`request_scope` per HTTP request, and every span
(and log line) recorded inside it carries that request ID.

Finished spans land in a bounded in-process ring buffer
(:func:`finished_spans`) from which :func:`repro.obs.export.chrome_trace`
builds a ``chrome://tracing`` file.  Like the metrics side, recording
is guarded by the module switch in :mod:`repro.obs.metrics` — with
observability off, ``span(...)`` yields a no-op context manager.
"""

from __future__ import annotations

import contextlib
import threading
import time
import uuid
from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from .metrics import _SWITCH, counter

__all__ = [
    "SpanRecord",
    "clear_spans",
    "finished_spans",
    "get_request_id",
    "get_trace_id",
    "new_request_id",
    "request_scope",
    "set_request_id",
    "span",
]

#: wall-clock epoch paired with the perf_counter epoch below, so span
#: timestamps can be mapped back to absolute time
EPOCH_WALL = time.time()
_EPOCH_PERF = time.perf_counter()

_MAX_SPANS = 8192

_trace_id: ContextVar[Optional[str]] = ContextVar("repro_trace_id",
                                                  default=None)
_request_id: ContextVar[Optional[str]] = ContextVar("repro_request_id",
                                                    default=None)
_parent_span: ContextVar[Optional[str]] = ContextVar("repro_parent_span",
                                                     default=None)

_spans_lock = threading.Lock()
_finished: deque = deque(maxlen=_MAX_SPANS)

_SPANS_TOTAL = counter("repro_spans_total",
                       "Spans recorded, by span name.", ("name",))


def _now() -> float:
    """Seconds since the module epoch (monotonic)."""
    return time.perf_counter() - _EPOCH_PERF


def _new_id(nbytes: int = 8) -> str:
    return uuid.uuid4().hex[: nbytes * 2]


def new_request_id() -> str:
    """Mint a request ID (16 hex chars)."""
    return _new_id(8)


def get_trace_id() -> Optional[str]:
    """The trace ID propagated to the current context, if any."""
    return _trace_id.get()


def get_request_id() -> Optional[str]:
    """The request ID propagated to the current context, if any."""
    return _request_id.get()


def set_request_id(request_id: Optional[str]):
    """Bind a request ID to the current context; returns the reset token."""
    return _request_id.set(request_id)


@dataclass
class SpanRecord:
    """One finished span. Times are seconds since :data:`EPOCH_WALL`."""

    name: str
    span_id: str
    trace_id: str
    parent_id: Optional[str]
    request_id: Optional[str]
    start: float
    duration: float
    thread: str
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name, "span_id": self.span_id,
            "trace_id": self.trace_id, "parent_id": self.parent_id,
            "request_id": self.request_id, "start": self.start,
            "duration": self.duration, "thread": self.thread,
            "attrs": dict(self.attrs),
        }


@contextlib.contextmanager
def span(name: str, **attrs: Any) -> Iterator[Optional[SpanRecord]]:
    """Record a named, timed region.

    Yields the in-flight :class:`SpanRecord` (``None`` when observability
    is disabled) so callers can attach late attributes::

        with span("planner.search", workload="adi") as sp:
            plan = ...
            if sp is not None:
                sp.attrs["steps"] = len(plan.steps)
    """
    if not _SWITCH.on:
        yield None
        return
    trace_id = _trace_id.get()
    trace_token = None
    if trace_id is None:
        trace_id = _new_id(8)
        trace_token = _trace_id.set(trace_id)
    record = SpanRecord(
        name=name,
        span_id=_new_id(4),
        trace_id=trace_id,
        parent_id=_parent_span.get(),
        request_id=_request_id.get(),
        start=_now(),
        duration=0.0,
        thread=threading.current_thread().name,
        attrs=dict(attrs),
    )
    parent_token = _parent_span.set(record.span_id)
    try:
        yield record
    finally:
        record.duration = _now() - record.start
        _parent_span.reset(parent_token)
        if trace_token is not None:
            _trace_id.reset(trace_token)
        with _spans_lock:
            _finished.append(record)
        _SPANS_TOTAL.inc(name=name)


@contextlib.contextmanager
def request_scope(request_id: Optional[str] = None) -> Iterator[str]:
    """Bind a request ID (and a fresh trace ID) to the current context.

    The serving tier opens one of these per HTTP request; every span and
    metric label recorded inside inherits the IDs via contextvars.
    """
    rid = request_id or new_request_id()
    rid_token = _request_id.set(rid)
    trace_token = _trace_id.set(rid)
    try:
        yield rid
    finally:
        _trace_id.reset(trace_token)
        _request_id.reset(rid_token)


def finished_spans(name: Optional[str] = None,
                   request_id: Optional[str] = None) -> List[SpanRecord]:
    """A copy of the finished-span ring buffer, optionally filtered."""
    with _spans_lock:
        spans = list(_finished)
    if name is not None:
        spans = [s for s in spans if s.name == name]
    if request_id is not None:
        spans = [s for s in spans if s.request_id == request_id]
    return spans


def clear_spans() -> None:
    """Empty the finished-span ring buffer."""
    with _spans_lock:
        _finished.clear()
