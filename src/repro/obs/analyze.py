"""Attribution: where did the simulated time go, and why is it slow?

``python -m repro obs analyze --workload adi`` runs a workload through
the session ``trace`` stage and decomposes the simulated
:class:`~repro.sim.clock.Timeline` into a **per-phase attribution
table**: one row per kernel/communication tag, with per-processor-
averaged compute/comm/wait seconds that *sum exactly to the makespan*
(idle is the explicit remainder, never a rounding fudge).  On top of
the table, :meth:`Attribution.top_reasons` ranks the top-N reasons the
plan is slow — load imbalance, communication waits, barrier idling —
each with its estimated cost, so a regression flagged by the sentinel
(:mod:`repro.obs.compare`) comes with a first diagnosis.

:func:`span_breakdown` gives the same per-name accounting over the
runtime spans of :mod:`repro.obs.tracing` (PR 7's ring buffer), so the
served tier's time is attributable with the same vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, List, Optional

if TYPE_CHECKING:
    from ..sim.clock import Timeline
    from .tracing import SpanRecord

__all__ = [
    "Attribution",
    "PhaseRow",
    "Reason",
    "attribution",
    "analyze_workload",
    "span_breakdown",
]


@dataclass
class PhaseRow:
    """One attribution row: a phase (interval tag, or the bare kind for
    untagged intervals) with per-proc-averaged seconds by activity."""

    phase: str
    compute: float = 0.0
    comm: float = 0.0
    wait: float = 0.0

    @property
    def total(self) -> float:
        return self.compute + self.comm + self.wait

    def to_json(self) -> dict:
        return {
            "phase": self.phase,
            "compute_seconds": self.compute,
            "comm_seconds": self.comm,
            "wait_seconds": self.wait,
            "total_seconds": self.total,
        }


@dataclass
class Reason:
    """One ranked explanation of lost time."""

    kind: str  # "imbalance" | "wait" | "comm" | "idle"
    seconds: float  # estimated per-proc cost
    detail: str

    def to_json(self) -> dict:
        return {"kind": self.kind, "seconds": self.seconds,
                "detail": self.detail}


@dataclass
class Attribution:
    """Per-phase decomposition of one simulated timeline.

    The accounting identity: ``sum(row.total) + idle == makespan``
    (all quantities per-proc-averaged), exact up to float addition
    order — asserted by the test suite, printed by :meth:`table`.
    """

    workload: Optional[str]
    nprocs: int
    cost_model: str
    overlap: bool
    makespan: float
    rows: List[PhaseRow] = field(default_factory=list)
    idle: float = 0.0
    imbalance: float = 1.0
    efficiency: float = 1.0
    per_proc_busy: List[float] = field(default_factory=list)
    barriers: int = 0

    @property
    def accounted(self) -> float:
        """Per-proc-averaged seconds covered by rows + idle."""
        return sum(r.total for r in self.rows) + self.idle

    # -- findings ----------------------------------------------------------
    def top_reasons(self, k: int = 3) -> List[Reason]:
        """The top-``k`` reasons this plan is slow, costliest first."""
        reasons: List[Reason] = []
        if self.per_proc_busy:
            mean = sum(self.per_proc_busy) / len(self.per_proc_busy)
            worst = max(range(len(self.per_proc_busy)),
                        key=lambda r: self.per_proc_busy[r])
            excess = self.per_proc_busy[worst] - mean
            if excess > 0:
                reasons.append(Reason(
                    "imbalance", excess,
                    f"load imbalance {self.imbalance:.2f}x: P{worst} is busy "
                    f"{excess * 1e3:.3f} ms longer than the mean processor",
                ))
        for row in self.rows:
            if row.wait > 0:
                reasons.append(Reason(
                    "wait", row.wait,
                    f"phase {row.phase!r}: {row.wait * 1e3:.3f} ms/proc "
                    f"blocked waiting on communication",
                ))
            if row.comm > 0:
                reasons.append(Reason(
                    "comm", row.comm,
                    f"phase {row.phase!r}: {row.comm * 1e3:.3f} ms/proc "
                    f"of message occupancy",
                ))
        if self.idle > 0:
            detail = (
                f"{self.idle * 1e3:.3f} ms/proc idle outside recorded "
                f"intervals (end-of-run skew"
                + (f"; {self.barriers} barriers" if self.barriers else "")
                + ")"
            )
            reasons.append(Reason("idle", self.idle, detail))
        reasons.sort(key=lambda r: r.seconds, reverse=True)
        return reasons[:k]

    # -- rendering ---------------------------------------------------------
    def table(self) -> str:
        """The per-phase attribution table; the footer re-states the
        accounting identity against the simulated makespan."""
        name = self.workload or "timeline"
        mode = "split-phase" if self.overlap else "blocking"
        header = (
            f"attribution: {name} on {self.nprocs} procs "
            f"({self.cost_model}, {mode}) — per-proc-averaged ms"
        )
        lines = [header,
                 f"  {'phase':24s} {'compute':>10s} {'comm':>10s} "
                 f"{'wait':>10s} {'total':>10s} {'share':>7s}"]
        span = self.makespan or 1.0
        for row in sorted(self.rows, key=lambda r: r.total, reverse=True):
            lines.append(
                f"  {row.phase:24s} {row.compute * 1e3:10.3f} "
                f"{row.comm * 1e3:10.3f} {row.wait * 1e3:10.3f} "
                f"{row.total * 1e3:10.3f} {row.total / span:6.1%}"
            )
        lines.append(
            f"  {'(idle)':24s} {'':10s} {'':10s} {'':10s} "
            f"{self.idle * 1e3:10.3f} {self.idle / span:6.1%}"
        )
        lines.append(
            f"  {'= makespan':24s} {'':10s} {'':10s} {'':10s} "
            f"{self.accounted * 1e3:10.3f} (simulated "
            f"{self.makespan * 1e3:.3f} ms)"
        )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "schema": "repro-obs-attribution/1",
            "workload": self.workload,
            "nprocs": self.nprocs,
            "cost_model": self.cost_model,
            "overlap": self.overlap,
            "makespan": self.makespan,
            "rows": [r.to_json() for r in self.rows],
            "idle_seconds": self.idle,
            "accounted_seconds": self.accounted,
            "imbalance": self.imbalance,
            "efficiency": self.efficiency,
            "barriers": self.barriers,
            "top_reasons": [r.to_json() for r in self.top_reasons()],
        }


def attribution(
    timeline: "Timeline", workload: str | None = None
) -> Attribution:
    """Decompose a simulated timeline into per-phase rows.

    Intervals group by their ``tag`` (the kernel/communication label
    the engine attached); untagged intervals group under their kind.
    Quantities are per-proc averages, so rows + idle sum to the
    makespan: ``idle`` is defined as the exact remainder.
    """
    nprocs = timeline.nprocs
    rows: dict[str, PhaseRow] = {}
    for proc in timeline.procs:
        for iv in proc.intervals:
            phase = iv.tag or f"({iv.kind})"
            row = rows.get(phase)
            if row is None:
                row = rows[phase] = PhaseRow(phase=phase)
            share = iv.duration / nprocs
            if iv.kind == "compute":
                row.compute += share
            elif iv.kind in ("comm", "post"):
                row.comm += share
            else:  # "wait"
                row.wait += share
    accounted = sum(r.total for r in rows.values())
    idle = timeline.makespan - accounted
    if abs(idle) < 1e-12 * max(1.0, timeline.makespan):
        idle = 0.0  # float addition-order noise, not real idle time
    per_proc_busy = [p.busy() for p in timeline.procs]
    return Attribution(
        workload=workload,
        nprocs=nprocs,
        cost_model=timeline.cost_model,
        overlap=timeline.overlap,
        makespan=timeline.makespan,
        rows=list(rows.values()),
        idle=idle,
        imbalance=timeline.imbalance(),
        efficiency=timeline.efficiency(),
        per_proc_busy=per_proc_busy,
        barriers=len(timeline.barriers),
    )


def analyze_workload(
    workload: str,
    *,
    nprocs: int = 4,
    cost_model: str = "Paragon",
    overlap: bool = False,
    **params,
) -> Attribution:
    """Trace one registered workload and attribute its timeline.

    The flight path of ``python -m repro obs analyze``: one session
    ``trace`` stage, then :func:`attribution` over the blocking
    (default) or split-phase timeline.
    """
    from ..api import session

    with session(nprocs=nprocs, cost_model=cost_model) as sess:
        result = sess.workload(workload, **params).trace(overlap=overlap)
    timeline = result.split if overlap else result.blocking
    return attribution(timeline, workload=workload)


def span_breakdown(
    spans: Optional[Iterable["SpanRecord"]] = None,
) -> List[dict]:
    """Aggregate runtime spans by name: count, total/mean/max seconds.

    ``spans`` defaults to the finished-span ring buffer.  Sorted by
    total time, so the first row is where the runtime's time went.
    """
    from .tracing import finished_spans

    if spans is None:
        spans = finished_spans()
    agg: dict[str, dict] = {}
    for s in spans:
        row = agg.get(s.name)
        if row is None:
            row = agg[s.name] = {
                "name": s.name, "count": 0, "total_seconds": 0.0,
                "max_seconds": 0.0,
            }
        row["count"] += 1
        row["total_seconds"] += s.duration
        row["max_seconds"] = max(row["max_seconds"], s.duration)
    rows = sorted(agg.values(), key=lambda r: r["total_seconds"],
                  reverse=True)
    for row in rows:
        row["mean_seconds"] = row["total_seconds"] / row["count"]
    return rows
