"""Process-wide metrics: Counter/Gauge/Histogram plus a Prometheus encoder.

This is the measurement half of :mod:`repro.obs`.  A single module-level
:class:`MetricsRegistry` (``registry``) owns every instrument; hot-path
modules create their instruments once at import time and call
``inc``/``observe``/``set`` per operation.  Each mutating call checks a
module-level switch first, so with observability disabled (the default)
the cost of an instrumented seam is one function call and a branch —
the ``python -m repro bench --check`` op counts and wall-clock gates
are unaffected.

Thread-safety contract: every instrument guards its samples with its
own lock, and the encoder copies each instrument's state under that
same lock.  A scraper therefore never observes a torn histogram (the
``+Inf`` bucket, ``_count`` and ``_sum`` of one sample always describe
the same set of observations) — see ``tests/obs/test_concurrent_metrics.py``.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Callable, Dict, Iterable, List, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "histogram",
    "registry",
    "render_prometheus",
    "set_enabled",
]

#: default histogram buckets (seconds) — tuned for request latencies
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class _Switch:
    """The module-level on/off switch, shared by every instrument."""

    __slots__ = ("on",)

    def __init__(self, on: bool):
        self.on = on


_SWITCH = _Switch(os.environ.get("REPRO_OBS", "") not in ("", "0", "false"))


def enabled() -> bool:
    """Is observability currently recording?"""
    return _SWITCH.on


def set_enabled(on: bool) -> bool:
    """Flip the switch; returns the previous state."""
    prev = _SWITCH.on
    _SWITCH.on = bool(on)
    return prev


def enable() -> bool:
    """Turn observability on (returns the previous state)."""
    return set_enabled(True)


def disable() -> bool:
    """Turn observability off (returns the previous state)."""
    return set_enabled(False)


def _label_key(labelnames: Tuple[str, ...], labels: Dict[str, object]) -> Tuple[str, ...]:
    if len(labels) != len(labelnames):
        raise ValueError(
            f"expected labels {labelnames}, got {tuple(sorted(labels))}")
    try:
        return tuple(str(labels[name]) for name in labelnames)
    except KeyError as exc:  # pragma: no cover - defensive
        raise ValueError(f"missing label {exc} (expected {labelnames})") from exc


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\")
                 .replace("\n", r"\n")
                 .replace('"', r'\"'))


def _escape_help(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(labelnames: Tuple[str, ...], key: Tuple[str, ...],
                   extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = [f'{n}="{_escape_label(v)}"' for n, v in zip(labelnames, key)]
    pairs += [f'{n}="{_escape_label(v)}"' for n, v in extra]
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Instrument:
    """Base: a named, labeled instrument with its own lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Iterable[str] = ()):
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._lock = threading.Lock()
        self._values: Dict[Tuple[str, ...], object] = {}

    def clear(self) -> None:
        """Drop every recorded sample (registration survives)."""
        with self._lock:
            self._values.clear()

    # -- encoding ---------------------------------------------------

    def _header(self) -> List[str]:
        return [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]

    def render(self) -> List[str]:  # pragma: no cover - overridden
        raise NotImplementedError

    def snapshot(self) -> dict:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing count, optionally labeled."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not _SWITCH.on:
            return
        if amount < 0:
            raise ValueError("counters can only increase")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return float(self._values.get(key, 0.0))

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return float(sum(self._values.values()))

    def render(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        lines = self._header()
        for key, val in items:
            lines.append(
                f"{self.name}{_render_labels(self.labelnames, key)} {_fmt(val)}")
        return lines

    def snapshot(self) -> dict:
        with self._lock:
            items = sorted(self._values.items())
        return {
            "type": self.kind, "help": self.help,
            "labelnames": list(self.labelnames),
            "samples": [{"labels": dict(zip(self.labelnames, k)), "value": v}
                        for k, v in items],
        }


class Gauge(_Instrument):
    """A value that can go up and down (pool sizes, cache entries)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        if not _SWITCH.on:
            return
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not _SWITCH.on:
            return
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return float(self._values.get(key, 0.0))

    render = Counter.render
    snapshot = Counter.snapshot


class Histogram(_Instrument):
    """Cumulative-bucket histogram in the Prometheus style.

    Per label-set state is ``[count, sum, bucket_counts]`` mutated under
    the instrument lock, so ``_count``/``_sum``/``_bucket`` are always
    mutually consistent in any encoded snapshot.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str, labelnames: Iterable[str] = (),
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets: Tuple[float, ...] = bounds

    def observe(self, value: float, **labels: object) -> None:
        if not _SWITCH.on:
            return
        key = _label_key(self.labelnames, labels)
        value = float(value)
        with self._lock:
            state = self._values.get(key)
            if state is None:
                state = [0, 0.0, [0] * len(self.buckets)]
                self._values[key] = state
            state[0] += 1
            state[1] += value
            counts = state[2]
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break

    def value(self, **labels: object) -> Tuple[int, float]:
        """``(count, sum)`` for one label combination."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            state = self._values.get(key)
            return (0, 0.0) if state is None else (state[0], state[1])

    def _copy(self) -> List[Tuple[Tuple[str, ...], int, float, List[int]]]:
        with self._lock:
            return [(k, s[0], s[1], list(s[2]))
                    for k, s in sorted(self._values.items())]

    def render(self) -> List[str]:
        lines = self._header()
        for key, count, total, counts in self._copy():
            cum = 0
            for bound, n in zip(self.buckets, counts):
                cum += n
                label = _render_labels(self.labelnames, key,
                                       (("le", _fmt(bound)),))
                lines.append(f"{self.name}_bucket{label} {cum}")
            label = _render_labels(self.labelnames, key, (("le", "+Inf"),))
            lines.append(f"{self.name}_bucket{label} {count}")
            plain = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}_sum{plain} {_fmt(total)}")
            lines.append(f"{self.name}_count{plain} {count}")
        return lines

    def snapshot(self) -> dict:
        samples = []
        for key, count, total, counts in self._copy():
            samples.append({
                "labels": dict(zip(self.labelnames, key)),
                "count": count, "sum": total,
                "buckets": {_fmt(b): n for b, n in zip(self.buckets, counts)},
            })
        return {
            "type": self.kind, "help": self.help,
            "labelnames": list(self.labelnames),
            "buckets": [float(b) for b in self.buckets],
            "samples": samples,
        }


class MetricsRegistry:
    """Get-or-create home for every instrument in the process.

    ``collectors`` are zero-argument callables run just before each
    encode/snapshot — the seam for pull-style sources (cache ``stats()``
    dicts, pool occupancy) that are cheaper to read at scrape time than
    to push on every operation.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}
        self._collectors: List[Callable[[], None]] = []

    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: Iterable[str], **kwargs) -> _Instrument:
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}{existing.labelnames}")
                return existing
            inst = cls(name, help, labelnames, **kwargs)
            self._instruments[name] = inst
            return inst

    def counter(self, name: str, help: str = "",
                labelnames: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    def get(self, name: str) -> _Instrument | None:
        with self._lock:
            return self._instruments.get(name)

    def add_collector(self, fn: Callable[[], None]) -> None:
        with self._lock:
            if fn not in self._collectors:
                self._collectors.append(fn)

    def remove_collector(self, fn: Callable[[], None]) -> None:
        with self._lock:
            if fn in self._collectors:
                self._collectors.remove(fn)

    def _collect(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        was = set_enabled(True)  # collectors may set gauges
        try:
            for fn in collectors:
                fn()
        finally:
            set_enabled(was)

    def render(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        self._collect()
        with self._lock:
            instruments = sorted(self._instruments.values(),
                                 key=lambda m: m.name)
        lines: List[str] = []
        for inst in instruments:
            lines.extend(inst.render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """JSON-friendly dump of every instrument."""
        self._collect()
        with self._lock:
            instruments = sorted(self._instruments.values(),
                                 key=lambda m: m.name)
        return {inst.name: inst.snapshot() for inst in instruments}

    def reset(self) -> None:
        """Zero every sample; registrations and collectors survive."""
        with self._lock:
            instruments = list(self._instruments.values())
        for inst in instruments:
            inst.clear()


#: the process-wide default registry
registry = MetricsRegistry()


def counter(name: str, help: str = "",
            labelnames: Iterable[str] = ()) -> Counter:
    """Get-or-create a :class:`Counter` in the default registry."""
    return registry.counter(name, help, labelnames)


def gauge(name: str, help: str = "", labelnames: Iterable[str] = ()) -> Gauge:
    """Get-or-create a :class:`Gauge` in the default registry."""
    return registry.gauge(name, help, labelnames)


def histogram(name: str, help: str = "", labelnames: Iterable[str] = (),
              buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
    """Get-or-create a :class:`Histogram` in the default registry."""
    return registry.histogram(name, help, labelnames, buckets)


def render_prometheus() -> str:
    """Encode the default registry in Prometheus text format."""
    return registry.render()
