"""The perf flight recorder: always-on bounded capture + incident dumps.

Metrics and spans (PR 7) are *opt-in* — off by default so the hot-path
gates hold.  The flight recorder is the opposite: an **always-on**,
bounded, cheap ring buffer of the last-N structured notes (request
outcomes, stage transitions, errors), so that when something breaks in
a process that never enabled observability there is still a recent
history to dump.  A note is one immutable dict appended under a lock;
capacity bounds memory; recording cost is one dict build plus a deque
append.

:func:`incident` assembles a **structured incident record** from the
crash site: the reason, exception details, the trace/request IDs bound
to the current context (contextvars propagate them even with metrics
off), the request's recorded spans (or the most recent spans when no
request ID is bound), and the recorder's recent notes.  The serving
tier dumps one on every 500 (:mod:`repro.serve.service`), and session
stage wrappers dump one on stage failure (:mod:`repro.api.handles`).
Set ``REPRO_INCIDENT_DIR`` to also write each record to
``incident-<id>.json`` in that directory (CI uploads them on failure).
"""

from __future__ import annotations

import json
import os
import threading
import time
import traceback as _traceback
import uuid
from collections import deque
from typing import List, Optional

__all__ = [
    "FlightRecorder",
    "INCIDENT_SCHEMA",
    "flight_recorder",
    "incident",
    "note",
]

INCIDENT_SCHEMA = "repro-incident/1"

#: environment variable naming a directory incident records are
#: mirrored into as JSON files (unset = in-memory only)
INCIDENT_DIR_ENV = "REPRO_INCIDENT_DIR"

#: how many recent notes ride along inside one incident record
_NOTES_PER_INCIDENT = 64
#: how many recent spans ride along when no request ID filter applies
_SPANS_PER_INCIDENT = 32


class FlightRecorder:
    """Bounded, thread-safe, always-on recorder of structured notes.

    Notes are immutable once appended (the recorder stores the dict it
    built, and readers get shallow copies), so a dumper racing N
    writer threads sees only whole records — see
    ``tests/obs/test_flight.py``.
    """

    def __init__(self, capacity: int = 512, incident_capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._notes: deque = deque(maxlen=self.capacity)
        self._incidents: deque = deque(maxlen=int(incident_capacity))
        self._seq = 0

    # -- recording ---------------------------------------------------------
    def note(self, kind: str, **fields) -> dict:
        """Append one note; returns the stored record."""
        with self._lock:
            self._seq += 1
            record = {
                "seq": self._seq,
                "t": time.time(),
                "thread": threading.current_thread().name,
                "kind": str(kind),
                **fields,
            }
            self._notes.append(record)
        return record

    def notes(self, kind: str | None = None) -> List[dict]:
        """Shallow copies of the recorded notes, oldest first."""
        with self._lock:
            records = list(self._notes)
        if kind is not None:
            records = [r for r in records if r.get("kind") == kind]
        return [dict(r) for r in records]

    # -- incidents ---------------------------------------------------------
    def incident(
        self,
        reason: str,
        *,
        error: BaseException | None = None,
        request_id: str | None = None,
        trace_id: str | None = None,
        attrs: dict | None = None,
        dump_dir: str | None = None,
    ) -> dict:
        """Assemble, store, and (optionally) write one incident record.

        ``request_id``/``trace_id`` default to the IDs bound to the
        current context; ``dump_dir`` defaults to the
        ``REPRO_INCIDENT_DIR`` environment variable.
        """
        from .tracing import finished_spans, get_request_id, get_trace_id

        request_id = request_id or get_request_id()
        trace_id = trace_id or get_trace_id()
        if request_id:
            spans = finished_spans(request_id=request_id)
        else:
            spans = finished_spans()[-_SPANS_PER_INCIDENT:]
        error_info = None
        if error is not None:
            error_info = {
                "type": type(error).__name__,
                "message": str(error),
                "traceback": "".join(
                    _traceback.format_exception(
                        type(error), error, error.__traceback__
                    )
                ),
            }
        record = {
            "schema": INCIDENT_SCHEMA,
            "incident_id": uuid.uuid4().hex[:16],
            "recorded_at": time.time(),
            "reason": str(reason),
            "request_id": request_id,
            "trace_id": trace_id,
            "error": error_info,
            "attrs": dict(attrs or {}),
            "spans": [s.to_dict() for s in spans],
            "recent_notes": self.notes()[-_NOTES_PER_INCIDENT:],
        }
        with self._lock:
            self._incidents.append(record)
        self.note(
            "incident", incident_id=record["incident_id"], reason=reason,
            request_id=request_id,
        )
        dump_dir = dump_dir or os.environ.get(INCIDENT_DIR_ENV)
        if dump_dir:
            try:
                os.makedirs(dump_dir, exist_ok=True)
                path = os.path.join(
                    dump_dir, f"incident-{record['incident_id']}.json"
                )
                with open(path, "w", encoding="utf-8") as fh:
                    json.dump(record, fh, indent=2, default=str)
                record["dumped_to"] = path
            except OSError:
                pass  # incident capture must never raise at a crash site
        return record

    def incidents(self) -> List[dict]:
        """Stored incident records, oldest first."""
        with self._lock:
            return list(self._incidents)

    def last_incident(self) -> Optional[dict]:
        with self._lock:
            return self._incidents[-1] if self._incidents else None

    # -- lifecycle ---------------------------------------------------------
    def reset(self) -> None:
        """Drop every note and incident (sequence numbers keep rising)."""
        with self._lock:
            self._notes.clear()
            self._incidents.clear()


#: the process-wide recorder every seam writes to
flight_recorder = FlightRecorder()


def note(kind: str, **fields) -> dict:
    """Append a note to the process-wide :data:`flight_recorder`."""
    return flight_recorder.note(kind, **fields)


def incident(reason: str, **kwargs) -> dict:
    """Record an incident on the process-wide :data:`flight_recorder`."""
    return flight_recorder.incident(reason, **kwargs)
