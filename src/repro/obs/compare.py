"""The regression sentinel: diff a bench run against a baseline.

``python -m repro bench --compare`` (and ``python -m repro obs
compare``) answer "did this change make anything slower, and where?"
with an automated verdict instead of a human eyeballing two JSON
files:

- **hard fail** — the bitwise contract broke: a bench's op counts
  (messages, bytes, remote reads, events, plan costs) drifted from the
  baseline, or a vectorized path diverged from its reference
  (``match: false``).  Op counts are deterministic functions of the
  code, so *any* drift is a real behaviour change.
- **soft fail** — wall-clock drifted beyond a tolerance band.  The
  band comes from the trajectory's own noise when enough comparable
  history exists (``mean + 3σ`` over same-size, same-machine-class
  samples), else from a relative tolerance on the baseline figure.
  Wall clock is machine-dependent, so this is a separate, softer exit
  code CI can choose to tolerate.

Exit-code contract (the CI gate): 0 clean, :data:`EXIT_HARD` (2) on
any hard failure, :data:`EXIT_SOFT` (3) when only soft failures exist.

Baselines resolve in order: an explicit report path, the latest
compatible trajectory entry (same kind and smoke flag), then the
committed snapshot (``BENCH_PERF.json`` / ``BENCH_SERVE.json``).  A
smoke-run report is **refused** as a baseline for a full-size run
(:class:`BaselineError`): smoke sizes make its op counts and timings
meaningless as a full-size reference.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import List, Optional

from .trajectory import TrajectoryStore, env_digest

__all__ = [
    "BaselineError",
    "BenchDelta",
    "CompareReport",
    "EXIT_HARD",
    "EXIT_SOFT",
    "DEFAULT_WALL_TOLERANCE",
    "compare_adapt_reports",
    "compare_chaos_reports",
    "compare_perf_reports",
    "compare_serve_reports",
    "load_report",
    "resolve_baseline",
]

#: exit code for a broken bitwise contract (op/byte-count drift)
EXIT_HARD = 2
#: exit code for wall-clock drift beyond the tolerance band
EXIT_SOFT = 3

#: relative wall-clock tolerance when the trajectory has too little
#: history for a noise band (current may be up to 2x the baseline)
DEFAULT_WALL_TOLERANCE = 1.0


class BaselineError(SystemExit):
    """The chosen baseline is unusable (missing, wrong kind, or a
    smoke run offered as a full-size reference)."""

    def __init__(self, message: str):
        super().__init__(f"baseline error: {message}")
        self.message = message


@dataclass
class BenchDelta:
    """One bench's comparison outcome."""

    name: str
    verdict: str  # "ok" | "soft_fail" | "hard_fail" | "skipped"
    reasons: List[str] = field(default_factory=list)
    baseline_seconds: Optional[float] = None
    current_seconds: Optional[float] = None
    wall_limit: Optional[float] = None
    wall_source: Optional[str] = None  # "trajectory_noise" | "relative"

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "verdict": self.verdict,
            "reasons": list(self.reasons),
            "baseline_seconds": self.baseline_seconds,
            "current_seconds": self.current_seconds,
            "wall_limit": self.wall_limit,
            "wall_source": self.wall_source,
        }


@dataclass
class CompareReport:
    """The sentinel's full verdict over one baseline/current pair."""

    kind: str
    baseline_source: str
    deltas: List[BenchDelta] = field(default_factory=list)

    @property
    def hard_failures(self) -> List[BenchDelta]:
        return [d for d in self.deltas if d.verdict == "hard_fail"]

    @property
    def soft_failures(self) -> List[BenchDelta]:
        return [d for d in self.deltas if d.verdict == "soft_fail"]

    @property
    def ok(self) -> bool:
        return not self.hard_failures and not self.soft_failures

    @property
    def exit_code(self) -> int:
        if self.hard_failures:
            return EXIT_HARD
        if self.soft_failures:
            return EXIT_SOFT
        return 0

    def to_json(self) -> dict:
        return {
            "schema": "repro-bench-compare/1",
            "kind": self.kind,
            "baseline_source": self.baseline_source,
            "exit_code": self.exit_code,
            "deltas": [d.to_json() for d in self.deltas],
        }

    def summary(self) -> str:
        lines = [
            f"regression sentinel ({self.kind}) vs {self.baseline_source}:"
        ]
        for d in self.deltas:
            wall = ""
            if d.baseline_seconds is not None and d.current_seconds is not None:
                wall = (
                    f"  {d.baseline_seconds * 1e3:9.2f} ms"
                    f" -> {d.current_seconds * 1e3:9.2f} ms"
                )
            lines.append(f"  {d.name:26s} {d.verdict:9s}{wall}")
            for reason in d.reasons:
                lines.append(f"      - {reason}")
        n_hard, n_soft = len(self.hard_failures), len(self.soft_failures)
        if n_hard:
            lines.append(f"  VERDICT: HARD FAIL ({n_hard} bench(es); exit {EXIT_HARD})")
        elif n_soft:
            lines.append(f"  VERDICT: soft fail ({n_soft} bench(es); exit {EXIT_SOFT})")
        else:
            lines.append("  VERDICT: clean (exit 0)")
        return "\n".join(lines)


# -- baseline resolution ----------------------------------------------------

def load_report(path: str) -> dict:
    """Load a bench report from a JSON snapshot or a trajectory JSONL
    (the latest entry's report, regardless of kind)."""
    if not os.path.exists(path):
        raise BaselineError(f"no such baseline file: {path!r}")
    if path.endswith((".jsonl", ".ndjson")):
        latest = TrajectoryStore(path).latest()
        if latest is None:
            raise BaselineError(f"trajectory {path!r} has no usable entries")
        return latest["report"]
    with open(path, "r", encoding="utf-8") as fh:
        try:
            return json.load(fh)
        except json.JSONDecodeError as exc:
            raise BaselineError(f"unparseable baseline {path!r}: {exc}")


def _check_baseline_compatible(
    baseline: dict, current: dict, source: str, kind: str
) -> None:
    expected = {
        "perf": "repro-bench-perf",
        "serve": "repro-bench-serve",
        "chaos": "repro-bench-chaos",
        "adapt": "repro-bench-adapt",
    }[kind]
    schema = str(baseline.get("schema", ""))
    if not schema.startswith(expected):
        raise BaselineError(
            f"{source} is not a {kind} bench report "
            f"(schema {schema!r}, expected {expected}/*)"
        )
    if bool(baseline.get("smoke")) and not bool(current.get("smoke")):
        raise BaselineError(
            f"{source} is a smoke-sized run and cannot baseline a "
            f"full-size run — regenerate it with "
            f"`python -m repro bench` (no --smoke) and commit the result"
        )


def resolve_baseline(
    current: dict,
    *,
    kind: str = "perf",
    baseline_path: str | None = None,
    trajectory: TrajectoryStore | None = None,
) -> tuple[dict, str]:
    """Find the baseline report for ``current``; returns (report, source).

    Explicit path > latest compatible trajectory entry (same kind and
    smoke flag) > the committed snapshot file.  Every candidate passes
    the smoke-as-baseline refusal check.
    """
    if baseline_path:
        report = load_report(baseline_path)
        _check_baseline_compatible(report, current, baseline_path, kind)
        return report, baseline_path

    if trajectory is not None:
        entry = trajectory.latest(kind=kind, smoke=bool(current.get("smoke")))
        if entry is not None:
            source = f"{trajectory.path} (latest {kind} entry)"
            _check_baseline_compatible(entry["report"], current, source, kind)
            return entry["report"], source

    fallback = {
        "perf": "BENCH_PERF.json",
        "serve": "BENCH_SERVE.json",
        "chaos": "BENCH_CHAOS.json",
        "adapt": "BENCH_ADAPT.json",
    }[kind]
    if os.path.exists(fallback):
        report = load_report(fallback)
        _check_baseline_compatible(report, current, fallback, kind)
        return report, fallback
    raise BaselineError(
        f"no baseline found: pass --baseline, append runs to the "
        f"trajectory, or commit {fallback}"
    )


# -- perf comparison --------------------------------------------------------

def _wall_limit(
    bench: dict,
    baseline_bench: dict,
    *,
    trajectory: TrajectoryStore | None,
    current: dict,
    wall_tolerance: float,
) -> tuple[Optional[float], str]:
    """The upper wall-clock bound for one bench and where it came from."""
    if trajectory is not None:
        env = current.get("env") or {}
        band = trajectory.noise_band(
            bench["name"],
            smoke=bool(current.get("smoke")),
            size=bench.get("size"),
            env_key=env_digest(env) if env else None,
        )
        if band is not None:
            return band, "trajectory_noise"
    base = baseline_bench.get("vectorized_seconds")
    if isinstance(base, (int, float)):
        return float(base) * (1.0 + wall_tolerance), "relative"
    return None, "none"


def compare_perf_reports(
    baseline: dict,
    current: dict,
    *,
    baseline_source: str = "baseline",
    trajectory: TrajectoryStore | None = None,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
) -> CompareReport:
    """Diff two ``repro-bench-perf`` reports bench by bench."""
    report = CompareReport(kind="perf", baseline_source=baseline_source)
    base_by_name = {b["name"]: b for b in baseline.get("benches", ())}
    for bench in current.get("benches", ()):
        name = bench["name"]
        delta = BenchDelta(
            name=name,
            verdict="ok",
            current_seconds=bench.get("vectorized_seconds"),
        )
        report.deltas.append(delta)

        # the run's own bitwise contract is a hard gate regardless of
        # what the baseline says
        if not bench.get("match", False):
            delta.verdict = "hard_fail"
            delta.reasons.append(
                "vectorized path diverged from its reference oracle "
                "(match: false)"
            )

        base = base_by_name.get(name)
        if base is None:
            delta.reasons.append("bench absent from baseline; ops not compared")
            continue
        delta.baseline_seconds = base.get("vectorized_seconds")

        if base.get("size") != bench.get("size"):
            delta.reasons.append(
                f"sizes differ (baseline {base.get('size')} vs current "
                f"{bench.get('size')}); op counts not comparable"
            )
            continue

        # hard gate: op/byte-count drift against the baseline
        for side in ("reference_ops", "vectorized_ops"):
            b_ops, c_ops = base.get(side, {}), bench.get(side, {})
            if b_ops != c_ops:
                drifted = sorted(
                    k
                    for k in set(b_ops) | set(c_ops)
                    if b_ops.get(k) != c_ops.get(k)
                )
                details = ", ".join(
                    f"{k}: {b_ops.get(k)} -> {c_ops.get(k)}" for k in drifted
                )
                delta.verdict = "hard_fail"
                delta.reasons.append(f"{side} drifted ({details})")

        # soft gate: wall-clock drift beyond the tolerance band
        cur_s = bench.get("vectorized_seconds")
        limit, source = _wall_limit(
            bench, base, trajectory=trajectory, current=current,
            wall_tolerance=wall_tolerance,
        )
        delta.wall_limit = limit
        delta.wall_source = source
        if (
            delta.verdict == "ok"
            and isinstance(cur_s, (int, float))
            and limit is not None
            and cur_s > limit
        ):
            delta.verdict = "soft_fail"
            delta.reasons.append(
                f"wall clock {cur_s * 1e3:.2f} ms exceeds the "
                f"{source} band ({limit * 1e3:.2f} ms)"
            )
    missing = sorted(set(base_by_name) - {d.name for d in report.deltas})
    for name in missing:
        report.deltas.append(
            BenchDelta(
                name=name,
                verdict="skipped",
                reasons=["present in baseline but not run (e.g. --only)"],
            )
        )
    return report


# -- serve comparison -------------------------------------------------------

def compare_serve_reports(
    baseline: dict,
    current: dict,
    *,
    baseline_source: str = "baseline",
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
) -> CompareReport:
    """Diff two ``repro-bench-serve`` reports.

    Hard gates: failed requests and byte-identity (the serving
    contract).  Soft gates: repeated-phase hit-rate drop and p50
    latency drift per phase.
    """
    report = CompareReport(kind="serve", baseline_source=baseline_source)
    overall = BenchDelta(name="serving_contract", verdict="ok")
    report.deltas.append(overall)
    if current.get("total_failures", 0):
        overall.verdict = "hard_fail"
        overall.reasons.append(
            f"{current['total_failures']} failed request(s)"
        )
    if not current.get("byte_identical", True):
        overall.verdict = "hard_fail"
        overall.reasons.append(
            "identical requests returned non-identical bytes"
        )

    base_phases = {p["name"]: p for p in baseline.get("phases", ())}
    for phase in current.get("phases", ()):
        name = phase["name"]
        delta = BenchDelta(name=f"phase:{name}", verdict="ok")
        report.deltas.append(delta)
        base = base_phases.get(name)
        cur_p50 = (phase.get("latency") or {}).get("p50_ms")
        delta.current_seconds = (
            cur_p50 / 1e3 if isinstance(cur_p50, (int, float)) else None
        )
        if base is None:
            delta.reasons.append("phase absent from baseline")
            continue
        base_rate = base.get("cache_hit_rate")
        cur_rate = phase.get("cache_hit_rate")
        if (
            name == "repeated"
            and isinstance(base_rate, (int, float))
            and isinstance(cur_rate, (int, float))
            and cur_rate < base_rate - 0.2
        ):
            delta.verdict = "soft_fail"
            delta.reasons.append(
                f"repeated-phase hit rate fell {base_rate:.0%} -> {cur_rate:.0%}"
            )
        base_p50 = (base.get("latency") or {}).get("p50_ms")
        if isinstance(base_p50, (int, float)) and isinstance(
            cur_p50, (int, float)
        ):
            delta.baseline_seconds = base_p50 / 1e3
            limit = base_p50 * (1.0 + wall_tolerance)
            delta.wall_limit = limit / 1e3
            delta.wall_source = "relative"
            if delta.verdict == "ok" and cur_p50 > limit:
                delta.verdict = "soft_fail"
                delta.reasons.append(
                    f"p50 latency {cur_p50:.1f} ms exceeds "
                    f"{limit:.1f} ms ({wall_tolerance:.0%} over baseline)"
                )
    return report


# -- chaos comparison -------------------------------------------------------

def compare_chaos_reports(
    baseline: dict,
    current: dict,
    *,
    baseline_source: str = "baseline",
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
) -> CompareReport:
    """Diff two ``repro-bench-chaos`` reports.

    Injected failures are *expected* in chaos runs, so the serve
    tier's zero-failure gate does not apply.  Hard gates here are the
    robustness contract: byte-identity under faults, an incident ID on
    every 5xx, and recovered multiprocess runs bitwise-identical to
    the serial reference.  Soft gate: the crash fault must actually
    have fired (at least one fleet restart observed).
    """
    del baseline, wall_tolerance  # chaos gates are absolute, not drifts
    report = CompareReport(kind="chaos", baseline_source=baseline_source)
    overall = BenchDelta(name="robustness_contract", verdict="ok")
    report.deltas.append(overall)
    if not current.get("byte_identical", True):
        overall.verdict = "hard_fail"
        overall.reasons.append(
            "identical requests returned non-identical bytes under faults"
        )
    chaos = current.get("chaos") or {}
    if chaos.get("uncovered_5xx"):
        overall.verdict = "hard_fail"
        overall.reasons.append(
            f"{chaos['uncovered_5xx']} 5xx response(s) without an "
            f"X-Repro-Incident-Id"
        )
    recovery = chaos.get("recovery") or {}
    if recovery.get("failures"):
        overall.verdict = "hard_fail"
        overall.reasons.append(
            f"{recovery['failures']} recovery-phase request(s) failed"
        )
    if not recovery.get("identical", True):
        overall.verdict = "hard_fail"
        overall.reasons.append(
            "recovered runs diverged from the serial reference"
        )
    if overall.verdict == "ok" and recovery.get("fleet_restarts", 0) < 1:
        overall.verdict = "soft_fail"
        overall.reasons.append(
            "no fleet restart observed — the crash fault never fired"
        )
    return report


# -- adapt comparison -------------------------------------------------------

def compare_adapt_reports(
    baseline: dict,
    current: dict,
    *,
    baseline_source: str = "baseline",
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
) -> CompareReport:
    """Diff two ``repro-bench-adapt`` reports.

    Like the chaos gates, the adaptive contract is absolute, not a
    drift band: every scenario's adaptive arm must beat both the best
    static layout and the offline plan, must be bitwise-deterministic
    across same-seed repeats, and must keep the solution identical
    across layout modes.  Soft gate: the adaptive arm must actually
    have replanned at least once (a loop that never fires is
    indistinguishable from the static baseline it claims to beat).
    """
    del baseline, wall_tolerance  # adapt gates are absolute, not drifts
    report = CompareReport(kind="adapt", baseline_source=baseline_source)
    scenarios = current.get("scenarios") or []
    if not scenarios:
        overall = BenchDelta(name="adaptive_contract", verdict="hard_fail")
        overall.reasons.append("report contains no scenarios")
        report.deltas.append(overall)
        return report
    for scenario in scenarios:
        name = str(scenario.get("name", "?"))
        delta = BenchDelta(name=name, verdict="ok")
        report.deltas.append(delta)
        gates = scenario.get("gates") or {}
        for gate, label in (
            ("adaptive_beats_static",
             "adaptive makespan does not beat the best static layout"),
            ("adaptive_beats_offline",
             "adaptive makespan does not beat the offline plan"),
            ("deterministic",
             "same-seed repeats diverged (solution or decision log)"),
            ("solutions_identical",
             "solutions differ across layout modes"),
        ):
            if not gates.get(gate, False):
                delta.verdict = "hard_fail"
                delta.reasons.append(label)
        if delta.verdict == "ok" and not gates.get("adaptive_replanned", False):
            delta.verdict = "soft_fail"
            delta.reasons.append(
                "the adaptive arm never redistributed — the feedback "
                "loop did not fire"
            )
    return report
