"""Bench trajectory store: append-only JSONL history of bench runs.

``BENCH_PERF.json`` and ``BENCH_SERVE.json`` are *snapshots* — each run
overwrites the last, so "did this PR make anything slower?" cannot be
answered from them alone.  The trajectory store keeps every run: one
JSON line per bench report, stamped with a schema version, the
recording time, and an environment fingerprint (repro/python/numpy
versions, best-effort git SHA, and calibrate-style machine probes), so
entries remain attributable and comparable months later.

The store is deliberately dumb and robust: append-only writes under an
exclusive lock, reads that skip corrupt lines instead of failing, and
filters by ``kind`` (``"perf"`` | ``"serve"``) and smoke flag.  The
regression sentinel (:mod:`repro.obs.compare`) uses it both as a
baseline source (latest compatible entry) and as the noise model for
its wall-clock tolerance band.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import threading
import time
from hashlib import sha256
from typing import List, Optional

__all__ = [
    "DEFAULT_TRAJECTORY_PATH",
    "TRAJECTORY_SCHEMA",
    "TrajectoryStore",
    "env_digest",
    "environment_fingerprint",
    "git_sha",
]

#: where the CLI appends bench runs unless told otherwise
DEFAULT_TRAJECTORY_PATH = "BENCH_TRAJECTORY.jsonl"

#: schema stamp on every trajectory entry
TRAJECTORY_SCHEMA = "repro-trajectory/1"

#: entry kinds the store accepts (one per bench JSON family)
KINDS = ("perf", "serve", "chaos", "adapt")

_append_lock = threading.Lock()


def git_sha(short: bool = True) -> Optional[str]:
    """Best-effort git SHA of the working tree this package runs from.

    Returns ``None`` when git is unavailable, the package is not inside
    a repository, or the lookup takes too long — a bench run must never
    fail because of provenance stamping.
    """
    cmd = ["git", "rev-parse"] + (["--short"] if short else []) + ["HEAD"]
    try:
        out = subprocess.run(
            cmd,
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    sha = out.stdout.strip()
    return sha or None


def _probe_machine() -> dict:
    """Calibrate-style micro-probes: rough compute and memory rates.

    Small fixed-size numpy operations, timed once — enough to tell two
    machine classes apart in the trajectory (a laptop vs a CI runner),
    cheap enough (< ~50 ms) to run on every bench invocation.
    """
    import numpy as np

    rng = np.random.default_rng(0)
    n = 192
    a = rng.normal(size=(n, n))
    t0 = time.perf_counter()
    a @ a
    dt = time.perf_counter() - t0
    flop_rate = (2.0 * n**3 / dt) if dt > 0 else float("inf")

    buf = rng.normal(size=1 << 20)  # 8 MiB of float64
    t0 = time.perf_counter()
    buf.copy()
    dt = time.perf_counter() - t0
    copy_rate = (buf.nbytes / dt) if dt > 0 else float("inf")
    return {
        "cpus": os.cpu_count(),
        "matmul_gflops": round(flop_rate / 1e9, 3),
        "copy_gbps": round(copy_rate / 1e9, 3),
    }


def environment_fingerprint(probe: bool = True) -> dict:
    """The provenance stamp attached to every bench report and
    trajectory entry.

    ``probe=False`` skips the timed machine micro-probes (for cheap
    callers like ``/healthz`` that only need the version facts).
    """
    import numpy as np

    from .. import __version__

    env = {
        "repro": __version__,
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "hostname": platform.node(),
    }
    if probe:
        env["machine"] = _probe_machine()
    return env


def env_digest(env: dict) -> str:
    """Stable digest of the *identity* half of an environment
    fingerprint (versions + platform, not the timing probes) — the key
    the sentinel groups trajectory entries by when modeling wall-clock
    noise (numbers from different machines never share a band)."""
    stable = {
        k: env.get(k)
        for k in ("repro", "python", "numpy", "platform", "hostname")
    }
    blob = json.dumps(stable, sort_keys=True).encode()
    return sha256(blob).hexdigest()[:16]


class TrajectoryStore:
    """Append-only JSONL history of bench runs.

    One line per run::

        {"schema": "repro-trajectory/1", "kind": "perf",
         "recorded_at": <unix seconds>, "env": {...}, "env_digest": ...,
         "report": {... the full BENCH_*.json document ...}}
    """

    def __init__(self, path: str = DEFAULT_TRAJECTORY_PATH):
        self.path = str(path)

    # -- writing -----------------------------------------------------------
    def append(self, kind: str, report: dict, env: dict | None = None) -> dict:
        """Append one bench report; returns the stored entry."""
        if kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")
        env = env if env is not None else report.get("env") or {}
        entry = {
            "schema": TRAJECTORY_SCHEMA,
            "kind": kind,
            "recorded_at": time.time(),
            "env": env,
            "env_digest": env_digest(env),
            "report": report,
        }
        line = json.dumps(entry, sort_keys=True)
        with _append_lock:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
        return entry

    # -- reading -----------------------------------------------------------
    def entries(
        self,
        kind: str | None = None,
        smoke: bool | None = None,
    ) -> List[dict]:
        """Every stored entry (oldest first), skipping corrupt lines.

        ``kind`` filters by bench family; ``smoke`` by the report's
        smoke flag (smoke and full-size runs are never comparable).
        """
        if not os.path.exists(self.path):
            return []
        out: List[dict] = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # a torn/corrupt line is skipped, not fatal
                if not isinstance(entry, dict) or "report" not in entry:
                    continue
                if kind is not None and entry.get("kind") != kind:
                    continue
                if smoke is not None:
                    if bool(entry["report"].get("smoke")) != bool(smoke):
                        continue
                out.append(entry)
        return out

    def latest(
        self, kind: str | None = None, smoke: bool | None = None
    ) -> Optional[dict]:
        """The most recent matching entry, or ``None``."""
        entries = self.entries(kind=kind, smoke=smoke)
        return entries[-1] if entries else None

    def __len__(self) -> int:
        return len(self.entries())

    # -- noise model -------------------------------------------------------
    def wall_samples(
        self,
        bench: str,
        *,
        smoke: bool | None = None,
        size: dict | None = None,
        env_key: str | None = None,
        field: str = "vectorized_seconds",
    ) -> List[float]:
        """Historical wall-clock samples for one perf bench.

        Only entries whose bench ``size`` matches (when given) are
        comparable; ``env_key`` further restricts to one machine class.
        """
        samples: List[float] = []
        for entry in self.entries(kind="perf", smoke=smoke):
            if env_key is not None and entry.get("env_digest") != env_key:
                continue
            for b in entry["report"].get("benches", ()):
                if b.get("name") != bench:
                    continue
                if size is not None and b.get("size") != size:
                    continue
                value = b.get(field)
                if isinstance(value, (int, float)):
                    samples.append(float(value))
        return samples

    def noise_band(
        self,
        bench: str,
        *,
        smoke: bool | None = None,
        size: dict | None = None,
        env_key: str | None = None,
        field: str = "vectorized_seconds",
        sigmas: float = 3.0,
        min_samples: int = 3,
    ) -> Optional[float]:
        """Upper tolerance bound (seconds) for one bench's wall clock.

        ``mean + sigmas * std`` over the comparable history — ``None``
        when fewer than ``min_samples`` comparable samples exist (the
        sentinel then falls back to a relative tolerance)."""
        samples = self.wall_samples(
            bench, smoke=smoke, size=size, env_key=env_key, field=field
        )
        if len(samples) < min_samples:
            return None
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        return mean + sigmas * (var**0.5)
