"""repro.obs — the cross-layer observability spine (ISSUEs 7 + 8).

Collection tier (ISSUE 7): one process-wide :class:`MetricsRegistry`
(``repro.obs.registry``) with labeled, thread-safe
Counter/Gauge/Histogram instruments and a Prometheus text-exposition
encoder; a structured-tracing layer (:func:`span`,
contextvars-propagated trace/request IDs); and export surfaces —
``/metrics`` on the serving tier, ``python -m repro obs`` on the CLI,
and :func:`chrome_trace` merging runtime spans with simulated
timelines into one ``chrome://tracing`` file.

Analysis tier (ISSUE 8): the **bench trajectory store**
(:class:`TrajectoryStore` — append-only JSONL history of every bench
run, stamped with schema version, git SHA and a machine fingerprint),
the **regression sentinel** (:func:`compare_perf_reports` /
:func:`compare_serve_reports` behind ``python -m repro bench
--compare`` — op-count drift is a hard fail, wall-clock drift beyond
the trajectory's noise band a soft fail), the **attribution layer**
(:func:`attribution` / ``obs analyze`` — per-phase compute/comm/idle
breakdowns that sum to the simulated makespan, plus top-N slowness
reasons), and the always-on bounded **flight recorder**
(:data:`flight_recorder`) whose :func:`incident` records are dumped by
serve 500s and failed session stages.

Metrics and spans are **off by default**: instruments exist but record
nothing until :func:`enable` is called (the serving tier enables on
construction; set ``REPRO_OBS=1`` to enable at import).  Disabled-path
cost is one function call and a branch per instrumented seam, so hot
paths (forall, halo exchange) stay within the perf-harness gates.
The flight recorder is the deliberate exception: always on, bounded,
and cheap, so a crash in an un-instrumented process still dumps a
recent history.
"""

from .analyze import (
    Attribution,
    PhaseRow,
    Reason,
    analyze_workload,
    attribution,
    span_breakdown,
)
from .compare import (
    BaselineError,
    BenchDelta,
    CompareReport,
    EXIT_HARD,
    EXIT_SOFT,
    compare_adapt_reports,
    compare_chaos_reports,
    compare_perf_reports,
    compare_serve_reports,
    load_report,
    resolve_baseline,
)
from .export import chrome_trace, dump_chrome_trace
from .flight import FlightRecorder, flight_recorder, incident, note
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    disable,
    enable,
    enabled,
    gauge,
    histogram,
    registry,
    render_prometheus,
    set_enabled,
)
from .tracing import (
    SpanRecord,
    clear_spans,
    finished_spans,
    get_request_id,
    get_trace_id,
    new_request_id,
    request_scope,
    set_request_id,
    span,
)
from .trajectory import (
    DEFAULT_TRAJECTORY_PATH,
    TrajectoryStore,
    env_digest,
    environment_fingerprint,
    git_sha,
)

__all__ = [
    "Attribution",
    "BaselineError",
    "BenchDelta",
    "CompareReport",
    "Counter",
    "DEFAULT_TRAJECTORY_PATH",
    "EXIT_HARD",
    "EXIT_SOFT",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseRow",
    "Reason",
    "SpanRecord",
    "TrajectoryStore",
    "analyze_workload",
    "attribution",
    "chrome_trace",
    "clear_spans",
    "compare_adapt_reports",
    "compare_chaos_reports",
    "compare_perf_reports",
    "compare_serve_reports",
    "counter",
    "disable",
    "dump_chrome_trace",
    "enable",
    "enabled",
    "env_digest",
    "environment_fingerprint",
    "finished_spans",
    "flight_recorder",
    "gauge",
    "get_request_id",
    "get_trace_id",
    "git_sha",
    "histogram",
    "incident",
    "load_report",
    "new_request_id",
    "note",
    "registry",
    "render_prometheus",
    "request_scope",
    "reset",
    "resolve_baseline",
    "set_enabled",
    "set_request_id",
    "span",
    "span_breakdown",
]


def reset() -> None:
    """Zero every metric sample, drop recorded spans, and clear the
    flight recorder's notes and incidents (for tests)."""
    registry.reset()
    clear_spans()
    flight_recorder.reset()
