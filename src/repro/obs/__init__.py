"""repro.obs — the cross-layer observability spine (ISSUE 7).

One process-wide :class:`MetricsRegistry` (``repro.obs.registry``) with
labeled, thread-safe Counter/Gauge/Histogram instruments and a
Prometheus text-exposition encoder; a structured-tracing layer
(:func:`span`, contextvars-propagated trace/request IDs); and export
surfaces — ``/metrics`` on the serving tier, ``python -m repro obs``
on the CLI, and :func:`chrome_trace` merging runtime spans with
simulated timelines into one ``chrome://tracing`` file.

Everything is **off by default**: instruments exist but record nothing
until :func:`enable` is called (the serving tier enables on
construction; set ``REPRO_OBS=1`` to enable at import).  Disabled-path
cost is one function call and a branch per instrumented seam, so hot
paths (forall, halo exchange) stay within the perf-harness gates.
"""

from .export import chrome_trace, dump_chrome_trace
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    disable,
    enable,
    enabled,
    gauge,
    histogram,
    registry,
    render_prometheus,
    set_enabled,
)
from .tracing import (
    SpanRecord,
    clear_spans,
    finished_spans,
    get_request_id,
    get_trace_id,
    new_request_id,
    request_scope,
    set_request_id,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "chrome_trace",
    "clear_spans",
    "counter",
    "disable",
    "dump_chrome_trace",
    "enable",
    "enabled",
    "finished_spans",
    "gauge",
    "get_request_id",
    "get_trace_id",
    "histogram",
    "new_request_id",
    "registry",
    "render_prometheus",
    "request_scope",
    "reset",
    "set_enabled",
    "set_request_id",
    "span",
]


def reset() -> None:
    """Zero every metric sample and drop recorded spans (for tests)."""
    registry.reset()
    clear_spans()
