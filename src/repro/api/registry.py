"""The workload registry — one decorator replaces four entry points.

Before the facade, each application shipped its own ``run_*`` function
with a unique signature, and the CLI hand-maintained ``choices=``
lists.  A :class:`WorkloadSpec` packages what a workload needs —

- a **runner** (``fn(ctx) -> ExecutionOutcome``): execute the workload
  on ``ctx.machine`` with ``ctx.seed`` and ``ctx.params``;
- an optional **machine factory** (the default is a 1-D processor
  array of ``ctx.nprocs``);
- an optional **planning problem** factory for ``handle.plan()``;

and :func:`register_workload` wires it into the global registry the
:class:`~repro.api.Session`, the CLI, and the tests all enumerate.
Adding a scenario is one decorator::

    from repro.api import ExecutionOutcome, register_workload

    @register_workload("mywork", defaults={"size": 32, "steps": 10})
    def mywork(ctx):
        ...  # build arrays on ctx.machine, run, measure
        return ExecutionOutcome(solution=values, headline={"steps": ...})
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping

import numpy as np

if TYPE_CHECKING:
    from ..machine.cost_model import CostModel
    from ..machine.machine import Machine

__all__ = [
    "ExecutionOutcome",
    "WorkloadContext",
    "WorkloadSpec",
    "WorkloadRegistry",
    "REGISTRY",
    "register_workload",
    "available_workloads",
]


@dataclass
class ExecutionOutcome:
    """What a workload runner returns.

    ``solution`` is the bitwise-comparison payload (backend
    conformance, determinism); ``headline`` the metrics worth a line in
    the CLI table; ``result`` the app-specific result object, kept for
    callers that want the full record.
    """

    solution: np.ndarray
    headline: dict = field(default_factory=dict)
    result: Any = None


@dataclass
class WorkloadContext:
    """Everything a workload hook may consult, resolved by the session."""

    name: str
    nprocs: int
    cost_model: "CostModel"
    seed: int
    params: dict
    #: the machine to run on — built by the spec's machine factory for
    #: execution hooks; ``None`` inside planning hooks (planner
    #: workload factories build their own, like the legacy CLI did)
    machine: "Machine | None" = None


class WorkloadSpec:
    """One registered workload: runner + optional machine/planning hooks."""

    def __init__(
        self,
        name: str,
        runner: Callable[[WorkloadContext], ExecutionOutcome],
        defaults: Mapping[str, Any] | None = None,
        description: str = "",
    ):
        self.name = str(name)
        self.defaults: dict[str, Any] = dict(defaults or {})
        self.description = description or (runner.__doc__ or "").strip()
        self._runner = runner
        self._machine: Callable[[WorkloadContext], "Machine"] | None = None
        self._planning: Callable[[WorkloadContext], Any] | None = None

    # -- hook decorators ---------------------------------------------------
    def machine_factory(self, fn: Callable) -> Callable:
        """Decorator: override how this workload builds its machine."""
        self._machine = fn
        return fn

    def planning(self, fn: Callable) -> Callable:
        """Decorator: provide the planner problem for ``handle.plan()``."""
        self._planning = fn
        return fn

    # -- session-facing API --------------------------------------------------
    @property
    def plannable(self) -> bool:
        return self._planning is not None

    def resolve_params(self, overrides: Mapping[str, Any]) -> dict:
        """Defaults overlaid with ``overrides``; unknown keys rejected."""
        unknown = sorted(set(overrides) - set(self.defaults))
        if unknown:
            raise TypeError(
                f"workload {self.name!r} got unknown parameter(s) "
                f"{unknown} (accepted: {sorted(self.defaults)})"
            )
        params = dict(self.defaults)
        params.update(overrides)
        return params

    def make_machine(self, ctx: WorkloadContext) -> "Machine":
        if self._machine is not None:
            return self._machine(ctx)
        from ..machine.machine import Machine
        from ..machine.topology import ProcessorArray

        return Machine(
            ProcessorArray("P", (ctx.nprocs,)), cost_model=ctx.cost_model
        )

    def execute(self, ctx: WorkloadContext) -> ExecutionOutcome:
        outcome = self._runner(ctx)
        if not isinstance(outcome, ExecutionOutcome):
            raise TypeError(
                f"workload {self.name!r} runner must return an "
                f"ExecutionOutcome, got {type(outcome).__name__}"
            )
        return outcome

    def planning_problem(self, ctx: WorkloadContext):
        if self._planning is None:
            raise ValueError(
                f"workload {self.name!r} has no planning problem "
                f"(register one with @spec.planning)"
            )
        return self._planning(ctx)

    def __repr__(self) -> str:
        bits = [f"defaults={self.defaults}"]
        if self.plannable:
            bits.append("plannable")
        return f"WorkloadSpec({self.name!r}, {', '.join(bits)})"


class WorkloadRegistry:
    """Name -> :class:`WorkloadSpec` mapping with deliberate mutation."""

    def __init__(self) -> None:
        self._specs: dict[str, WorkloadSpec] = {}

    def register(self, spec: WorkloadSpec, replace: bool = False) -> WorkloadSpec:
        if not replace and spec.name in self._specs:
            raise ValueError(
                f"workload {spec.name!r} is already registered "
                f"(pass replace=True to override)"
            )
        self._specs[spec.name] = spec
        return spec

    def unregister(self, name: str) -> None:
        self._specs.pop(name, None)

    def get(self, name: str) -> WorkloadSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(
                f"no workload named {name!r} "
                f"(registered: {sorted(self._specs)})"
            ) from None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._specs))

    def plannable_names(self) -> tuple[str, ...]:
        return tuple(n for n in self.names() if self._specs[n].plannable)

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[WorkloadSpec]:
        return iter(self._specs[n] for n in self.names())

    def __len__(self) -> int:
        return len(self._specs)


#: the process-global registry sessions consult by default
REGISTRY = WorkloadRegistry()


def register_workload(
    name: str,
    *,
    defaults: Mapping[str, Any] | None = None,
    description: str = "",
    registry: WorkloadRegistry | None = None,
    replace: bool = False,
) -> Callable[[Callable], WorkloadSpec]:
    """Register a workload runner; returns the :class:`WorkloadSpec`
    (which carries the ``.machine_factory`` / ``.planning`` hook
    decorators)."""

    def deco(fn: Callable[[WorkloadContext], ExecutionOutcome]) -> WorkloadSpec:
        spec = WorkloadSpec(name, fn, defaults=defaults, description=description)
        target = REGISTRY if registry is None else registry
        return target.register(spec, replace=replace)

    return deco


def available_workloads(registry: WorkloadRegistry | None = None) -> tuple[str, ...]:
    """Sorted names of every registered workload."""
    return (REGISTRY if registry is None else registry).names()
