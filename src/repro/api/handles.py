"""Workload handles — the fluent stages of the session facade.

``sess.workload("adi", size=64)`` returns a :class:`WorkloadHandle`;
its stages execute independently on fresh machines built from the
session config, so every stage is deterministic in the config alone::

    with repro.session(nprocs=4, cost_model="Paragon") as sess:
        w = sess.workload("adi", size=64, iterations=4)
        plan = w.plan()                  # PlanResult: the schedule
        run = w.run()                    # RunResult: solution + metrics
        trace = w.trace()                # TraceResult: event timelines
        bench = w.bench(repeats=3)       # BenchResult: wall clock
"""

from __future__ import annotations

import functools
import time
from typing import TYPE_CHECKING

from ..obs import metrics as _obs
from ..obs.flight import flight_recorder as _flight
from ..obs.tracing import span as _span
from .registry import ExecutionOutcome, WorkloadContext, WorkloadSpec
from .results import BenchResult, PlanResult, RunResult, TraceResult

if TYPE_CHECKING:
    from ..machine.machine import Machine
    from ..sim.events import EventLog
    from .session import Session

__all__ = ["WorkloadHandle"]

_STAGES_TOTAL = _obs.counter(
    "repro_session_stages_total",
    "Workload-handle stage executions, by stage, workload and outcome.",
    ("stage", "workload", "status"),
)
_STAGE_SECONDS = _obs.histogram(
    "repro_session_stage_seconds",
    "Wall-clock seconds per workload-handle stage.",
    ("stage",),
)
_DEGRADATIONS = _obs.counter(
    "repro_degradation_total",
    "Graceful-degradation transitions, by tier and workload.",
    ("tier", "workload"),
)


def _staged(stage: str):
    """Wrap a handle stage in a span plus count/latency instruments.

    A failed stage additionally dumps a structured incident record on
    the always-on flight recorder (metrics may be off; the recorder is
    not), carrying the stage, workload, and any request/trace IDs the
    serving tier bound to the calling context.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            if not _obs.enabled():
                try:
                    return fn(self, *args, **kwargs)
                except Exception as exc:
                    _flight.incident(
                        f"session.{stage} failed", error=exc,
                        attrs={"stage": stage, "workload": self.name},
                    )
                    raise
            t0 = time.perf_counter()
            with _span(f"session.{stage}", workload=self.name):
                try:
                    result = fn(self, *args, **kwargs)
                except Exception as exc:
                    _STAGES_TOTAL.inc(stage=stage, workload=self.name,
                                      status="error")
                    _flight.incident(
                        f"session.{stage} failed", error=exc,
                        attrs={"stage": stage, "workload": self.name},
                    )
                    raise
            _STAGES_TOTAL.inc(stage=stage, workload=self.name, status="ok")
            _STAGE_SECONDS.observe(time.perf_counter() - t0, stage=stage)
            return result

        return wrapper

    return decorate


class WorkloadHandle:
    """One workload bound to a session and a parameter set."""

    def __init__(self, session: "Session", spec: WorkloadSpec, params: dict):
        self._session = session
        self._spec = spec
        overrides = dict(params)
        #: per-handle seed override; defaults to the session seed
        self.seed = int(overrides.pop("seed", session.config.seed))
        self.params = spec.resolve_params(overrides)

    # -- introspection ----------------------------------------------------
    @property
    def name(self) -> str:
        return self._spec.name

    @property
    def plannable(self) -> bool:
        return self._spec.plannable

    def __repr__(self) -> str:
        return (
            f"WorkloadHandle({self.name!r}, params={self.params}, "
            f"seed={self.seed})"
        )

    # -- context building --------------------------------------------------
    def _context(self, with_machine: bool = True) -> WorkloadContext:
        sess = self._session
        ctx = WorkloadContext(
            name=self.name,
            nprocs=sess.config.nprocs,
            cost_model=sess.cost_model,
            seed=self.seed,
            params=dict(self.params),
        )
        if with_machine:
            ctx.machine = self._spec.make_machine(ctx)
        return ctx

    def _execute(
        self, ctx: WorkloadContext, log: "EventLog | None"
    ) -> ExecutionOutcome:
        """Run the spec on ``ctx.machine`` under the session backend,
        optionally recording typed events into ``log``.

        Degradation tier 2 (ISSUE 9): if the configured backend fails
        unrecoverably — the fleet supervisor's restart budget is spent,
        or a shared-memory allocation failed — and the session allows
        degradation, rerun the stage from scratch on the
        :class:`~repro.backend.base.SerialBackend`.  The rerun is
        bitwise-identical to a healthy parallel run by the conformance
        contract, so callers only notice the incident record and the
        ``repro_degradation_total`` metric.
        """
        from ..backend.multiprocess import BackendError
        from ..sim.events import record

        machine: "Machine" = ctx.machine
        try:
            with self._session.attach(machine):
                if log is not None:
                    with record(machine, log):
                        return self._spec.execute(ctx)
                return self._spec.execute(ctx)
        except (BackendError, MemoryError) as exc:
            sess = self._session
            backend_name = sess.config.backend_name
            if not sess.degrade or backend_name in (None, "serial"):
                raise
            sess.mark_poisoned(f"{type(exc).__name__}: {exc}")
            _DEGRADATIONS.inc(tier="serial_fallback", workload=self.name)
            _flight.incident(
                "degraded to serial backend", error=exc,
                attrs={
                    "tier": "serial_fallback",
                    "workload": self.name,
                    "from_backend": backend_name,
                },
            )
            return self._execute_serial_fallback(ctx, log)

    def _execute_serial_fallback(
        self, ctx: WorkloadContext, log: "EventLog | None"
    ) -> ExecutionOutcome:
        """Rerun a failed stage on a fresh machine with the serial
        backend.  The context is rebuilt (fresh machine, untouched
        seed-derived state) and any half-recorded events are dropped,
        so the rerun is indistinguishable from a run that was serial
        from the start."""
        from ..backend.base import SerialBackend
        from ..sim.events import record

        fresh = self._context()
        ctx.machine = fresh.machine
        if log is not None:
            log.clear()
        fallback = SerialBackend()
        fallback.attach(ctx.machine)
        try:
            if log is not None:
                with record(ctx.machine, log):
                    return self._spec.execute(ctx)
            return self._spec.execute(ctx)
        finally:
            fallback.close()

    # -- stages ------------------------------------------------------------
    @_staged("plan")
    def plan(self, cost_mode: str = "model", method: str = "auto") -> PlanResult:
        """Run the automatic distribution planner on this workload.

        ``cost_mode`` is ``"model"`` (closed-form aggregates) or
        ``"simulated"`` (the discrete-event simulator's split-phase
        overlap semantics); ``method`` is ``"auto"`` | ``"dp"`` |
        ``"greedy"``.
        """
        from ..planner.costs import CostEngine, SimulatedCostEngine
        from ..planner.workloads import _plan_workload, hand_schedule_cost

        ctx = self._context(with_machine=False)
        workload = self._spec.planning_problem(ctx)
        if cost_mode == "simulated":
            engine: CostEngine = SimulatedCostEngine(workload.machine)
        elif cost_mode == "model":
            engine = CostEngine(
                workload.machine, plan_cache=self._session.plan_cache
            )
        else:
            raise ValueError(
                f"cost_mode must be 'model' or 'simulated', got {cost_mode!r}"
            )
        plan = _plan_workload(workload, cost_engine=engine, method=method)
        hand = hand_schedule_cost(workload, cost_engine=engine)
        return PlanResult(
            workload=self.name,
            description=workload.description,
            cost_model=self._session.cost_model.name,
            cost_mode=cost_mode,
            method=method,
            nprocs=self._session.config.nprocs,
            plan=plan,
            hand_cost=hand,
        )

    @_staged("run")
    def run(self) -> RunResult:
        """Execute the workload on a fresh machine; returns the typed
        result (solution, headline metrics, per-processor clocks, and —
        when the session records events — the typed event log)."""
        from ..sim.events import EventLog

        ctx = self._context()
        log = EventLog() if self._session.config.record_events else None
        outcome = self._execute(ctx, log)
        machine = ctx.machine
        stats = machine.stats()
        return RunResult(
            workload=self.name,
            backend=self._session.config.backend_name,
            nprocs=self._session.config.nprocs,
            seed=self.seed,
            cost_model=self._session.cost_model.name,
            params=dict(self.params),
            headline=dict(outcome.headline),
            solution=outcome.solution,
            clocks=tuple(machine.network.clocks),
            messages=stats.messages,
            bytes=stats.bytes,
            time=stats.time,
            result=outcome.result,
            events=log,
        )

    @_staged("trace")
    def trace(self, overlap: bool | None = None) -> TraceResult:
        """Execute the workload recording typed events, then replay
        them through the discrete-event simulator.

        ``overlap=None`` simulates both semantics (blocking and
        split-phase); ``False`` or ``True`` simulates just one.
        """
        from ..sim.events import EventLog
        from ..sim.simulate import simulate

        ctx = self._context()
        log = EventLog()
        self._execute(ctx, log)
        machine = ctx.machine
        blocking = split = None
        matches = None
        if overlap is not True:
            blocking = simulate(
                log, machine.cost_model, machine.nprocs, overlap=False
            )
            matches = blocking.clocks == machine.network.clocks
        if overlap is not False:
            split = simulate(
                log, machine.cost_model, machine.nprocs, overlap=True
            )
        return TraceResult(
            workload=self.name,
            nprocs=self._session.config.nprocs,
            seed=self.seed,
            cost_model=self._session.cost_model.name,
            params=dict(self.params),
            events=log,
            blocking=blocking,
            split=split,
            matches_aggregate=matches,
        )

    @_staged("bench")
    def bench(self, repeats: int = 3) -> BenchResult:
        """Wall-clock the workload over ``repeats`` independent runs
        (fresh machine each time; modeled machine time rides along)."""
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        wall: list[float] = []
        outcome = None
        machine = None
        for _ in range(repeats):
            ctx = self._context()
            t0 = time.perf_counter()
            outcome = self._execute(ctx, None)
            wall.append(time.perf_counter() - t0)
            machine = ctx.machine
        return BenchResult(
            workload=self.name,
            backend=self._session.config.backend_name,
            nprocs=self._session.config.nprocs,
            seed=self.seed,
            cost_model=self._session.cost_model.name,
            params=dict(self.params),
            wall_times=wall,
            modeled_time=machine.time,
            headline=dict(outcome.headline),
        )

    def _adapt_driver_config(self, window: int | None) -> tuple[dict, int]:
        """Map this handle's registry params onto the adaptive
        driver's parameter names; returns ``(params, window)``.

        The window defaults to the workload's natural phase length:
        PIC's ``rebalance_every`` (Figure 2's every-10th-iteration
        checkpoint), or a quarter of the sweep count for the
        irregular relaxation.
        """
        p = self.params
        steps = int(p["steps"])
        if self.name == "pic":
            size = int(p["size"])
            driver = {
                "ncell": size,
                "npart": int(p["npart"]) if p["npart"] is not None else 8 * size,
                "steps": steps,
            }
            for src, dst in (("drift", "drift"), ("diffusion", "diffusion"),
                             ("cluster_width", "cluster_width")):
                if p.get(src) is not None:
                    driver[dst] = float(p[src])
            if window is None:
                window = int(p["rebalance_every"] or 10)
        else:  # irregular (the only other supported driver)
            driver = {
                "n": int(p["size"]),
                "sweeps": steps,
                "kind": str(p["kind"]),
                "drift": float(p["drift"]),
            }
            if window is None:
                window = max(1, steps // 4)
        window = min(int(window), steps)
        return driver, window

    @_staged("adapt")
    def adapt(self, mode: str = "adaptive", window: int | None = None):
        """Drive the workload under the online adaptive controller.

        ``mode`` selects the layout policy (``"adaptive"`` — the
        feedback loop — or the ``"static"`` / ``"balanced"`` /
        ``"offline"`` baselines); ``window`` the monitoring window in
        steps (default: the workload's natural phase length).  Only
        workloads with an adaptive driver support this stage; others
        raise ``ValueError``.
        """
        from ..adapt.controller import (
            MODES,
            AdaptiveController,
            supported_workloads,
        )
        from .results import AdaptResult

        if self.name not in supported_workloads():
            raise ValueError(
                f"workload {self.name!r} has no adaptive driver "
                f"(supported: {list(supported_workloads())})"
            )
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        driver_params, window = self._adapt_driver_config(window)
        controller = AdaptiveController(
            self.name,
            nprocs=self._session.config.nprocs,
            cost_model=self._session.cost_model,
            window=window,
            seed=self.seed,
            params=driver_params,
        )
        run = controller.run(mode)
        return AdaptResult(
            workload=self.name,
            nprocs=self._session.config.nprocs,
            seed=self.seed,
            cost_model=self._session.cost_model.name,
            mode=mode,
            window=window,
            params=dict(self.params),
            run=run,
        )
