"""``repro.api`` — the stable public facade.

One import gives the whole surface::

    import repro

    with repro.session(nprocs=4, cost_model="Paragon",
                       backend="multiprocess", record_events=True) as sess:
        handle = sess.workload("adi", size=64, iterations=4)
        plan = handle.plan(cost_mode="simulated")   # PlanResult
        run = handle.run()                          # RunResult
        trace = handle.trace()                      # TraceResult
        bench = handle.bench(repeats=3)             # BenchResult

All four stage results share ``.summary()`` / ``.to_json()`` /
``.json_str()``.  New scenarios plug in with one decorator
(:func:`register_workload`); the CLI and the session enumerate the
same registry, so a registered workload immediately gains ``plan`` /
``run`` / ``trace`` / ``bench`` spellings everywhere.
"""

from .config import BACKEND_NAMES, DEFAULT_SEED, SessionConfig, resolve_cost_model
from .registry import (
    REGISTRY,
    ExecutionOutcome,
    WorkloadContext,
    WorkloadRegistry,
    WorkloadSpec,
    available_workloads,
    register_workload,
)
from .results import (
    AdaptResult,
    BenchResult,
    PlanResult,
    RunResult,
    SessionResult,
    TraceResult,
    config_fingerprint,
)
from .handles import WorkloadHandle
from .session import Session, SessionClosedError, session
from . import workloads as _builtin_workloads  # registers adi/pic/smoothing/...

__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_SEED",
    "SessionConfig",
    "resolve_cost_model",
    "REGISTRY",
    "ExecutionOutcome",
    "WorkloadContext",
    "WorkloadRegistry",
    "WorkloadSpec",
    "available_workloads",
    "register_workload",
    "SessionResult",
    "PlanResult",
    "RunResult",
    "TraceResult",
    "BenchResult",
    "AdaptResult",
    "config_fingerprint",
    "WorkloadHandle",
    "Session",
    "SessionClosedError",
    "session",
]

del _builtin_workloads
