"""The :class:`Session` facade — one object over machine, planner,
backends, and the simulator.

A session resolves a :class:`~repro.api.SessionConfig` once (cost
model, processor count, backend, event recording, RNG seed) and hands
out fluent workload handles::

    import repro

    with repro.session(nprocs=4, cost_model="Paragon") as sess:
        result = sess.workload("adi", size=64, iterations=4).run()
        plan = sess.workload("adi", size=64, iterations=4).plan()

Power users that need the raw Vienna Fortran Engine get it from the
same facade — :meth:`Session.engine` — with the session's plan cache
and backend already wired::

    with repro.session(nprocs=4) as sess:
        vfe = sess.engine()          # an Engine on a session machine
        V = vfe.declare("V", (100, 100), ...)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Sequence

from ..backend.base import Backend, attached_backend, resolve_backend
from ..defaults import DEFAULT_SEED
from ..obs import flight as _flight
from ..machine.cost_model import CostModel
from ..machine.machine import Machine
from ..machine.topology import ProcessorArray
from ..runtime.engine import Engine
from ..runtime.redistribute import PlanCache
from .config import SessionConfig
from .handles import WorkloadHandle
from .registry import REGISTRY, WorkloadRegistry

__all__ = ["Session", "SessionClosedError", "session"]


class SessionClosedError(RuntimeError):
    """A closed :class:`Session` was asked to do work.

    Pools hand sessions out and reclaim them; using a handle after the
    pool (or a ``with`` block) closed it is a lifecycle bug, reported
    eagerly instead of as a confusing downstream failure.
    """


class Session:
    """One configured entry point to the whole reproduction.

    Owns the plan cache, the backend policy, the cost model and the
    RNG seed; builds machines and engines on demand; enumerates the
    workload registry.  Context-manager use closes any backends the
    session constructed for ad-hoc engines.

    Sessions are cheap to construct (no machine, backend, or worker is
    built until a stage runs) and safe to pool: :meth:`close` is
    idempotent, any use after close raises :class:`SessionClosedError`,
    and an explicit ``plan_cache`` lets many sessions share one
    memoized plan store (the cross-session seam ``repro.serve`` pools
    are built on).
    """

    def __init__(
        self,
        config: SessionConfig | None = None,
        registry: WorkloadRegistry | None = None,
        *,
        plan_cache: PlanCache | None = None,
        degrade: bool = True,
    ):
        self.config = (config or SessionConfig()).validate()
        self.registry = registry if registry is not None else REGISTRY
        #: the cost model, resolved once
        self.cost_model: CostModel = self.config.resolved_cost_model()
        #: memoized transfer plans shared by everything the session
        #: runs; pass one in to share it *across* sessions
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        #: graceful-degradation policy: when True, a stage whose
        #: multiprocess fleet cannot be recovered falls back to the
        #: serial backend (bitwise-identical by the conformance
        #: contract) instead of raising.  A session-level knob, NOT
        #: part of SessionConfig — it must not change config
        #: fingerprints or pool keys.
        self.degrade = bool(degrade)
        self._owned_backends: list[Backend] = []
        self._closed = False
        self._poisoned = False
        self._poison_reason: str | None = None

    # -- lifecycle ---------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def poisoned(self) -> bool:
        """True once a stage hit an unrecoverable backend fault.

        A poisoned session still works (stages degrade to the serial
        backend), but a pool should retire it rather than hand it to
        the next request — see :meth:`repro.serve.pool.SessionPool.release`.
        """
        return self._poisoned

    def mark_poisoned(self, reason: str) -> None:
        """Record that this session's backend tier failed (idempotent;
        first reason wins)."""
        if not self._poisoned:
            self._poisoned = True
            self._poison_reason = str(reason)
            _flight.note(
                "session.poisoned", reason=self._poison_reason,
                backend=self.config.backend_name,
            )

    def _require_open(self) -> None:
        if self._closed:
            raise SessionClosedError(
                f"session is closed: {self!r} (sessions cannot be "
                f"reused after close(); open a new one)"
            )

    def close(self) -> None:
        """Close every backend this session constructed (idempotent)."""
        if self._closed:
            return
        backends, self._owned_backends = self._owned_backends, []
        for backend in backends:
            backend.close()
        self._closed = True

    def __enter__(self) -> "Session":
        self._require_open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- machines and engines ----------------------------------------------
    @contextmanager
    def attach(self, machine: Machine):
        """Attach the session's backend policy to ``machine`` for one
        run.  A name spec ("serial"/"multiprocess") or a Backend
        subclass constructs a fresh backend and closes it on exit
        (workers and shared segments released); ``None`` runs with
        whatever is already attached."""
        self._require_open()
        b = self.config.backend
        if isinstance(b, type):
            backend = b()
            backend.attach(machine)
            try:
                yield backend
            finally:
                backend.close()
        else:
            with attached_backend(machine, b) as backend:
                yield backend

    def machine(
        self,
        shape: Sequence[int] | None = None,
        name: str = "P",
        cost_model: CostModel | None = None,
    ) -> Machine:
        """A fresh machine with the session's cost model (``shape``
        defaults to a 1-D array of ``config.nprocs`` processors)."""
        self._require_open()
        procs = ProcessorArray(name, tuple(shape or (self.config.nprocs,)))
        return Machine(procs, cost_model=cost_model or self.cost_model)

    def engine(
        self,
        machine: Machine | None = None,
        *,
        shape: Sequence[int] | None = None,
        name: str = "P",
    ) -> Engine:
        """A Vienna Fortran Engine on ``machine`` (or a fresh session
        machine), sharing the session's plan cache and backend.

        This is the supported replacement for the deprecated bare
        ``Engine(machine)`` construction.
        """
        self._require_open()
        if machine is None:
            machine = self.machine(shape=shape, name=name)
        if self.config.backend is not None and machine.backend is None:
            b = self.config.backend
            backend = resolve_backend(b() if isinstance(b, type) else b)
            backend.attach(machine)
            self._owned_backends.append(backend)
        return Engine._create(machine, plan_cache=self.plan_cache)

    # -- workloads ---------------------------------------------------------
    def workloads(self) -> tuple[str, ...]:
        """Names of every registered workload."""
        return self.registry.names()

    def workload(self, name: str, **params) -> WorkloadHandle:
        """A fluent handle on the named workload.

        ``params`` override the workload's registered defaults; the
        keyword-only ``seed`` overrides the session seed.  Unknown
        parameters raise ``TypeError``; unknown names raise
        ``KeyError`` listing what is registered.
        """
        self._require_open()
        return WorkloadHandle(self, self.registry.get(name), params)

    def describe(self) -> dict:
        """The session's resolved configuration (JSON-serializable)."""
        return {**self.config.to_json(), "workloads": list(self.workloads())}

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"Session(nprocs={self.config.nprocs}, "
            f"cost_model={self.cost_model.name!r}, "
            f"backend={self.config.backend_name!r}, "
            f"seed={self.config.seed}, {state})"
        )


def session(
    nprocs: int = 4,
    cost_model: CostModel | str = "Paragon",
    backend: str | type | None = None,
    record_events: bool = False,
    seed: int = DEFAULT_SEED,
    registry: WorkloadRegistry | None = None,
    degrade: bool = True,
) -> Session:
    """Open a :class:`Session` — the one public entry point.

    ``degrade=False`` turns off the serial-backend fallback: an
    unrecoverable multiprocess fault then raises instead of silently
    completing on one process.

    >>> with repro.session(nprocs=4, cost_model="Paragon") as sess:
    ...     sess.workload("adi", size=64).run().summary()
    """
    return Session(
        SessionConfig(
            nprocs=nprocs,
            cost_model=cost_model,
            backend=backend,
            record_events=record_events,
            seed=seed,
        ),
        registry=registry,
        degrade=degrade,
    )
