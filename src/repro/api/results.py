"""Typed stage results sharing one ``.summary()`` / ``.to_json()`` protocol.

Each :class:`~repro.api.WorkloadHandle` stage returns one of these:

- :class:`PlanResult`  — ``handle.plan()``: the planner's schedule;
- :class:`RunResult`   — ``handle.run()``: solution, headline metrics,
  per-processor clocks, optional event log;
- :class:`TraceResult` — ``handle.trace()``: the discrete-event
  simulator's blocking / split-phase timelines;
- :class:`BenchResult` — ``handle.bench()``: wall-clock repetitions;
- :class:`AdaptResult` — ``handle.adapt()``: the adaptive controller's
  window-by-window decision record and modeled makespan.

``summary()`` renders a terminal-friendly report; ``to_json()`` returns
a ``json.dumps``-able dict (numpy scalars normalized); ``json_str()``
is the round-trippable string the CLI's ``--json`` flags print.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:
    from ..adapt.controller import AdaptiveRun
    from ..planner.search import Plan
    from ..sim.clock import Timeline
    from ..sim.events import EventLog

__all__ = [
    "SessionResult",
    "PlanResult",
    "RunResult",
    "TraceResult",
    "BenchResult",
    "AdaptResult",
    "config_fingerprint",
]


def _jsonable(value: Any) -> Any:
    """Normalize numpy scalars/containers into plain JSON types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.bool_, bool)):
        return bool(value)
    if isinstance(value, (np.integer, int)):
        return int(value)
    if isinstance(value, (np.floating, float)):
        return float(value)
    return value


def config_fingerprint(payload: Any) -> str:
    """Canonical SHA-256 digest of a JSON-able config/request payload.

    The payload is normalized through the same numpy-scalar coercion
    the stage results use and serialized with sorted keys and fixed
    separators, so two structurally equal configs — however their
    values were spelled (``np.int64(4)`` vs ``4``, key order) —
    fingerprint identically.  This is the cache key of the
    ``repro.serve`` cross-session response cache and the identity the
    determinism guarantee is stated against: equal fingerprints ⇒
    byte-identical responses for deterministic stages.
    """
    canon = json.dumps(
        _jsonable(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canon.encode()).hexdigest()


class SessionResult:
    """The protocol every stage result implements."""

    def summary(self) -> str:
        raise NotImplementedError

    def to_json(self) -> dict:
        raise NotImplementedError

    def json_str(self, indent: int | None = 2) -> str:
        """``to_json()`` serialized — guaranteed ``json.loads``-able."""
        return json.dumps(self.to_json(), indent=indent)


@dataclass
class PlanResult(SessionResult):
    """Outcome of ``handle.plan()`` — a priced redistribution schedule."""

    workload: str
    description: str
    cost_model: str
    cost_mode: str
    method: str
    nprocs: int
    plan: "Plan"
    hand_cost: float | None = None

    @property
    def total_cost(self) -> float:
        return self.plan.total_cost

    def summary(self) -> str:
        lines = [f"workload: {self.description}", self.plan.summary()]
        if self.hand_cost is not None:
            lines.append(f"  paper's hand schedule: {self.hand_cost:.3e}s")
        best = self.plan.best_static
        if best is not None:
            if self.plan.total_cost > 0:
                ratio = best[1] / self.plan.total_cost
            else:
                # both costs zero (e.g. the zero-cost model): equal, not inf
                ratio = 1.0 if best[1] == 0 else float("inf")
            lines.append(
                f"  planner vs best static: {self.plan.total_cost:.3e}s vs "
                f"{best[1]:.3e}s ({ratio:.1f}x)"
            )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return _jsonable(
            {
                "workload": self.workload,
                "description": self.description,
                "cost_model": self.cost_model,
                "cost_mode": self.cost_mode,
                "method": self.method,
                "nprocs": self.nprocs,
                "plan": self.plan.to_dict(),
                "hand_schedule_cost": self.hand_cost,
            }
        )


@dataclass
class RunResult(SessionResult):
    """Outcome of ``handle.run()`` — one executed workload."""

    workload: str
    backend: str
    nprocs: int
    seed: int
    cost_model: str
    params: dict = field(default_factory=dict)
    #: the workload's headline metrics (what the CLI table prints)
    headline: dict = field(default_factory=dict)
    #: the comparison payload — bitwise-stable across backends/sessions
    solution: np.ndarray | None = None
    #: per-processor aggregate clocks at end of run
    clocks: tuple[float, ...] = ()
    #: modeled messages / bytes / time on the simulated network
    messages: int = 0
    bytes: int = 0
    time: float = 0.0
    #: the app-specific result object (ADIResult, PICResult, ...)
    result: Any = None
    #: typed event log when the session records events, else None
    events: "EventLog | None" = None

    def summary(self) -> str:
        lines = [
            f"run {self.workload} (nprocs={self.nprocs}, "
            f"backend={self.backend}, cost model {self.cost_model}, "
            f"seed={self.seed})"
        ]
        for k, v in self.headline.items():
            shown = f"{v:.3f}" if isinstance(v, float) else str(v)
            lines.append(f"  {k:18s} {shown}")
        return "\n".join(lines)

    def solution_digest(self) -> str | None:
        """SHA-256 of the solution bytes (shape/dtype included)."""
        if self.solution is None:
            return None
        h = hashlib.sha256()
        h.update(repr((self.solution.shape, str(self.solution.dtype))).encode())
        h.update(np.ascontiguousarray(self.solution).tobytes())
        return h.hexdigest()

    def fingerprint(self) -> str:
        """One digest over everything bitwise-comparable: solution,
        per-processor clocks, headline metrics, and the event stream
        (when recorded).  Equal fingerprints mean equal runs."""
        h = hashlib.sha256()
        h.update((self.solution_digest() or "none").encode())
        h.update(repr(tuple(self.clocks)).encode())
        h.update(repr(sorted(self.headline.items())).encode())
        h.update(repr((self.messages, self.bytes, self.time)).encode())
        if self.events is not None:
            for ev in self.events.events:
                h.update(repr(ev).encode())
        return h.hexdigest()

    def to_json(self) -> dict:
        return _jsonable(
            {
                "workload": self.workload,
                "backend": self.backend,
                "nprocs": self.nprocs,
                "seed": self.seed,
                "cost_model": self.cost_model,
                "params": self.params,
                # headline metric names are workload-controlled: keep
                # them in their own object so they can never collide
                # with (or be shadowed by) the fixed report fields
                "headline": self.headline,
                "messages": self.messages,
                "bytes": self.bytes,
                "modeled_time_s": self.time,
                "clocks": list(self.clocks),
                "solution_sha256": self.solution_digest(),
                "events": self.events.counts() if self.events is not None else None,
            }
        )


@dataclass
class TraceResult(SessionResult):
    """Outcome of ``handle.trace()`` — simulated execution timelines."""

    workload: str
    nprocs: int
    seed: int
    cost_model: str
    params: dict = field(default_factory=dict)
    events: "EventLog | None" = None
    blocking: "Timeline | None" = None
    split: "Timeline | None" = None
    #: blocking replay clocks == the aggregate accounting, bit for bit
    matches_aggregate: bool | None = None

    def timeline(self, overlap: bool = False) -> "Timeline":
        """The requested timeline (``overlap=True`` for split-phase)."""
        tl = self.split if overlap else self.blocking
        if tl is None:
            which = "split-phase" if overlap else "blocking"
            raise ValueError(
                f"this trace did not simulate {which} semantics "
                f"(pass overlap={overlap!r} — or no overlap — to .trace())"
            )
        return tl

    @property
    def overlap_reduction(self) -> float | None:
        """Fraction of the blocking makespan hidden by split-phase."""
        if self.blocking is None or self.split is None:
            return None
        if self.blocking.makespan <= 0:
            return 0.0
        return 1.0 - self.split.makespan / self.blocking.makespan

    def summary(self) -> str:
        lines = [
            f"trace {self.workload} (nprocs={self.nprocs}, "
            f"cost model {self.cost_model}, seed={self.seed})"
        ]
        if self.events is not None:
            lines.append(f"  events: {self.events.counts()}")
        if self.matches_aggregate is not None:
            lines.append(
                f"  matches aggregate accounting bit for bit: "
                f"{self.matches_aggregate}"
            )
        if self.blocking is not None:
            lines.append(f"  blocking:    {self.blocking.summary()}")
        if self.split is not None:
            lines.append(f"  split-phase: {self.split.summary()}")
        red = self.overlap_reduction
        if red is not None:
            lines.append(
                f"  split-phase overlap hides {red:.1%} of the blocking "
                f"makespan"
            )
        return "\n".join(lines)

    def to_json(self, intervals: bool = True) -> dict:
        from ..sim.critical_path import critical_path
        from ..sim.trace import to_json as timeline_json

        out: dict = {
            "workload": self.workload,
            "nprocs": self.nprocs,
            "seed": self.seed,
            "cost_model": self.cost_model,
            "params": _jsonable(self.params),
            "events": self.events.counts() if self.events is not None else None,
            "matches_aggregate_accounting": self.matches_aggregate,
        }
        for key, tl in (("blocking", self.blocking), ("split_phase", self.split)):
            out[key] = (
                timeline_json(tl, critical=critical_path(tl), intervals=intervals)
                if tl is not None
                else None
            )
        return _jsonable(out)


@dataclass
class BenchResult(SessionResult):
    """Outcome of ``handle.bench()`` — wall-clock over repetitions."""

    workload: str
    backend: str
    nprocs: int
    seed: int
    cost_model: str
    params: dict = field(default_factory=dict)
    #: one wall-clock second count per repetition
    wall_times: list[float] = field(default_factory=list)
    #: the final repetition's modeled time on the simulated machine
    modeled_time: float = 0.0
    headline: dict = field(default_factory=dict)

    @property
    def best(self) -> float:
        return min(self.wall_times) if self.wall_times else float("nan")

    @property
    def mean(self) -> float:
        return (
            sum(self.wall_times) / len(self.wall_times)
            if self.wall_times
            else float("nan")
        )

    def summary(self) -> str:
        lines = [
            f"bench {self.workload} (nprocs={self.nprocs}, "
            f"backend={self.backend}, {len(self.wall_times)} repeat(s))",
            f"  wall time: best {self.best * 1e3:.2f} ms, "
            f"mean {self.mean * 1e3:.2f} ms",
            f"  modeled machine time: {self.modeled_time * 1e3:.3f} ms",
        ]
        for k, v in self.headline.items():
            shown = f"{v:.3f}" if isinstance(v, float) else str(v)
            lines.append(f"  {k:18s} {shown}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return _jsonable(
            {
                "workload": self.workload,
                "backend": self.backend,
                "nprocs": self.nprocs,
                "seed": self.seed,
                "cost_model": self.cost_model,
                "params": self.params,
                "repeats": len(self.wall_times),
                "wall_times_s": self.wall_times,
                "wall_best_s": self.best if self.wall_times else None,
                "wall_mean_s": self.mean if self.wall_times else None,
                "modeled_time_s": self.modeled_time,
                "headline": self.headline,
            }
        )


@dataclass
class AdaptResult(SessionResult):
    """Outcome of ``handle.adapt()`` — one adaptively-driven run.

    Wraps the controller's :class:`~repro.adapt.AdaptiveRun`: the
    modeled makespan under the selected layout mode plus the full
    window-by-window record (samples, decisions, replans,
    checkpoints).  Deterministic in the session config alone, like
    every other stage — the serve tier caches it by fingerprint.
    """

    workload: str
    nprocs: int
    seed: int
    cost_model: str
    mode: str
    window: int
    params: dict = field(default_factory=dict)
    run: "AdaptiveRun | None" = None

    def summary(self) -> str:
        r = self.run
        assert r is not None
        lines = [
            f"adapt {self.workload} (mode={self.mode}, "
            f"nprocs={self.nprocs}, window={self.window}, "
            f"cost model {self.cost_model}, seed={self.seed})",
            f"  modeled makespan: {r.makespan * 1e3:.3f} ms over "
            f"{r.steps} step(s)",
            f"  windows observed: {len(r.samples)}, mean imbalance "
            f"{r.mean_imbalance:.3f}",
        ]
        if self.mode == "adaptive":
            lines.append(
                f"  decisions: {len(r.decisions)}, replans: "
                f"{len(r.replans)}"
            )
            for rec in r.replans:
                lines.append(
                    f"    window {rec.window:2d} (step {rec.step:3d}) "
                    f"tier {rec.tier} [{rec.rule}] imbalance "
                    f"{rec.imbalance:.3f} -> {rec.transfer_bytes} bytes "
                    f"moved"
                )
        return "\n".join(lines)

    def to_json(self) -> dict:
        r = self.run
        assert r is not None
        return _jsonable(
            {
                "workload": self.workload,
                "nprocs": self.nprocs,
                "seed": self.seed,
                "cost_model": self.cost_model,
                "mode": self.mode,
                "window": self.window,
                "params": self.params,
                "run": r.to_json(),
            }
        )
