"""Session configuration — the one place run parameters live.

Every knob the public surface used to take piecemeal (``Machine`` +
``Engine`` + ``backend=`` + ``seed=`` + an event recorder wired by
hand) is a field of :class:`SessionConfig`; a :class:`~repro.api.Session`
is constructed from one config and threads it everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..backend.base import Backend
from ..defaults import DEFAULT_SEED
from ..machine.cost_model import CostModel, PRESETS

__all__ = [
    "DEFAULT_SEED",
    "SessionConfig",
    "resolve_cost_model",
    "BACKEND_NAMES",
]

#: backend specs a session accepts by name
BACKEND_NAMES = ("serial", "multiprocess")


def resolve_cost_model(spec: CostModel | str) -> CostModel:
    """Turn a cost-model spec (instance or preset name) into a model."""
    if isinstance(spec, CostModel):
        return spec
    try:
        return PRESETS[spec]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown cost model {spec!r} "
            f"(expected a CostModel or one of {sorted(PRESETS)})"
        ) from None


@dataclass(frozen=True)
class SessionConfig:
    """Everything a :class:`~repro.api.Session` needs, in one value.

    Two sessions constructed from equal configs produce bitwise-equal
    results on every registered workload (the determinism guarantee
    the test suite pins).
    """

    #: processor count of machines the session builds
    nprocs: int = 4
    #: machine cost model — a :class:`CostModel` or a preset name
    #: (``"iPSC/860"``, ``"Paragon"``, ``"modern"``, ``"zero"``)
    cost_model: CostModel | str = "Paragon"
    #: execution backend — ``None`` (in-process), ``"serial"``,
    #: ``"multiprocess"``, or a :class:`Backend` *subclass* constructed
    #: fresh per run (instances are rejected: a backend binds to one
    #: machine, and the session builds a machine per run)
    backend: str | type | None = None
    #: record typed events on every ``.run()`` (``.trace()`` always does)
    record_events: bool = False
    #: the RNG seed threaded to every workload (overridable per handle)
    seed: int = DEFAULT_SEED

    def validate(self) -> "SessionConfig":
        """Check the config; returns self so it chains."""
        if int(self.nprocs) < 1:
            raise ValueError(f"nprocs must be >= 1, got {self.nprocs}")
        resolve_cost_model(self.cost_model)
        b = self.backend
        if b is None or (isinstance(b, str) and b in BACKEND_NAMES):
            pass
        elif isinstance(b, type) and issubclass(b, Backend):
            pass
        elif isinstance(b, Backend):
            raise ValueError(
                "SessionConfig.backend must be a name or a Backend "
                "subclass, not an instance: a backend binds to one "
                "machine and the session builds a fresh machine per "
                "run (pass type(backend) or its name instead)"
            )
        else:
            raise ValueError(
                f"unknown backend {b!r} (expected None, one of "
                f"{BACKEND_NAMES}, or a Backend subclass)"
            )
        return self

    @property
    def backend_name(self) -> str:
        """The backend's display name (``"serial"`` when in-process)."""
        b = self.backend
        if b is None:
            return "serial"
        if isinstance(b, str):
            return b
        return getattr(b, "name", b.__name__)

    def resolved_cost_model(self) -> CostModel:
        return resolve_cost_model(self.cost_model)

    def with_(self, **changes) -> "SessionConfig":
        """A copy with ``changes`` applied (frozen-dataclass update)."""
        return replace(self, **changes)

    def to_json(self) -> dict:
        return {
            "nprocs": int(self.nprocs),
            "cost_model": self.resolved_cost_model().name,
            "backend": self.backend_name if self.backend is not None else None,
            "record_events": bool(self.record_events),
            "seed": int(self.seed),
        }

