"""The paper's §4 workloads, registered with the session facade.

Each registration wraps the application's ``execute_*`` implementation
(the non-deprecated core the legacy ``run_*`` shims also call), so the
``Session`` path is bitwise-identical to the legacy path by
construction.  Parameter names and defaults mirror the historical CLI:

========== ===============================================================
workload   parameters (defaults)
========== ===============================================================
adi        size=32, iterations=2, strategy="dynamic"
pic        size=32 (cells), steps=10, strategy="bblock", npart=8*size, ...
smoothing  size=32, steps=10, distribution="columns"
irregular  size=32 (nodes), steps=10, distribution="partitioned", kind=...
========== ===============================================================

The decorated name is bound to the :class:`~repro.api.WorkloadSpec`,
whose ``.machine_factory`` / ``.planning`` decorators attach the
remaining hooks.
"""

from __future__ import annotations

import numpy as np

from ..machine.machine import Machine
from ..machine.topology import ProcessorArray
from .registry import ExecutionOutcome, WorkloadContext, register_workload

__all__ = ["adi", "pic", "smoothing"]


# -- ADI (Figure 1) ----------------------------------------------------------


@register_workload(
    "adi",
    defaults={"size": 32, "iterations": 2, "strategy": "dynamic"},
    description="ADI iteration (Figure 1): x-sweep / y-sweep alternation",
)
def adi(ctx: WorkloadContext) -> ExecutionOutcome:
    from ..apps.adi import execute_adi

    size = int(ctx.params["size"])
    r = execute_adi(
        ctx.machine,
        size,
        size,
        int(ctx.params["iterations"]),
        str(ctx.params["strategy"]),
        seed=ctx.seed,
    )
    return ExecutionOutcome(
        solution=r.solution,
        headline={
            "sweep_msgs": r.sweep_messages,
            "redist_msgs": r.redistribution.messages,
            "modeled_time_ms": r.total_time * 1e3,
        },
        result=r,
    )


@adi.machine_factory
def _adi_machine(ctx: WorkloadContext) -> Machine:
    return Machine(ProcessorArray("R", (ctx.nprocs,)), cost_model=ctx.cost_model)


@adi.planning
def _adi_planning(ctx: WorkloadContext):
    from ..planner.workloads import adi_workload

    size = int(ctx.params["size"])
    return adi_workload(
        nx=size,
        ny=size,
        iterations=int(ctx.params["iterations"]),
        nprocs=ctx.nprocs,
        cost_model=ctx.cost_model,
    )


# -- PIC (Figure 2) ----------------------------------------------------------


@register_workload(
    "pic",
    defaults={
        "size": 32,          # NCELL
        "steps": 10,         # MAX_TIME
        "strategy": "bblock",
        "npart": None,       # None -> 8 * size (the historical CLI rule)
        "drift": None,       # None -> the PICConfig default
        "diffusion": None,
        "rebalance_every": None,
        "cluster_width": None,
        "imbalance_threshold": None,
    },
    description="particle-in-cell with B_BLOCK load balancing (Figure 2)",
)
def pic(ctx: WorkloadContext) -> ExecutionOutcome:
    from ..apps.pic import PICConfig, execute_pic

    p = ctx.params
    size = int(p["size"])
    extra = {
        k: p[k]
        for k in (
            "drift", "diffusion", "rebalance_every", "cluster_width",
            "imbalance_threshold",
        )
        if p[k] is not None
    }
    cfg = PICConfig(
        strategy=str(p["strategy"]),
        ncell=size,
        npart=int(p["npart"]) if p["npart"] is not None else 8 * size,
        max_time=int(p["steps"]),
        nprocs=ctx.nprocs,
        seed=ctx.seed,
        **extra,
    )
    r = execute_pic(ctx.machine, cfg)
    solution = np.array([s.imbalance for s in r.steps], dtype=np.float64)
    return ExecutionOutcome(
        solution=solution,
        headline={
            "mean_imbalance": r.mean_imbalance,
            "redistributions": r.redistributions,
            "modeled_time_ms": r.total_time * 1e3,
        },
        result=r,
    )


@pic.planning
def _pic_planning(ctx: WorkloadContext):
    from ..planner.workloads import pic_workload

    kwargs: dict = {
        "ncell": int(ctx.params["size"]),
        "steps": int(ctx.params["steps"]),
        "nprocs": ctx.nprocs,
        "cost_model": ctx.cost_model,
        "seed": ctx.seed,
    }
    if ctx.params["npart"] is not None:
        kwargs["npart"] = int(ctx.params["npart"])
    return pic_workload(**kwargs)


# -- smoothing (§4 distribution choice) --------------------------------------


@register_workload(
    "smoothing",
    defaults={"size": 32, "steps": 10, "distribution": "columns"},
    description="grid smoothing (§4): columns vs 2-D blocks choice",
)
def smoothing(ctx: WorkloadContext) -> ExecutionOutcome:
    from ..apps.smoothing import execute_smoothing

    r = execute_smoothing(
        int(ctx.params["size"]),
        int(ctx.params["steps"]),
        str(ctx.params["distribution"]),
        ctx.nprocs,
        ctx.cost_model,
        seed=ctx.seed,
        machine=ctx.machine,
    )
    return ExecutionOutcome(
        solution=r.solution,
        headline={
            "msgs_per_proc_step": r.msgs_per_proc_step,
            "modeled_time_ms": r.time * 1e3,
        },
        result=r,
    )


@smoothing.machine_factory
def _smoothing_machine(ctx: WorkloadContext) -> Machine:
    dist = str(ctx.params["distribution"])
    if dist == "blocks2d":
        side = int(round(ctx.nprocs ** 0.5))
        if side * side != ctx.nprocs:
            raise ValueError(
                f"blocks2d needs a square processor count, got {ctx.nprocs}"
            )
        shape: tuple[int, ...] = (side, side)
    else:
        shape = (ctx.nprocs,)
    return Machine(shape, cost_model=ctx.cost_model)


@smoothing.planning
def _smoothing_planning(ctx: WorkloadContext):
    from ..planner.workloads import smoothing_workload

    return smoothing_workload(
        n=int(ctx.params["size"]),
        nprocs=ctx.nprocs,
        steps=int(ctx.params["steps"]),
        cost_model=ctx.cost_model,
    )


# -- irregular (PARTI unstructured mesh; optional networkx) ------------------

try:
    from ..apps import irregular as _irregular_app

    _HAVE_NETWORKX = True
except ImportError:  # pragma: no cover - exercised only without networkx
    _HAVE_NETWORKX = False

if _HAVE_NETWORKX:

    @register_workload(
        "irregular",
        defaults={
            "size": 32,       # mesh nodes
            "steps": 10,      # relaxation sweeps
            "distribution": "partitioned",
            "kind": "geometric",
            "drift": 0.0,     # hot-spot motion per sweep (0 = historical)
        },
        description="unstructured-mesh relaxation via INDIRECT (PARTI)",
    )
    def irregular(ctx: WorkloadContext) -> ExecutionOutcome:
        graph = _irregular_app.make_mesh(
            int(ctx.params["size"]), seed=ctx.seed, kind=str(ctx.params["kind"])
        )
        r = _irregular_app.run_relaxation(
            ctx.machine,
            graph,
            str(ctx.params["distribution"]),
            sweeps=int(ctx.params["steps"]),
            seed=ctx.seed,
            drift=float(ctx.params["drift"]),
        )
        return ExecutionOutcome(
            solution=r.solution,
            headline={
                "cut_edges": r.cut_edges,
                "messages": r.messages,
                "modeled_time_ms": r.time * 1e3,
            },
            result=r,
        )

    __all__.append("irregular")
