#!/usr/bin/env python
"""The section 4 smoothing example: choosing the distribution at run time.

"A column distribution of the N x N grid will give rise to 2 messages
per processor, each of size N, per computation step.  On the other
hand, if the grid is distributed by blocks in two dimensions across a
p^2 processor array, then each computation step requires 4 messages of
size N/p each. ... the ratio N/p will determine the most appropriate
distribution."

This example plays the role of the portable Vienna Fortran program the
paper describes: at "run time" it reads N, queries $NP, evaluates the
closed-form cost model, *distributes* the grid accordingly — then
verifies the choice by measuring both through the session facade
(``sess.workload("smoothing", distribution=...)``).

Run:  python examples/grid_smoothing.py [N] [p] [machine]
      machine in {iPSC/860, Paragon, modern}
"""

import sys

import repro
from repro.apps.smoothing import best_distribution, predicted_step_cost

N = int(sys.argv[1]) if len(sys.argv) > 1 else 128
P = int(sys.argv[2]) if len(sys.argv) > 2 else 16
MODEL = repro.PRESETS[sys.argv[3]] if len(sys.argv) > 3 else repro.IPSC860
STEPS = 5

print(f"smoothing an {N} x {N} grid on {P} processors of {MODEL.name}")
print(f"machine half-performance message length n_1/2 = "
      f"{MODEL.bytes_equivalent_of_latency():.0f} bytes\n")

with repro.session(nprocs=P, cost_model=MODEL) as sess:
    for dist in ("columns", "blocks2d"):
        try:
            pred = predicted_step_cost(N, P, dist, MODEL)
            r = sess.workload(
                "smoothing", size=N, steps=STEPS, distribution=dist
            ).run().result
            print(f"{dist:9s}: predicted {pred*1e6:9.1f} us/step   "
                  f"measured {r.time/STEPS*1e6:9.1f} us/step   "
                  f"({r.messages} msgs, {r.bytes} bytes total)")
        except ValueError as e:
            print(f"{dist:9s}: {e}")

choice = best_distribution(N, P, MODEL)
print(f"\n=> the program would execute  DISTRIBUTE U :: "
      f"{'(:, BLOCK)' if choice == 'columns' else '(BLOCK, BLOCK)'}"
      f"   [{choice}]")
