#!/usr/bin/env python
"""A full Peaceman-Rachford ADI heat-equation solver on the VFE.

Where `adi_solver.py` reproduces Figure 1's *structure*, this example
shows the machinery solving a real PDE end to end: the 2-D heat
equation u_t = u_xx + u_yy with homogeneous Dirichlet boundaries,
advanced by Peaceman-Rachford splitting:

    (I - r/2 Lx) u*    = (I + r/2 Ly) u^n      [x-implicit, y-explicit]
    (I - r/2 Ly) u^n+1 = (I + r/2 Lx) u*       [y-implicit, x-explicit]

Each half step has an explicit stencil part (halo exchange along one
dimension) and an implicit tridiagonal solve along the other.  The
array is kept DYNAMIC and redistributed between half steps so that the
*implicit* direction is always processor-local — the Figure 1 idea
inside a real solver.  The result is verified against the analytic
decay rate of the fundamental sine mode.

Run:  python examples/heat_equation.py [n] [steps]
"""

import sys

import numpy as np

import repro
from repro.apps.tridiag import thomas_const
from repro.compiler.codegen import LineSweepKernel
from repro.core.distribution import dist_type
from repro.runtime.overlap import OverlapManager

N = int(sys.argv[1]) if len(sys.argv) > 1 else 48
STEPS = int(sys.argv[2]) if len(sys.argv) > 2 else 40
P = 4
H = 1.0 / (N + 1)
DT = 0.25 * H * H     # modest time step
R_COEF = DT / (H * H)  # r = dt / h^2


def explicit_along(arr, dim, engine):
    """(I + r/2 L_dim) applied with one halo exchange along `dim`."""
    widths = tuple(1 if d == dim else 0 for d in range(2))
    ov = OverlapManager(arr, widths, boundary=0.0)
    ov.load_interior()
    ov.exchange()
    for rank in arr.owning_ranks():
        pad = ov.padded(rank)
        out = ov.interior(rank)
        lo = np.take(pad, range(0, out.shape[dim]), axis=dim)
        hi = np.take(pad, range(2, 2 + out.shape[dim]), axis=dim)
        mid_idx = tuple(
            slice(w, pad.shape[d] - w) for d, w in enumerate(widths)
        )
        mid = pad[mid_idx]
        out[...] = mid + 0.5 * R_COEF * (lo - 2 * mid + hi)
    ov.store_interior()


def implicit_along(arr, dim):
    """(I - r/2 L_dim)^{-1} via communication-free line solves."""
    kernel = LineSweepKernel(
        arr, dim, lambda rhs: thomas_const(rhs, -0.5 * R_COEF, 1 + R_COEF)
    )
    stats = kernel.sweep()
    assert stats["remote_lines"] == 0, "redistribution made lines local"


def main():
    sess = repro.session(nprocs=P, cost_model="Paragon")
    engine = sess.engine(name="R")
    machine = engine.machine
    u = engine.declare(
        "U", (N, N), dist=dist_type("BLOCK", ":"), dynamic=True
    )
    # fundamental mode sin(pi x) sin(pi y): eigenvalue is known exactly
    x = np.pi * H * np.arange(1, N + 1)
    u0 = np.outer(np.sin(x), np.sin(x))
    u.from_global(u0)

    for _ in range(STEPS):
        # half step 1: x implicit (rows must be local along dim 0)
        explicit_along(u, 1, engine)         # y-explicit on (BLOCK, :)? no:
        # dim 1 is the undistributed dim under (BLOCK, :): halo-free,
        # but we keep the general path; now make dim 0 local to solve
        engine.distribute("U", dist_type(":", "BLOCK"))
        implicit_along(u, 0)
        # half step 2: y implicit
        explicit_along(u, 0, engine)
        engine.distribute("U", dist_type("BLOCK", ":"))
        implicit_along(u, 1)

    # analytic decay of the fundamental mode under Peaceman-Rachford:
    # per full step factor ((1 - r/2 l)/(1 + r/2 l))^2 with
    # l = 4 sin^2(pi h / 2) / h^2 * h^2 -> use the discrete eigenvalue
    lam = 4 * np.sin(np.pi * H / 2) ** 2  # of -h^2 * Lx for the mode
    g = ((1 - 0.5 * R_COEF * lam) / (1 + 0.5 * R_COEF * lam)) ** 2
    expected = u0 * g**STEPS
    measured = u.to_global()
    err = np.abs(measured - expected).max() / np.abs(expected).max()

    stats = machine.stats()
    print(f"Peaceman-Rachford heat equation, {N}x{N} grid, {STEPS} steps")
    print(f"  relative error vs analytic mode decay: {err:.2e}")
    print(f"  total messages: {stats.messages}  bytes: {stats.bytes}")
    print(f"  redistributions: {len(engine.reports)}  "
          f"plan-cache hits: {engine.plan_cache.hits}")
    print(f"  modeled time: {machine.time * 1e3:.2f} ms on "
          f"{machine.cost_model.name}")
    assert err < 1e-10, "solver must match the analytic decay exactly"
    print("  PASSED: matches analytic solution")


if __name__ == "__main__":
    main()
