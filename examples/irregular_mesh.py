#!/usr/bin/env python
"""Irregular distributions on an unstructured mesh (the PARTI case).

The paper's run-time layer supports "irregular accesses via
translation tables and sophisticated buffering schemes ... as
implemented in the PARTI routines" (section 3.2).  This example shows
why that machinery earns its keep: a Jacobi relaxation on an
unstructured mesh, distributed two ways —

- BLOCK over node ids (what you get without run-time distributions),
- INDIRECT from a BFS graph partition computed *at run time* from the
  mesh itself, installed with a DISTRIBUTE of an owner table.

Both are runs of the registered ``irregular`` workload
(``sess.workload("irregular", distribution=...)``); they share the
session seed, so they relax the same mesh from the same values and the
solutions agree bitwise.  The partition cuts the off-processor edges —
and hence the measured communication — roughly in half.

Run:  python examples/irregular_mesh.py [nodes]
"""

import sys

import numpy as np

import repro
from repro.apps.irregular import make_mesh, relaxation_reference

N = int(sys.argv[1]) if len(sys.argv) > 1 else 400
P = 4
SWEEPS = 4
SEED = 7

graph = make_mesh(N, seed=SEED)
print(f"unstructured mesh: {graph.number_of_nodes()} nodes, "
      f"{graph.number_of_edges()} edges, {P} processors\n")

ref = relaxation_reference(
    graph, np.random.default_rng(SEED).standard_normal(N), SWEEPS
)

with repro.session(nprocs=P, cost_model="iPSC/860", seed=SEED) as sess:
    for dist in ("block", "partitioned"):
        run = sess.workload(
            "irregular", size=N, steps=SWEEPS, distribution=dist
        ).run()
        r = run.result
        assert np.allclose(r.solution, ref), \
            "distribution must not change results"
        print(f"{dist:12s}: edge cut {r.cut_edges:3d} -> "
              f"{r.messages:3d} msgs, {r.bytes:7d} bytes, "
              f"{r.time * 1e3:7.2f} ms modeled")

print("\nThe INDIRECT distribution is computed from run-time data (the"
      "\nmesh connectivity) — exactly the capability the paper's dynamic"
      "\ndistributions provide and static declarations cannot.")
