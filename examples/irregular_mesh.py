#!/usr/bin/env python
"""Irregular distributions on an unstructured mesh (the PARTI case).

The paper's run-time layer supports "irregular accesses via
translation tables and sophisticated buffering schemes ... as
implemented in the PARTI routines" (section 3.2).  This example shows
why that machinery earns its keep: a Jacobi relaxation on an
unstructured mesh, distributed two ways —

- BLOCK over node ids (what you get without run-time distributions),
- INDIRECT from a BFS graph partition computed *at run time* from the
  mesh itself, installed with a DISTRIBUTE of an owner table.

Both run through the inspector/executor (schedule built once, reused
every sweep).  The partition cuts the off-processor edges — and hence
the measured communication — roughly in half.

Run:  python examples/irregular_mesh.py [nodes]
"""

import sys

import numpy as np

from repro.apps.irregular import (
    edge_cut,
    make_mesh,
    partition_bfs,
    relaxation_reference,
    run_relaxation,
)
from repro.core.dimdist import Block
from repro.machine import IPSC860, Machine, ProcessorArray, summary

N = int(sys.argv[1]) if len(sys.argv) > 1 else 400
P = 4
SWEEPS = 4

graph = make_mesh(N, seed=7)
print(f"unstructured mesh: {graph.number_of_nodes()} nodes, "
      f"{graph.number_of_edges()} edges, {P} processors\n")

owner_block = np.asarray(Block().owners_vec(N, P))
owner_part = partition_bfs(graph, P, seed=7)
print(f"edge cut, BLOCK over node ids: {edge_cut(graph, owner_block)}")
print(f"edge cut, BFS partition:       {edge_cut(graph, owner_part)}\n")

ref = None
for dist in ("block", "partitioned"):
    machine = Machine(ProcessorArray("P", (P,)), cost_model=IPSC860)
    r = run_relaxation(machine, graph, dist, sweeps=SWEEPS, seed=0)
    if ref is None:
        vals = np.random.default_rng(0).standard_normal(N)
        ref = relaxation_reference(graph, vals, SWEEPS)
    assert np.allclose(r.solution, ref), "distribution must not change results"
    print(f"{dist:12s}: {r.messages:3d} msgs, {r.bytes:7d} bytes, "
          f"{r.time * 1e3:7.2f} ms modeled")
    print(f"{'':12s}  {summary(machine)}")

print("\nThe INDIRECT distribution is computed from run-time data (the"
      "\nmesh connectivity) — exactly the capability the paper's dynamic"
      "\ndistributions provide and static declarations cannot.")
