#!/usr/bin/env python
"""Figure 2 reproduced: particle-in-cell with B_BLOCK load balancing.

A clustered particle population drifts across the domain.  Under a
static BLOCK distribution of cells the processor holding the cluster
does nearly all the work; the Figure 2 code periodically recomputes
BOUNDS with ``balance`` and executes ``DISTRIBUTE FIELD ::
B_BLOCK(BOUNDS)`` to even the load.

Both strategies run through one session; per-step trajectories come
from the full :class:`~repro.apps.pic.PICResult` on
``RunResult.result``.

Run:  python examples/pic_simulation.py [steps]
"""

import sys

import repro

STEPS = int(sys.argv[1]) if len(sys.argv) > 1 else 60

params = dict(size=128, npart=4000, steps=STEPS, drift=0.006)

results = {}
with repro.session(nprocs=4, cost_model="Paragon", seed=11) as sess:
    for strategy in ("static", "bblock"):
        results[strategy] = sess.workload(
            "pic", strategy=strategy, **params
        ).run().result

print(f"PIC: {params['npart']} particles in {params['size']} cells on "
      f"4 processors, {STEPS} steps\n")
print(f"{'step':>4s} {'static imb':>10s} {'bblock imb':>10s}  rebalanced?")
print("-" * 42)
for s_static, s_bblock in zip(results["static"].steps, results["bblock"].steps):
    if s_static.step % 5 == 0 or s_bblock.redistributed:
        mark = "   <-- DISTRIBUTE B_BLOCK(BOUNDS)" if s_bblock.redistributed else ""
        print(
            f"{s_static.step:4d} {s_static.imbalance:10.3f} "
            f"{s_bblock.imbalance:10.3f}{mark}"
        )

rb, rs = results["bblock"], results["static"]
print(f"\nmean imbalance: static={rs.mean_imbalance:.3f}  "
      f"bblock={rb.mean_imbalance:.3f}")
print(f"max  imbalance: static={rs.max_imbalance:.3f}  "
      f"bblock={rb.max_imbalance:.3f}")
print(f"redistributions executed: {rb.redistributions} "
      f"(total {rb.redistribution_bytes_total} bytes moved)")
print(f"modeled run time: static={rs.total_time*1e3:.2f} ms  "
      f"bblock={rb.total_time*1e3:.2f} ms")
