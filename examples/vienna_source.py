#!/usr/bin/env python
"""Feed the paper's Figure 1 *source text* to the compiler.

parse_program turns (lightly normalized) Vienna Fortran into the mini
IR; the reaching-distribution analysis then proves both TRIDIAG sweeps
communication-free, and the optimizer prunes a DCASE the way section
3.1 describes ("partial evaluation of distribution queries").

Run:  python examples/vienna_source.py
"""

from repro.compiler.comm_analysis import estimate_ref
from repro.compiler.ir import Assign, If, Loop
from repro.compiler.optimize import optimize
from repro.compiler.reaching import analyze
from repro.lang.frontend import parse_program

FIGURE1 = """
      PROGRAM ADI
      REAL U(NX, NY) DIST (:, BLOCK)
      REAL F(NX, NY) DIST (:, BLOCK)
      REAL V(NX, NY) DYNAMIC, RANGE( (:, BLOCK), ( BLOCK, :)),
     &     DIST (:, BLOCK)
      CALL RESID( V, U, F, NX, NY)
C Sweep over x-lines
      DO J = 1, NY
        CALL TRIDIAG( V(:, J), NX)
      ENDDO
      DISTRIBUTE V :: ( BLOCK, : )
C Sweep over y-lines
      DO I = 1, NX
        CALL TRIDIAG( V(I, :), NY)
      ENDDO
      END
"""

PORTABLE = """
PROGRAM SMOOTH
REAL U(N, N) DYNAMIC, RANGE ((:, BLOCK), (BLOCK, BLOCK)), DIST (:, BLOCK)
SELECT DCASE (U)
CASE (CYCLIC, CYCLIC)
U(I, J) = U(I, J)
CASE (:, BLOCK)
U(I, J) = 0.25 * (U(I-1, J) + U(I+1, J) + U(I, J-1) + U(I, J+1))
CASE DEFAULT
U(I, J) = U(I, J)
END SELECT
END
"""


def walk(block):
    for s in block:
        yield s
        if isinstance(s, Loop):
            yield from walk(s.body)
        elif isinstance(s, If):
            yield from walk(s.then)
            yield from walk(s.orelse)


def main() -> None:
    env = {"NX": 100, "NY": 100, "N": 100}
    print("--- Figure 1, as source text ---")
    prog = parse_program(FIGURE1, env)
    res = analyze(prog)
    for stmt in walk(prog.proc("adi").body):
        if isinstance(stmt, Assign) and "TRIDIAG" in stmt.label.upper():
            ps = res.plausible(stmt.sid, "V")
            (pattern,) = ps.patterns
            est = estimate_ref(stmt.reads[0], pattern, (100, 100), (4,))
            print(
                f"  sweep along dim {stmt.reads[0].dim}: plausible {ps}, "
                f"estimated communication: {est.messages} messages"
            )
    print("  -> the compiler proves both sweeps local, as the paper claims\n")

    print("--- a portable DCASE program, partially evaluated ---")
    prog2 = parse_program(PORTABLE, env)
    new, stats = optimize(prog2)
    print(f"  arms pruned as dead:  {stats.dead_arms}")
    print(f"  constructs specialized: {stats.specialized_dcases}")
    for line in stats.details:
        print(f"    - {line}")


if __name__ == "__main__":
    main()
