#!/usr/bin/env python
"""The compiler side of the paper (section 3.1), demonstrated.

Builds the ADI program in the mini-IR, runs the reaching-distributions
analysis, shows the *plausible distribution sets* at each sweep, and
partially evaluates a DCASE: arms that no plausible distribution can
match are pruned at compile time.

Run:  python examples/compiler_analysis.py
"""

from repro.compiler import (
    AccessKind,
    ALWAYS,
    ArrayRef,
    Assign,
    Block,
    DCaseStmt,
    DistributeStmt,
    IRProgram,
    Loop,
    NEVER,
    ProcDef,
    analyze,
    decide_querylist,
    estimate_memory,
    estimate_ref,
)
from repro.core.query import QueryList, TypePattern

# --- the ADI program with an outer loop, in IR form ---------------------
prog = IRProgram()
prog.declare("V", initial=(":", "BLOCK"), range_=[(":", "BLOCK"), ("BLOCK", ":")])

x_sweep = Assign(
    ArrayRef("V"), (ArrayRef("V", AccessKind.ROW_SWEEP, dim=0),), "x-sweep"
)
y_sweep = Assign(
    ArrayRef("V"), (ArrayRef("V", AccessKind.ROW_SWEEP, dim=1),), "y-sweep"
)
loop = Loop(Block([
    DistributeStmt("V", TypePattern((":", "BLOCK"))),
    x_sweep,
    DistributeStmt("V", TypePattern(("BLOCK", ":"))),
    y_sweep,
]))
prog.add_proc(ProcDef("main", (), Block([loop])))

result = analyze(prog)

print("reaching-distribution analysis of the ADI loop:")
for stmt, label in ((x_sweep, "x-sweep"), (y_sweep, "y-sweep")):
    ps = result.plausible(stmt.sid, "V")
    print(f"  plausible distributions of V before the {label}: {ps}")

# --- communication analysis under each plausible type -----------------------
print("\ncommunication analysis (100 x 100 grid, 4 processors):")
for label, stmt, ref in (
    ("x-sweep", x_sweep, x_sweep.reads[0]),
    ("y-sweep", y_sweep, y_sweep.reads[0]),
):
    ps = result.plausible(stmt.sid, "V")
    for pattern in sorted(ps.patterns, key=repr):
        est = estimate_ref(ref, pattern, (100, 100), (4,))
        mem = estimate_memory(pattern, (100, 100), (4,))
        print(f"  {label} under {pattern!r:14}: {est.messages:5d} msgs, "
              f"{est.volume:6d} elems; {mem.elements_per_proc} elems/proc")

# --- partial evaluation of a DCASE ----------------------------------------
print("\npartial evaluation of a DCASE at the y-sweep point:")
state = {"V": result.plausible(y_sweep.sid, "V")}
arms = [
    ("(BLOCK, :)  arm", QueryList([("BLOCK", ":")])),
    ("(:, BLOCK)  arm", QueryList([(":", "BLOCK")])),
    ("(CYCLIC, :) arm", QueryList([("CYCLIC", ":")])),
]
for label, ql in arms:
    verdict = decide_querylist(state, ("V",), ql)
    note = {
        ALWAYS: "compiler specializes: no run-time test needed",
        NEVER: "dead arm: pruned at compile time",
    }.get(verdict, "kept: run-time dispatch required")
    print(f"  {label}: {verdict.upper():6s} — {note}")
