#!/usr/bin/env python
"""Quickstart: the Vienna Fortran dynamic-distribution model in 60 lines.

Declares a processor array and a dynamically distributed array, runs
the paper's core statement — ``DISTRIBUTE`` — and queries distributions
with IDT and DCASE, printing the communication the redistribution cost.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    DynamicAttr,
    Engine,
    Machine,
    PARAGON,
    ProcessorArray,
    dist_type,
)

# PROCESSORS R(1:4) on a Paragon-like cost model
R = ProcessorArray("R", (4,))
machine = Machine(R, cost_model=PARAGON)
vfe = Engine(machine)

# REAL V(100, 100) DYNAMIC, RANGE ((:, BLOCK), (BLOCK, :)), DIST (:, BLOCK)
V = vfe.declare(
    "V",
    (100, 100),
    dynamic=DynamicAttr(
        range_=[(":", "BLOCK"), ("BLOCK", ":")],
        initial=dist_type(":", "BLOCK"),
    ),
)
V.from_global(np.arange(100 * 100, dtype=float).reshape(100, 100))

print(f"declared {V}")
print(f"  local segment of processor 0: {V.local(0).shape}")
print(f"  owner of element (42, 77):    processor {V.dist.owner((42, 77))}")

# IDT — the run-time distribution test (paper section 2.5.2)
print(f"\nIDT(V, (:, BLOCK))  = {vfe.idt('V', (':', 'BLOCK'))}")
print(f"IDT(V, (BLOCK, *))  = {vfe.idt('V', ('BLOCK', '*'))}")

# DISTRIBUTE V :: (BLOCK, :) — the executable redistribution statement
report = vfe.distribute("V", dist_type("BLOCK", ":"))[0]
print(f"\nDISTRIBUTE V :: (BLOCK, :)")
print(f"  messages: {report.messages}")
print(f"  bytes:    {report.bytes}")
print(f"  elements moved/kept: {report.elements_moved}/{report.elements_kept}")
print(f"  modeled time: {report.time * 1e3:.3f} ms on {machine.cost_model.name}")

# DCASE — dispatch an algorithm on the current distribution (section 2.5.1)
dc = vfe.dcase("V")
dc.case([("BLOCK", ":")], lambda: "row-sweep version")
dc.case([(":", "BLOCK")], lambda: "column-sweep version")
dc.default(lambda: "generic version")
print(f"\nDCASE selected: {dc.execute()}")

# data survived the redistribution bit-for-bit
assert V.get((42, 77)) == 42 * 100 + 77
print("\ndata intact after redistribution — done.")
