#!/usr/bin/env python
"""Quickstart: one session, the whole reproduction.

``repro.session(...)`` is the single entry point: it owns the machine
policy (processor count, cost model), the execution backend, the plan
cache and the RNG seed.  Workloads come from a registry —
``sess.workload("adi", ...)`` returns a handle with typed ``plan`` /
``run`` / ``trace`` / ``bench`` stages — and the raw Vienna Fortran
Engine (declare / DISTRIBUTE / IDT / DCASE) hangs off the same facade
via ``sess.engine()``.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro

with repro.session(nprocs=4, cost_model="Paragon") as sess:
    # -- the high road: a registered workload, one fluent chain ---------
    result = sess.workload("adi", size=64, iterations=2).run()
    print(result.summary())
    print()

    # -- the low road: the Vienna Fortran Engine on a session machine ---
    # PROCESSORS R(1:4); REAL V(100, 100) DYNAMIC,
    #   RANGE ((:, BLOCK), (BLOCK, :)), DIST (:, BLOCK)
    vfe = sess.engine(name="R")
    machine = vfe.machine
    V = vfe.declare(
        "V",
        (100, 100),
        dynamic=repro.DynamicAttr(
            range_=[(":", "BLOCK"), ("BLOCK", ":")],
            initial=repro.dist_type(":", "BLOCK"),
        ),
    )
    V.from_global(np.arange(100 * 100, dtype=float).reshape(100, 100))

    print(f"declared {V}")
    print(f"  local segment of processor 0: {V.local(0).shape}")
    print(f"  owner of element (42, 77):    processor {V.dist.owner((42, 77))}")

    # IDT — the run-time distribution test (paper section 2.5.2)
    print(f"\nIDT(V, (:, BLOCK))  = {vfe.idt('V', (':', 'BLOCK'))}")
    print(f"IDT(V, (BLOCK, *))  = {vfe.idt('V', ('BLOCK', '*'))}")

    # DISTRIBUTE V :: (BLOCK, :) — the executable redistribution statement
    report = vfe.distribute("V", repro.dist_type("BLOCK", ":"))[0]
    print(f"\nDISTRIBUTE V :: (BLOCK, :)")
    print(f"  messages: {report.messages}")
    print(f"  bytes:    {report.bytes}")
    print(f"  elements moved/kept: {report.elements_moved}/{report.elements_kept}")
    print(f"  modeled time: {report.time * 1e3:.3f} ms "
          f"on {machine.cost_model.name}")

    # DCASE — dispatch an algorithm on the current distribution (2.5.1)
    dc = vfe.dcase("V")
    dc.case([("BLOCK", ":")], lambda: "row-sweep version")
    dc.case([(":", "BLOCK")], lambda: "column-sweep version")
    dc.default(lambda: "generic version")
    print(f"\nDCASE selected: {dc.execute()}")

    # data survived the redistribution bit-for-bit
    assert V.get((42, 77)) == 42 * 100 + 77
    print("\ndata intact after redistribution — done.")
