#!/usr/bin/env python
"""Serve client: every endpoint, round-tripped against the CLI.

Starts the asyncio planning service in-process (or, with ``--url``,
talks to one already running via ``python -m repro serve``), walks a
single workload through every endpoint — ``/workloads``, ``/healthz``,
``/plan``, ``/run``, ``/trace``, ``/bench``, ``/stats`` — and then
proves the service/CLI consistency contract: the HTTP bodies of the
deterministic stages are **byte-identical** to what ``python -m repro
plan|run|trace --json`` prints for the same configuration (``run``
modulo the CLI-only ``verified_against_serial`` key).

Run:  python examples/serve_client.py [--url http://127.0.0.1:8642]
"""

import argparse
import json
import os
import subprocess
import sys
import urllib.request

from repro.serve import PlanningService, ServerThread

WORKLOAD = "adi"
SIZE, ITERATIONS = 32, 2


def fetch(url: str, payload: dict | None = None) -> tuple[dict, bytes]:
    """GET (payload=None) or POST one endpoint; returns (headers, body)."""
    req = urllib.request.Request(
        url,
        data=None if payload is None else json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="GET" if payload is None else "POST",
    )
    with urllib.request.urlopen(req, timeout=120) as resp:
        return dict(resp.headers), resp.read()


def cli_json(*argv: str) -> bytes:
    """What ``python -m repro <argv> --json`` prints, as bytes."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-m", "repro", *argv, "--json"],
        check=True, capture_output=True, env=env,
    )
    return out.stdout.rstrip(b"\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", default=None,
                        help="base URL of a running server (default: "
                             "start one in-process)")
    args = parser.parse_args()

    server = None
    if args.url is None:
        server = ServerThread(PlanningService()).start()
    base = (args.url or server.url).rstrip("/")
    print(f"talking to {base}")

    try:
        # -- the read-only endpoints ------------------------------------
        _, body = fetch(f"{base}/healthz")
        print(f"/healthz   -> ok, version {json.loads(body)['version']}")
        _, body = fetch(f"{base}/workloads")
        names = [w["name"] for w in json.loads(body)["workloads"]]
        print(f"/workloads -> {', '.join(names)}")

        # -- every stage for one workload -------------------------------
        request = {"workload": WORKLOAD, "size": SIZE,
                   "iterations": ITERATIONS}
        headers, plan_body = fetch(f"{base}/plan", request)
        print(f"/plan      -> {len(plan_body)} bytes "
              f"(cache {headers['X-Repro-Cache']})")
        headers, run_body = fetch(f"{base}/run", request)
        print(f"/run       -> headline {json.loads(run_body)['headline']!r}")
        headers, trace_body = fetch(f"{base}/trace", request)
        print(f"/trace     -> {len(json.loads(trace_body)['events'])} events")
        _, bench_body = fetch(f"{base}/bench", dict(request, repeats=1))
        print(f"/bench     -> {json.loads(bench_body)['repeats']} repeat(s)")
        _, stats = fetch(f"{base}/stats")
        stats = json.loads(stats)
        print(f"/stats     -> sessions {stats['sessions']['created']} created"
              f" / {stats['sessions']['reused']} reused, response cache "
              f"{stats['response_cache']['hits']} hit(s)")

        # -- the consistency contract: service bytes == CLI bytes --------
        size, iters = str(SIZE), str(ITERATIONS)
        cli_plan = cli_json("plan", WORKLOAD, "--size", size,
                            "--iterations", iters)
        assert plan_body.rstrip(b"\n") == cli_plan, "/plan diverged from CLI"
        cli_trace = cli_json("trace", WORKLOAD, "--size", size,
                             "--iterations", iters)
        assert trace_body.rstrip(b"\n") == cli_trace, "/trace diverged from CLI"
        # the CLI's run report adds one CLI-only key (its serial
        # cross-check verdict); everything else must match exactly
        cli_run = json.loads(cli_json("run", WORKLOAD, "--size", size,
                                      "--iterations", iters))
        cli_run.pop("verified_against_serial")
        assert json.loads(run_body) == cli_run, "/run diverged from CLI"
        print("service responses are byte-identical to the CLI --json output")

        # -- and a replay is a cache hit, byte-for-byte ------------------
        headers, again = fetch(f"{base}/plan", request)
        assert headers["X-Repro-Cache"] == "hit"
        assert again == plan_body
        print("replayed /plan: cache hit, identical bytes")
    finally:
        if server is not None:
            server.stop()


if __name__ == "__main__":
    main()
