#!/usr/bin/env python
"""Figure 1 reproduced: ADI iteration under four distribution strategies.

The paper's claim — "all the communication is confined to the
redistribution operation, with only local accesses during the
computation" — shown as a table over the strategies of section 4:

- dynamic      the Figure 1 code (DISTRIBUTE between the sweeps)
- static_cols  keep (:, BLOCK); the y-sweep pays per-line communication
- static_rows  keep (BLOCK, :); the x-sweep pays instead
- two_arrays   two static arrays + assignment (double the memory)

Each strategy is one ``sess.workload("adi", strategy=...)`` run; the
full :class:`~repro.apps.adi.ADIResult` rides along on
``RunResult.result``.

Run:  python examples/adi_solver.py [N] [iters]
"""

import sys

import numpy as np

import repro
from repro.apps.adi import adi_reference

N = int(sys.argv[1]) if len(sys.argv) > 1 else 64
ITERS = int(sys.argv[2]) if len(sys.argv) > 2 else 4
PROCS = 4

print(f"ADI on a {N} x {N} grid, {ITERS} iterations, {PROCS} processors "
      f"(Paragon cost model)\n")

header = (
    f"{'strategy':12s} {'sweep msgs':>10s} {'redist msgs':>11s} "
    f"{'total bytes':>12s} {'peak mem':>9s} {'time (ms)':>10s}"
)
print(header)
print("-" * len(header))

reference = adi_reference(
    np.random.default_rng(0).standard_normal((N, N)), ITERS, -1.0, 4.0
)

with repro.session(nprocs=PROCS, cost_model="Paragon") as sess:
    for strategy in ("dynamic", "static_cols", "static_rows", "two_arrays"):
        r = sess.workload(
            "adi", size=N, iterations=ITERS, strategy=strategy
        ).run()
        a = r.result
        assert np.allclose(a.solution, reference), "strategies must agree!"
        total_bytes = (
            a.x_sweep.bytes + a.y_sweep.bytes + a.redistribution.bytes
        )
        print(
            f"{strategy:12s} {a.sweep_messages:10d} "
            f"{a.redistribution.messages:11d} {total_bytes:12d} "
            f"{a.peak_memory:9d} {a.total_time * 1e3:10.3f}"
        )

print(
    "\nAll four strategies produce bit-identical solutions; the dynamic\n"
    "strategy's sweeps are communication-free exactly as Figure 1 claims."
)
