#!/usr/bin/env python
"""Observability walkthrough: one served request, fully instrumented.

Starts the planning service in-process, sends a ``/trace`` request, and
then inspects everything :mod:`repro.obs` recorded about it:

1. the ``X-Repro-Request-Id`` response header and the spans that
   carry it (``serve.request`` down to ``session.trace``);
2. the Prometheus ``/metrics`` exposition — request latency histogram,
   cache lookup counters, planner search counters;
3. a merged ``chrome://tracing`` file: the *runtime* spans of the
   served request (pid 1) next to the *simulated machine's* timeline
   (pid 0) — the request and the parallel execution it simulated, one
   trace viewer, two levels of the stack.

Run:  python examples/observe.py [--out observe_trace.json]
"""

import argparse
import json
import urllib.request

import repro
from repro import obs
from repro.serve import PlanningService, ServerThread

WORKLOAD, SIZE, STEPS = "smoothing", 32, 4


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="observe_trace.json",
                        help="chrome://tracing output path")
    args = parser.parse_args()

    obs.enable()
    obs.clear_spans()

    # -- 1. one served request, end to end ------------------------------
    with ServerThread(PlanningService()) as url:
        target = (f"{url}/trace?workload={WORKLOAD}&size={SIZE}"
                  f"&steps={STEPS}&compact=true")
        with urllib.request.urlopen(target, timeout=120) as resp:
            rid = resp.headers["X-Repro-Request-Id"]
            body = json.loads(resp.read())
        print(f"served /trace for {WORKLOAD!r}: request id {rid}")
        print(f"  simulated blocking makespan: "
              f"{body['blocking']['metrics']['makespan']:.6f} s")

        spans = obs.finished_spans(request_id=rid)
        print(f"\nspans recorded for this request ({len(spans)}):")
        for s in sorted(spans, key=lambda s: s.start):
            print(f"  {s.name:24s} {s.duration * 1e3:8.2f} ms  "
                  f"attrs={s.attrs}")

        # -- 2. the Prometheus exposition -------------------------------
        with urllib.request.urlopen(f"{url}/metrics", timeout=30) as resp:
            metrics = resp.read().decode()
    interesting = ("repro_http_request_seconds_count",
                   "repro_http_requests_total",
                   "repro_planner_plans_total",
                   "repro_plan_cache_lookups_total",
                   "repro_response_cache_lookups_total")
    print("\nselected /metrics series:")
    for line in metrics.splitlines():
        if line.startswith(interesting):
            print(f"  {line}")

    # -- 3. merge runtime spans with the simulated timeline -------------
    # re-simulate the same configuration locally to get the Timeline
    # object (the served response carries only its JSON summary)
    with repro.session(nprocs=4) as sess:
        timeline = sess.workload(
            WORKLOAD, size=SIZE, steps=STEPS).trace().blocking
    doc = obs.dump_chrome_trace(args.out, timeline=timeline)
    events = doc["traceEvents"]
    print(f"\nwrote {args.out}: {len(events)} events "
          f"({doc['otherData']['runtime_spans']} runtime spans, "
          f"pid 0 = simulated machine, pid 1 = repro runtime)")
    print("open it in chrome://tracing or https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
