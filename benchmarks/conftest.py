"""Shared helpers for the experiment benches (DESIGN.md E1-E8).

Each bench regenerates one of the paper's evaluation artifacts: it
prints the rows/series of the corresponding figure/analysis (visible
with ``pytest benchmarks/ --benchmark-only -s``), asserts the *shape*
of the paper's claim, and times the underlying operation with
pytest-benchmark.
"""

from __future__ import annotations

import sys


def emit_table(title: str, header: list[str], rows: list[list]) -> None:
    """Print a bench table (works under pytest capture via -s)."""
    out = sys.stdout
    widths = [
        max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(header)
    ]
    print(f"\n== {title} ==", file=out)
    print(
        "  ".join(str(h).rjust(w) for h, w in zip(header, widths)), file=out
    )
    for row in rows:
        print(
            "  ".join(_fmt(v).rjust(w) for v, w in zip(row, widths)),
            file=out,
        )


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) < 1e-2 or abs(v) >= 1e5:
            return f"{v:.3e}"
        return f"{v:.3f}"
    return str(v)
