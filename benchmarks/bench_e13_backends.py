"""E13 — SPMD execution backends: modeled vs. measured cost.

Until PR 2 every alpha/beta the planner optimized against was an
*assumption*; nothing ever measured a real transfer.  E13 closes the
model-vs-measurement loop:

1. calibrate the multiprocess backend's message-passing transport
   (ping-pong microbenchmark, least-squares alpha/beta fit) into a
   ``MeasuredMachine``;
2. execute the ADI redistribution flip *for real* — worker processes,
   shared-memory segments, send/recv of actual bytes — on at least
   two machine shapes, wall-clock timing each DISTRIBUTE;
3. print the measured time next to (a) the transition cost the
   planner's cost engine predicts from the *calibrated* constants and
   (b) the same prediction from the uncalibrated Paragon preset.

Claims asserted:

- the multiprocess backend's array contents are bitwise-identical to
  the serial reference on every shape measured;
- the calibrated model ranks redistribution sizes the same way the
  wall clock does (bigger arrays cost more, both modeled and
  measured);
- the calibrated prediction lands within three orders of magnitude of
  the wall clock (a *measured* model is in the right universe — the
  wall clock additionally pays per-op dispatch overhead the postal
  model does not price).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import emit_table
from repro.backend import MultiprocessBackend
from repro.backend.calibrate import calibrate
from repro.core.distribution import dist_type
from repro.machine import Machine, MeasuredMachine, PARAGON, ProcessorArray
from repro.planner import CostEngine
from repro.runtime.engine import Engine

#: (processor-array shape, from-layout, to-layout, array extents):
#: the ADI flip on a 1-D arrangement, a block->cyclic remap on a 2-D
#: grid — two genuinely different machine shapes and transfer shapes.
SHAPES = [
    ((4,), (":", "BLOCK"), ("BLOCK", ":"), (32, 64)),
    ((2, 2), ("BLOCK", "BLOCK"), ("CYCLIC", "BLOCK"), (32, 64)),
]


@pytest.fixture(scope="module")
def transport_calibration():
    return calibrate(nprocs=2, repeats=5)


def _measured_flip(machine, from_spec, to_spec, n: int, repeats: int = 5):
    """Wall-clock one DISTRIBUTE flip of an n x n array; return the
    best-of-``repeats`` seconds and the final array contents."""
    engine = Engine._create(machine)
    v = engine.declare(
        "V", (n, n), dist=dist_type(*from_spec), dynamic=True
    )
    grid = np.random.default_rng(n).standard_normal((n, n))
    v.from_global(grid)
    there = dist_type(*to_spec)
    back = dist_type(*from_spec)
    best = float("inf")
    for rep in range(repeats):
        target = there if rep % 2 == 0 else back
        t0 = time.perf_counter()
        engine.distribute("V", target)
        best = min(best, time.perf_counter() - t0)
    return best, v.to_global(), grid


def test_e13_modeled_vs_measured_redistribution(transport_calibration):
    cal = transport_calibration
    rows = []
    for proc_shape, from_spec, to_spec, sizes in SHAPES:
        for n in sizes:
            machine = MeasuredMachine(
                ProcessorArray("P", proc_shape), cal
            )
            backend = MultiprocessBackend()
            backend.attach(machine)
            try:
                measured, final, grid = _measured_flip(
                    machine, from_spec, to_spec, n
                )
            finally:
                backend.close()
            # bitwise conformance against the serial reference
            serial_machine = MeasuredMachine(
                ProcessorArray("P", proc_shape), cal
            )
            _t, serial_final, _g = _measured_flip(
                serial_machine, from_spec, to_spec, n
            )
            assert np.array_equal(final, serial_final)

            old = dist_type(*from_spec).apply(
                (n, n), machine.full_section()
            )
            new = dist_type(*to_spec).apply(
                (n, n), machine.full_section()
            )
            modeled = CostEngine(machine).transition_cost(old, new)
            paragon_machine = Machine(
                ProcessorArray("P", proc_shape), cost_model=PARAGON
            )
            preset = CostEngine(paragon_machine).transition_cost(old, new)
            rows.append(
                [
                    "x".join(map(str, proc_shape)),
                    n,
                    measured * 1e3,
                    modeled * 1e3,
                    preset * 1e3,
                    modeled / measured if measured > 0 else float("inf"),
                ]
            )
    emit_table(
        "E13: DISTRIBUTE flip, measured wall clock vs modeled "
        f"(calibrated: {cal.summary()})",
        ["procs", "n", "measured_ms", "modeled_ms", "Paragon_ms",
         "modeled/measured"],
        rows,
    )
    # the calibrated model ranks sizes deterministically (asserted);
    # wall-clock ordering on sub-ms timings is reported, not asserted
    # — shared CI runners make it informational only
    by_shape: dict[str, list] = {}
    for shape, n, measured, modeled, _preset, _r in rows:
        by_shape.setdefault(shape, []).append((n, measured, modeled))
    for shape, entries in by_shape.items():
        entries.sort()
        for (_n0, m0, mod0), (_n1, m1, mod1) in zip(entries, entries[1:]):
            assert mod1 > mod0, shape
            if m1 <= m0:
                print(
                    f"  note[{shape}]: wall clock did not rank sizes "
                    f"({m0:.3f}ms -> {m1:.3f}ms); dispatch overhead "
                    f"dominates at this scale"
                )
    # a measured model lands in the right universe: the wall clock
    # additionally pays per-op dispatch overhead the postal model
    # does not price, so allow three orders of slack either way
    for _shape, _n, measured, modeled, _preset, _r in rows:
        assert modeled > 0 and measured > 0
        assert 1e-3 < modeled / measured < 1e3


def test_e13_calibration_is_planner_ready(transport_calibration):
    """The fitted machine drops into the planner unchanged (the
    'MeasuredMachine the planner accepts' acceptance criterion)."""
    from repro.planner import adi_workload
    from repro.planner.workloads import _plan_workload

    machine = MeasuredMachine(
        ProcessorArray("M", (4,)), transport_calibration
    )
    workload = adi_workload(32, 32, iterations=2, machine=machine)
    plan = _plan_workload(workload, cost_engine=CostEngine(machine))
    assert plan.total_cost >= 0
    assert plan.steps, "planner produced no schedule on a MeasuredMachine"
    best_static = min(plan.static.values())
    assert plan.total_cost <= best_static + 1e-12
