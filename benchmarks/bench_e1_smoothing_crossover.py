"""E1 — the §4 smoothing analysis: column vs. 2-D block distribution.

Paper claim: column distribution costs 2 messages of size N per
processor per step; 2-D blocks cost 4 messages of size N/p; "the ratio
N/p will determine the most appropriate distribution".

This bench regenerates the series: per grid size N and machine, the
predicted and measured per-step cost of each distribution and the
winner, showing the crossover.  Absolute times are modeled (alpha +
beta*n); the *shape* — blocks win at large N, columns at small N, and
the crossover N* grows with the machine's alpha/beta ratio — is
asserted.
"""

import pytest

from conftest import emit_table
from repro.apps.smoothing import (
    best_distribution,
    predicted_step_cost,
    execute_smoothing,
)
from repro.machine.cost_model import IPSC860, MODERN_CLUSTER, PARAGON

SIZES = [8, 16, 32, 64, 128, 256, 512]
P = 16  # p^2 processor array with p = 4


def crossover_n(model) -> float:
    """Analytic crossover: columns cheaper below this N."""
    side = 4
    return model.alpha / (model.beta * 8 * (1 - 2 / side))


def test_e1_crossover_table():
    rows = []
    for model in (IPSC860, PARAGON, MODERN_CLUSTER):
        for n in SIZES:
            c = predicted_step_cost(n, P, "columns", model)
            b = predicted_step_cost(n, P, "blocks2d", model)
            rows.append(
                [
                    model.name,
                    n,
                    c * 1e6,
                    b * 1e6,
                    best_distribution(n, P, model),
                ]
            )
    emit_table(
        "E1: smoothing cost per step (us), columns vs 2-D blocks, p=16",
        ["machine", "N", "cols_us", "blk_us", "winner"],
        rows,
    )
    # shape assertions: each machine flips from columns to blocks as N
    # grows, and the crossover point is ordered by alpha/beta
    for model in (IPSC860, PARAGON, MODERN_CLUSTER):
        winners = [best_distribution(n, P, model) for n in SIZES + [10**6]]
        assert winners[0] == "columns"
        assert winners[-1] == "blocks2d"
        flips = sum(1 for a, b in zip(winners, winners[1:]) if a != b)
        assert flips == 1, "exactly one crossover"
    assert (
        crossover_n(IPSC860)
        < crossover_n(PARAGON)
        < crossover_n(MODERN_CLUSTER)
    )


def test_e1_measured_agrees_with_model():
    """Measured halo-exchange traffic follows the closed forms."""
    rows = []
    for n in (32, 64, 128):
        r_col = execute_smoothing(n, 2, "columns", P, IPSC860, seed=0)
        r_blk = execute_smoothing(n, 2, "blocks2d", P, IPSC860, seed=0)
        rows.append(
            [
                n,
                r_col.messages // 2,
                r_col.bytes // (2 * 8),
                r_blk.messages // 2,
                r_blk.bytes // (2 * 8),
            ]
        )
        # column messages carry N elements each
        assert r_col.bytes == r_col.messages * n * 8
        # block messages carry N/4 elements each
        assert r_blk.bytes == r_blk.messages * (n // 4) * 8
        # interior message counts: 15 boundaries x2 vs 24 boundaries x2
        assert r_col.messages == 2 * 15 * 2
        assert r_blk.messages == 2 * 24 * 2
    emit_table(
        "E1: measured per-step traffic (msgs, elements) on iPSC/860",
        ["N", "col_msgs", "col_elems", "blk_msgs", "blk_elems"],
        rows,
    )


@pytest.mark.parametrize("distribution", ["columns", "blocks2d"])
def test_e1_step_benchmark(benchmark, distribution):
    """Wall-clock cost of one simulated smoothing step."""
    benchmark(
        execute_smoothing, 64, 1, distribution, P, IPSC860, seed=0
    )
