"""E2 — Figure 1: ADI with dynamic redistribution vs. the alternatives.

Paper claim: with the DISTRIBUTE between the sweeps, "all the
communication is confined to the redistribution operation, with only
local accesses during the computation"; the two-static-arrays
alternative "clearly, wastes storage space".

Regenerated series: per strategy, sweep messages / redistribution
messages / total bytes / peak memory / modeled time, over grid sizes
and processor counts.  Shape assertions: dynamic sweeps are free,
dynamic beats static in modeled time at every size, two_arrays doubles
memory.
"""

import numpy as np
import pytest

from conftest import emit_table
from repro.apps.adi import adi_reference, execute_adi
from repro.machine import Machine, PARAGON, ProcessorArray

STRATEGIES = ("dynamic", "static_cols", "static_rows", "two_arrays")


def machine(p):
    return Machine(ProcessorArray("R", (p,)), cost_model=PARAGON)


def test_e2_strategy_table():
    rows = []
    n, iters, p = 64, 2, 4
    ref = adi_reference(
        np.random.default_rng(0).standard_normal((n, n)), iters, -1.0, 4.0
    )
    results = {}
    for s in STRATEGIES:
        r = execute_adi(machine(p), n, n, iters, s, seed=0)
        assert np.allclose(r.solution, ref)
        results[s] = r
        rows.append(
            [
                s,
                r.sweep_messages,
                r.redistribution.messages,
                r.x_sweep.bytes + r.y_sweep.bytes + r.redistribution.bytes,
                r.peak_memory,
                r.total_time * 1e3,
            ]
        )
    emit_table(
        f"E2: ADI {n}x{n}, {iters} iters, {p} procs (Paragon model)",
        ["strategy", "msgs_sweep", "msgs_redist", "bytes", "peak_mem", "ms"],
        rows,
    )
    # Figure 1 claims:
    assert results["dynamic"].sweep_messages == 0
    assert results["dynamic"].redistribution.messages > 0
    assert results["static_cols"].sweep_messages > 0
    assert results["dynamic"].total_time < results["static_cols"].total_time
    assert results["two_arrays"].peak_memory >= 2 * results["dynamic"].peak_memory


def test_e2_scaling_in_grid_size():
    rows = []
    for n in (16, 32, 64, 128):
        rd = execute_adi(machine(4), n, n, 1, "dynamic", seed=0)
        rs = execute_adi(machine(4), n, n, 1, "static_cols", seed=0)
        speedup = rs.total_time / rd.total_time
        rows.append([n, rd.total_time * 1e3, rs.total_time * 1e3, speedup])
        assert rd.total_time < rs.total_time
    emit_table(
        "E2: dynamic vs static_cols over grid size (ms, speedup)",
        ["N", "dynamic_ms", "static_ms", "speedup"],
        rows,
    )


def test_e2_scaling_in_processors():
    rows = []
    n = 64
    for p in (2, 4, 8, 16):
        rd = execute_adi(machine(p), n, n, 1, "dynamic", seed=0)
        rs = execute_adi(machine(p), n, n, 1, "static_cols", seed=0)
        rows.append(
            [p, rd.redistribution.messages, rs.sweep_messages,
             rs.total_time / rd.total_time]
        )
        # static per-line cost grows with p; dynamic wins throughout
        assert rd.total_time < rs.total_time
    emit_table(
        "E2: scaling with processors (N=64)",
        ["procs", "dyn_redist_msgs", "static_sweep_msgs", "speedup"],
        rows,
    )


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_e2_adi_benchmark(benchmark, strategy):
    benchmark(execute_adi, machine(4), 32, 32, 1, strategy, seed=0)
