"""E5 — the NOTRANSFER attribute (§2.4, §3.2.2).

Paper claim: "If A is a member of NOTRANSFER, then only the access
function for A is changed and the elements of the array are not
physically moved" — a descriptor-only update, useful when the values
will be overwritten before being read.

Regenerated series: redistribute a primary with k connected
secondaries, with and without NOTRANSFER, and show the traffic saved.
"""

import pytest

from conftest import emit_table
from repro.core.distribution import dist_type
from repro.core.dynamic import DynamicAttr, Extraction
from repro.machine import Machine, PARAGON, ProcessorArray
from repro.runtime.engine import Engine

R = ProcessorArray("R", (4,))
N = 128


def build(n_secondaries):
    machine = Machine(R, cost_model=PARAGON)
    engine = Engine._create(machine)
    engine.declare(
        "B", (N, 8), dynamic=DynamicAttr(initial=dist_type("BLOCK", ":"))
    )
    for i in range(n_secondaries):
        engine.declare(
            f"A{i}", (N, 8), dynamic=True, connect=("B", Extraction())
        )
    return machine, engine


def test_e5_notransfer_saves_motion():
    rows = []
    for k in (1, 2, 4):
        # full transfer
        machine, engine = build(k)
        engine.distribute("B", dist_type(":", "BLOCK"))
        full = machine.stats()
        # NOTRANSFER on all secondaries
        machine2, engine2 = build(k)
        engine2.distribute(
            "B",
            dist_type(":", "BLOCK"),
            notransfer=[f"A{i}" for i in range(k)],
        )
        nt = machine2.stats()
        rows.append(
            [k, full.messages, full.bytes, nt.messages, nt.bytes,
             1 - nt.bytes / full.bytes]
        )
        # descriptor still updated for every member
        for i in range(k):
            assert engine2.arrays[f"A{i}"].dist.dtype == dist_type(":", "BLOCK")
        # traffic reduced to the primary's share alone
        assert nt.bytes * (k + 1) == full.bytes * 1
    emit_table(
        "E5: NOTRANSFER on k extraction-connected secondaries (N=128)",
        ["k", "full_msgs", "full_bytes", "nt_msgs", "nt_bytes", "saved"],
        rows,
    )


def test_e5_time_saved():
    machine, engine = build(4)
    t0 = machine.time
    engine.distribute("B", dist_type(":", "BLOCK"))
    t_full = machine.time - t0

    machine2, engine2 = build(4)
    t0 = machine2.time
    engine2.distribute(
        "B", dist_type(":", "BLOCK"), notransfer=[f"A{i}" for i in range(4)]
    )
    t_nt = machine2.time - t0
    emit_table(
        "E5: modeled redistribution time with/without NOTRANSFER",
        ["variant", "ms"],
        [["full", t_full * 1e3], ["notransfer", t_nt * 1e3]],
    )
    assert t_nt < t_full


@pytest.mark.parametrize("notransfer", [False, True], ids=["full", "notransfer"])
def test_e5_benchmark(benchmark, notransfer):
    def run():
        machine, engine = build(2)
        engine.distribute(
            "B",
            dist_type(":", "BLOCK"),
            notransfer=["A0", "A1"] if notransfer else [],
        )

    benchmark(run)
