"""Serve bench — the planning service under concurrent load (ISSUE 6).

The service tier's three claims, measured against a real in-process
asyncio HTTP server:

1. **zero failures** with N concurrent clients hammering every
   registered workload's plan/run/trace endpoints;
2. **reproducibility** — identical requests (workload, params, seed)
   return byte-identical JSON across clients and phases;
3. **cross-session caching** — the repeated-config phase's response
   cache hit rate exceeds 50% (each distinct config computed once,
   every other request replayed from stored bytes).

The report (``repro-bench-serve/1`` schema: per-phase p50/p99/mean
latency, hit rates, server-side cache and pool counters) is written to
``BENCH_SERVE.json`` next to ``BENCH_PERF.json``.  The CLI spelling is
``python -m repro serve --loadtest [--smoke] [--check]``; this bench
is the pytest spelling the CI smoke step exercises.
"""

from __future__ import annotations

import pytest

from conftest import emit_table
from repro.serve import run_loadtest


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    out = tmp_path_factory.mktemp("serve") / "BENCH_SERVE.json"
    return run_loadtest(
        clients=8, rounds=3, smoke=True, out=str(out), check=True, quiet=True,
    )


def test_serve_loadtest_properties(report):
    emit_table(
        "serve load test (8 clients, all workloads)",
        ["phase", "requests", "failed", "p50 ms", "p99 ms", "hit rate"],
        [
            [
                p["name"], p["requests"], p["failures"],
                f"{p['latency']['p50_ms']:.1f}",
                f"{p['latency']['p99_ms']:.1f}",
                ("n/a" if p["cache_hit_rate"] is None
                 else f"{p['cache_hit_rate']:.0%}"),
            ]
            for p in report["phases"]
        ],
    )
    assert report["total_failures"] == 0
    assert report["byte_identical"] is True
    unique, repeated = report["phases"]
    assert unique["cache_hits"] == 0
    assert repeated["cache_hit_rate"] > 0.5


def test_serve_pool_actually_reuses_sessions(report):
    sessions = report["server_stats"]["sessions"]
    assert sessions["reused"] > sessions["created"]


def test_serve_shared_plan_cache_hits(report):
    plan_cache = report["server_stats"]["plan_cache"]
    assert plan_cache["hits"] > 0


def test_serve_latency_bench(benchmark):
    """Wall-clock the single-request hot path (cache hit) for the record."""
    from repro.serve import PlanningService

    with PlanningService() as svc:
        target = "/plan?workload=adi&size=16&seed=0"
        svc.dispatch("GET", target)  # warm: compute + fill the cache

        result = benchmark(svc.dispatch, "GET", target)
        assert result.status == 200
        assert result.headers["X-Repro-Cache"] == "hit"
