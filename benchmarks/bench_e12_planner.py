"""E12 — the automatic distribution planner vs the paper's choices.

The paper leaves redistribution scheduling to the programmer; E12
measures how the planner's cost-driven schedules compare against (a)
the best *static* single layout and (b) the paper's hand-annotated
dynamic schedule, on all three §4 workloads and all machine presets.

Claims asserted:

- the planned schedule's modeled cost is never worse than any static
  alternative (the DP guarantee) nor than the hand schedule (which is
  a path in the planner's own lattice);
- on ADI the planner independently recovers Figure 1's
  ``(:, BLOCK)`` / ``(BLOCK, :)`` flip on every preset machine;
- the executed planned ADI run matches the hand-written dynamic
  strategy message-for-message.
"""

import pytest

from conftest import emit_table
from repro.core.distribution import dist_type
from repro.machine import IPSC860, Machine, MODERN_CLUSTER, PARAGON, ProcessorArray
from repro.planner import (
    CostEngine,
    get_workload,
    hand_schedule_cost,
)
from repro.planner.workloads import _plan_workload

MODELS = (IPSC860, PARAGON, MODERN_CLUSTER)
WORKLOADS = ("adi", "pic", "smoothing")


def test_e12_planner_vs_static_vs_hand():
    rows = []
    for name in WORKLOADS:
        for cm in MODELS:
            wl = get_workload(name, cost_model=cm)
            engine = CostEngine(wl.machine)
            plan = _plan_workload(wl, cost_engine=engine)
            best_static = min(plan.static.values())
            hand = hand_schedule_cost(wl, cost_engine=engine)
            rows.append(
                [
                    name,
                    cm.name,
                    len(plan.redistributions),
                    plan.total_cost * 1e3,
                    best_static * 1e3,
                    (hand if hand is not None else float("nan")) * 1e3,
                    best_static / plan.total_cost
                    if plan.total_cost > 0
                    else float("inf"),
                ]
            )
            assert plan.total_cost <= best_static + 1e-12
            if hand is not None:
                assert plan.total_cost <= hand + 1e-12
    emit_table(
        "E12: planned vs best-static vs hand schedule (modeled ms)",
        ["workload", "machine", "redists", "planned_ms", "static_ms",
         "hand_ms", "static/planned"],
        rows,
    )


def test_e12_adi_recovers_figure1_on_every_preset():
    rows = []
    for cm in MODELS:
        wl = get_workload("adi", cost_model=cm)
        plan = _plan_workload(wl)
        schedule = [s.dist.dtype for s in plan.steps]
        want = [
            dist_type(":", "BLOCK"),
            dist_type("BLOCK", ":"),
        ] * (len(plan.steps) // 2)
        assert schedule == want
        rows.append([cm.name, len(plan.redistributions),
                     plan.total_cost * 1e3])
    emit_table(
        "E12: ADI planner schedule per machine (Figure 1 recovered)",
        ["machine", "redists", "planned_ms"],
        rows,
    )


def test_e12_executed_planned_adi_matches_dynamic():
    from repro.apps.adi import execute_adi

    rows = []
    for cm in MODELS:
        dyn = execute_adi(
            Machine(ProcessorArray("R", (4,)), cost_model=cm),
            64, 64, 2, "dynamic", seed=0,
        )
        pln = execute_adi(
            Machine(ProcessorArray("R", (4,)), cost_model=cm),
            64, 64, 2, "planned", seed=0,
        )
        rows.append(
            [cm.name, dyn.total_time * 1e3, pln.total_time * 1e3,
             pln.redistribution.messages]
        )
        assert pln.sweep_messages == 0
        assert pln.redistribution.messages == dyn.redistribution.messages
        assert pln.total_time == pytest.approx(dyn.total_time)
    emit_table(
        "E12: executed ADI — hand dynamic vs planned (ms)",
        ["machine", "dynamic_ms", "planned_ms", "redist_msgs"],
        rows,
    )


@pytest.mark.parametrize("name", WORKLOADS)
def test_e12_planner_benchmark(benchmark, name):
    wl = get_workload(name)

    def run():
        return _plan_workload(wl, cost_engine=CostEngine(wl.machine))

    benchmark(run)
