"""E8 — transfer-set minimality (§3.2.2).

Paper claim: each processor "determines the new locations of current
local data, sends it to the new locations"; "data motion is suppressed
where data flow analysis, or a NOTRANSFER specification, permits".
The implementation must therefore move *exactly* the elements whose
owner changes — no more.

Regenerated series: measured transfer volumes against the analytic
lower bound (count of elements with changed primary owner) for a
family of distribution pairs, including replication fan-out.
"""

import numpy as np
import pytest

from conftest import emit_table
from repro.core.dimdist import Cyclic, GenBlock, Replicated
from repro.core.distribution import dist_type
from repro.machine import Machine, ProcessorArray
from repro.runtime.engine import Engine
from repro.runtime.redistribute import communicate, transfer_matrix

P = 4
R = ProcessorArray("R", (P,))
N = 64

PAIRS = [
    ("identity", dist_type("BLOCK", ":"), dist_type("BLOCK", ":")),
    ("block->cyclic", dist_type("BLOCK", ":"), dist_type(Cyclic(1), ":")),
    ("block->cyclic(16)", dist_type("BLOCK", ":"), dist_type(Cyclic(16), ":")),
    ("transpose", dist_type("BLOCK", ":"), dist_type(":", "BLOCK")),
    (
        "bblock shift 1",
        dist_type("BLOCK", ":"),
        dist_type(GenBlock([15, 17, 16, 16]), ":"),
    ),
    (
        "bblock shift 8",
        dist_type("BLOCK", ":"),
        dist_type(GenBlock([8, 24, 16, 16]), ":"),
    ),
]


def analytic_moved(old, new):
    """Elements whose primary owner changes — the motion lower bound."""
    return int(
        (np.asarray(old.rank_map()) != np.asarray(new.rank_map())).sum()
    )


def test_e8_volume_equals_lower_bound():
    rows = []
    for label, old_t, new_t in PAIRS:
        old = old_t.apply((N, 4), R)
        new = new_t.apply((N, 4), R)
        T = transfer_matrix(old, new, P)
        bound = analytic_moved(old, new)
        rows.append([label, int(T.sum()), bound, int((T > 0).sum())])
        assert T.sum() == bound, f"{label} moves exactly the changed elements"
    emit_table(
        f"E8: transfer volume vs analytic lower bound (N={N}x4)",
        ["pair", "moved", "lower_bound", "msg_pairs"],
        rows,
    )


def test_e8_cyclic16_equals_block():
    """CYCLIC(16) of 64 elements on 4 procs IS the block distribution:
    the transfer set must be empty (motion suppressed)."""
    old = dist_type("BLOCK", ":").apply((N, 4), R)
    new = dist_type(Cyclic(16), ":").apply((N, 4), R)
    assert transfer_matrix(old, new, P).sum() == 0


def test_e8_replication_fanout_counted():
    """Replicating fans each element out to the other P-1 processors."""
    old = dist_type("BLOCK", ":").apply((N, 4), R)
    new = dist_type(Replicated(), ":").apply((N, 4), R)
    T = transfer_matrix(old, new, P)
    emit_table(
        "E8: replication fan-out matrix (elements)",
        ["row"] + [f"to{p}" for p in range(P)],
        [[f"from{s}", *T[s]] for s in range(P)],
    )
    assert T.sum() == N * 4 * (P - 1)


def test_e8_incremental_rebalance_cheaper_than_full():
    """The PIC rebalancing pattern: moving the B_BLOCK boundary by k
    cells costs k rows — linear in the boundary shift, not in N."""
    rows = []
    base = dist_type("BLOCK", ":").apply((N, 4), R)
    for k in (1, 2, 4, 8):
        sizes = [16 - k, 16 + k, 16, 16]
        new = dist_type(GenBlock(sizes), ":").apply((N, 4), R)
        moved = int(transfer_matrix(base, new, P).sum())
        rows.append([k, moved])
        assert moved == k * 4  # k rows of 4 elements
    emit_table(
        "E8: B_BLOCK boundary shift k vs elements moved",
        ["k", "moved"],
        rows,
    )


@pytest.mark.parametrize(
    "label,old_t,new_t", PAIRS, ids=[p[0] for p in PAIRS]
)
def test_e8_transfer_matrix_benchmark(benchmark, label, old_t, new_t):
    old = old_t.apply((N, 4), R)
    new = new_t.apply((N, 4), R)
    benchmark(transfer_matrix, old, new, P)
