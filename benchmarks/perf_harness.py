"""Perf harness — the vectorized hot paths vs their reference oracles.

Wraps :mod:`repro.perf` in the bench-suite idiom: prints the
before/after table, asserts the op-count gate (the vectorized paths
must be operation-for-operation identical to their per-element /
per-event references), and writes ``BENCH_PERF.json`` next to the
working directory.  The same harness backs ``python -m repro bench``;
wall-clock numbers here are informational (never asserted), the
op-count ``match`` flags are the regression check.

Run with ``pytest benchmarks/perf_harness.py -s --benchmark-disable``
(smoke sizes; set ``REPRO_BENCH_FULL=1`` for the full sizes the README
table quotes).
"""

from __future__ import annotations

import os

from conftest import emit_table
from repro.perf import run_harness


def test_perf_harness_vectorized_paths_match_reference():
    smoke = os.environ.get("REPRO_BENCH_FULL", "") != "1"
    report = run_harness(smoke=smoke, out="BENCH_PERF.json", quiet=True)
    rows = [
        [
            r["name"],
            r["reference_seconds"] * 1e3,
            r["vectorized_seconds"] * 1e3,
            r["speedup"],
            r["match"],
        ]
        for r in report["benches"]
    ]
    emit_table(
        "perf harness: per-element/per-event reference vs vectorized "
        f"({'smoke' if smoke else 'full'} sizes)",
        ["hot path", "reference_ms", "vectorized_ms", "speedup", "ops match"],
        rows,
    )
    # the gate: identical op counts, values and plan costs
    assert all(r["match"] for r in report["benches"])
    # every vectorized path must actually be a speedup (coarse sanity,
    # generous bound so CI machines never flake)
    for r in report["benches"]:
        assert r["speedup"] > 0.5, r["name"]
