"""E4 — the cost of redistribution itself (§1's "significant costs").

Paper claim: dynamic distribution carries real run-time costs — "the
cost of performing the actual data transfers and the cost of
maintaining runtime information" — which judicious use amortizes.

Regenerated series: redistribution volume/messages/time per
distribution pair and array size, plus the DESIGN.md ablation of the
vectorized transfer-set computation against the naive per-element
loop.
"""

import time

import numpy as np
import pytest

from conftest import emit_table
from repro.core.dimdist import Cyclic, GenBlock
from repro.core.distribution import dist_type
from repro.machine import Machine, PARAGON, ProcessorArray
from repro.runtime.engine import Engine
from repro.runtime.redistribute import (
    communicate,
    transfer_matrix,
    transfer_matrix_naive,
)

P = 4
R = ProcessorArray("R", (P,))

PAIRS = [
    ("BLOCK -> CYCLIC", dist_type("BLOCK", ":"), dist_type(Cyclic(1), ":")),
    ("BLOCK -> transposed", dist_type("BLOCK", ":"), dist_type(":", "BLOCK")),
    ("CYCLIC -> CYCLIC(3)", dist_type(Cyclic(1), ":"), dist_type(Cyclic(3), ":")),
    ("BLOCK -> B_BLOCK(shift)", dist_type("BLOCK", ":"), None),  # built per n
]


def _bblock_shift(n):
    b = n // P
    return dist_type(GenBlock([b - 1, b + 1, b, n - 3 * b]), ":")


def test_e4_cost_by_pair_and_size():
    rows = []
    for label, old_t, new_t in PAIRS:
        for n in (32, 128, 512):
            machine = Machine(R, cost_model=PARAGON)
            engine = Engine._create(machine)
            arr = engine.declare("A", (n, 8), dist=old_t, dynamic=True)
            arr.fill(1.0)
            nt = new_t or _bblock_shift(n)
            rep = communicate(arr, nt.apply((n, 8), R))
            frac = rep.elements_moved / arr.size
            rows.append(
                [label, n, rep.messages, rep.elements_moved,
                 f"{frac:.2f}", rep.time * 1e6]
            )
    emit_table(
        "E4: redistribution cost by pair and size (Paragon)",
        ["pair", "n", "msgs", "moved", "frac", "us"],
        rows,
    )
    # shape: transpose moves ~3/4 of data on 4 procs; the B_BLOCK
    # shift moves only a few boundary rows
    transpose = [r for r in rows if r[0] == "BLOCK -> transposed"]
    bblock = [r for r in rows if r[0] == "BLOCK -> B_BLOCK(shift)"]
    for t, b in zip(transpose, bblock):
        assert b[3] < t[3], "incremental B_BLOCK moves far less than transpose"


def test_e4_vectorized_vs_naive_ablation():
    """The design-choice ablation: numpy owner maps + bincount vs. the
    per-element reference, correctness-equal and far faster."""
    rows = []
    for n in (16, 32, 64):
        old = dist_type("BLOCK", ":").apply((n, n), R)
        new = dist_type(Cyclic(1), ":").apply((n, n), R)
        t0 = time.perf_counter()
        T_fast = transfer_matrix(old, new, P)
        t_fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        T_slow = transfer_matrix_naive(old, new, P)
        t_slow = time.perf_counter() - t0
        assert (T_fast == T_slow).all()
        rows.append([n * n, t_fast * 1e6, t_slow * 1e6, t_slow / max(t_fast, 1e-12)])
    emit_table(
        "E4 ablation: vectorized vs naive transfer-set computation (us)",
        ["elements", "vectorized_us", "naive_us", "ratio"],
        rows,
    )
    # the vectorized path must win by a growing margin
    assert rows[-1][3] > 10


def test_e4_plan_cache_ablation():
    """§3.2 'run time optimization': phase-alternating programs reuse
    redistribution plans; measure the host-side cost saved."""
    import time as _time

    from repro.runtime.redistribute import PlanCache

    n = 256
    old = dist_type("BLOCK", ":").apply((n, n), R)
    new = dist_type(":", "BLOCK").apply((n, n), R)
    flips = 20

    t0 = _time.perf_counter()
    for _ in range(flips):
        transfer_matrix(old, new, P)
        transfer_matrix(new, old, P)
    t_nocache = _time.perf_counter() - t0

    cache = PlanCache()
    t0 = _time.perf_counter()
    for _ in range(flips):
        cache.transfer_matrix(old, new, P)
        cache.transfer_matrix(new, old, P)
    t_cache = _time.perf_counter() - t0

    emit_table(
        f"E4 ablation: plan cache over {flips} ADI-style flips (n={n})",
        ["variant", "total_us", "per_flip_us"],
        [
            ["no cache", t_nocache * 1e6, t_nocache / flips * 1e6],
            ["plan cache", t_cache * 1e6, t_cache / flips * 1e6],
        ],
    )
    assert cache.hits == 2 * flips - 2
    assert t_cache < t_nocache


def test_e4_bookkeeping_cost():
    """'the cost of maintaining runtime information about the current
    distribution': descriptor/translation-table rebuild sizes."""
    from repro.runtime.translation import TranslationTable

    rows = []
    for n in (64, 256, 1024):
        d = dist_type(Cyclic(3), ":").apply((n, 8), R)
        table = TranslationTable(d)
        rows.append([n, table.nbytes])
    emit_table(
        "E4: translation-table bytes rebuilt per redistribution",
        ["n", "table_bytes"],
        rows,
    )
    assert rows[1][1] > rows[0][1]


@pytest.mark.parametrize(
    "label,old_t,new_t",
    [(l, o, n) for l, o, n in PAIRS if n is not None],
    ids=[l for l, _, n in PAIRS if n is not None],
)
def test_e4_redistribute_benchmark(benchmark, label, old_t, new_t):
    n = 128
    machine = Machine(R, cost_model=PARAGON)
    engine = Engine._create(machine)
    arr = engine.declare("A", (n, 8), dist=old_t, dynamic=True)
    arr.fill(1.0)
    new_bound = new_t.apply((n, 8), R)
    old_bound = old_t.apply((n, 8), R)

    def roundtrip():
        communicate(arr, new_bound)
        communicate(arr, old_bound)

    benchmark(roundtrip)
