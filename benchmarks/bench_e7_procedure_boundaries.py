"""E7 — explicit DISTRIBUTE vs. implicit procedure-boundary
redistribution vs. two static arrays (§4's alternatives discussion).

Paper claims: redistributing at procedure boundaries "may lead to an
explosion of subroutines which are different only in the distribution
specified for their arguments" and is "awkward ... if there is an
outer iterative loop around the phases"; the array-assignment
alternative "wastes storage space".  HPF-style restore-on-return (§5)
doubles the boundary traffic when the caller continues in the new
phase.

Regenerated series: the ADI phase flip implemented four ways, with
traffic, memory and modeled time per outer iteration.
"""

import numpy as np
import pytest

from conftest import emit_table
from repro.apps.adi import execute_adi
from repro.apps.tridiag import thomas_const
from repro.compiler.codegen import LineSweepKernel
from repro.core.distribution import dist_type
from repro.lang.procedures import FormalArg, Procedure
from repro.machine import Machine, PARAGON, ProcessorArray
from repro.runtime.engine import Engine

N, ITERS, P = 64, 3, 4


def _adi_via_procedures(restore: str):
    """ADI where each sweep is a procedure whose formal declares the
    distribution it wants — the implicit-redistribution style."""
    machine = Machine(ProcessorArray("R", (P,)), cost_model=PARAGON)
    engine = Engine._create(machine)
    v = engine.declare("V", (N, N), dist=dist_type(":", "BLOCK"), dynamic=True)
    v.from_global(np.random.default_rng(0).standard_normal((N, N)))
    line = lambda x: thomas_const(x, -1.0, 4.0)  # noqa: E731

    sweep_x = Procedure(
        "sweep_x",
        [FormalArg("X", "(:, BLOCK)")],
        lambda e, X: LineSweepKernel(X, 0, line).sweep(),
        restore=restore,
    )
    sweep_y = Procedure(
        "sweep_y",
        [FormalArg("X", "(BLOCK, :)")],
        lambda e, X: LineSweepKernel(X, 1, line).sweep(),
        restore=restore,
    )
    for _ in range(ITERS):
        sweep_x(engine, X=v)
        sweep_y(engine, X=v)
    return machine, v


def test_e7_alternatives_table():
    rows = []

    # (a) explicit DISTRIBUTE (Figure 1)
    machine = Machine(ProcessorArray("R", (P,)), cost_model=PARAGON)
    r = execute_adi(machine, N, N, ITERS, "dynamic", seed=0)
    rows.append(
        ["explicit DISTRIBUTE", r.total_messages,
         r.peak_memory, r.total_time * 1e3]
    )
    explicit_msgs = r.total_messages
    explicit_mem = r.peak_memory

    # (b) procedure boundaries, Vienna Fortran return semantics
    machine_vf, v_vf = _adi_via_procedures("vf")
    s = machine_vf.stats()
    rows.append(
        ["proc boundary (VF)", s.messages,
         max(m.high_water for m in machine_vf.memories),
         machine_vf.time * 1e3]
    )
    vf_msgs = s.messages

    # (c) procedure boundaries, HPF restore-on-return semantics
    machine_hpf, v_hpf = _adi_via_procedures("hpf")
    s = machine_hpf.stats()
    rows.append(
        ["proc boundary (HPF)", s.messages,
         max(m.high_water for m in machine_hpf.memories),
         machine_hpf.time * 1e3]
    )
    hpf_msgs = s.messages

    # (d) two static arrays + assignment
    machine2 = Machine(ProcessorArray("R", (P,)), cost_model=PARAGON)
    r2 = execute_adi(machine2, N, N, ITERS, "two_arrays", seed=0)
    rows.append(
        ["two static arrays", r2.total_messages,
         r2.peak_memory, r2.total_time * 1e3]
    )

    emit_table(
        f"E7: the ADI phase flip four ways (N={N}, {ITERS} iterations)",
        ["approach", "messages", "peak_mem", "ms"],
        rows,
    )

    # VF-return procedure boundaries cost the same traffic as the
    # explicit statement (each phase flip is one redistribution)
    assert vf_msgs == explicit_msgs
    # In a loop HPF's restores replace VF's flip-backs, so the loop
    # amortizes them: HPF pays only the trailing extra restore per
    # iteration pair.  It is still strictly worse.
    assert hpf_msgs > vf_msgs
    # two static arrays double the storage
    assert r2.peak_memory >= 2 * explicit_mem
    # results agree
    assert np.allclose(v_vf.to_global(), v_hpf.to_global())


def test_e7_single_call_hpf_doubles_traffic():
    """Without a surrounding loop the §5 difference is stark: a single
    call that redistributes on entry pays the restore in full — twice
    the traffic of Vienna Fortran's return-the-new-distribution."""
    line = lambda x: thomas_const(x, -1.0, 4.0)  # noqa: E731
    counts = {}
    for restore in ("vf", "hpf"):
        machine = Machine(ProcessorArray("R", (P,)), cost_model=PARAGON)
        engine = Engine._create(machine)
        v = engine.declare(
            "V", (N, N), dist=dist_type(":", "BLOCK"), dynamic=True
        )
        v.fill(1.0)
        proc = Procedure(
            "sweep_y",
            [FormalArg("X", "(BLOCK, :)")],
            lambda e, X: LineSweepKernel(X, 1, line).sweep(),
            restore=restore,
        )
        proc(engine, X=v)
        counts[restore] = machine.stats().messages
    emit_table(
        "E7: single procedure call, entry redistribution traffic",
        ["semantics", "messages"],
        [["VF (returns new dist)", counts["vf"]],
         ["HPF (restores on exit)", counts["hpf"]]],
    )
    assert counts["hpf"] == 2 * counts["vf"]


def test_e7_subroutine_explosion():
    """§4: one procedure per distribution — count the variants needed
    to cover the distribution types an argument may assume."""
    rows = []
    for n_types in (2, 4, 8):
        # without dynamic distributions: one subroutine per type
        rows.append([n_types, n_types, 1])
    emit_table(
        "E7: subroutine variants needed (static args) vs DYNAMIC (=1)",
        ["arg distribution types", "static variants", "with DYNAMIC"],
        rows,
    )


@pytest.mark.parametrize("restore", ["vf", "hpf"])
def test_e7_procedure_benchmark(benchmark, restore):
    benchmark(_adi_via_procedures, restore)
