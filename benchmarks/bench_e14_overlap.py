"""E14 — split-phase communication overlap: simulated makespans.

Until this PR every modeled time was one scalar per processor; the
discrete-event simulator replays the recorded event stream of a real
run and separates what the aggregate accounting folds together: idle
time, load imbalance, and — the headline — the communication a
split-phase (nonblocking post/wait) lowering could hide behind
independent computation.

For each §4 workload (ADI Figure 1, smoothing, PIC Figure 2, and the
irregular PARTI relaxation) this bench records the typed event trace
of one execution and replays it twice:

- **blocking** — the exact semantics of the machine's aggregate
  accounting;
- **split-phase** — message posts cost ``alpha`` per endpoint, the
  ``beta*n`` transfers pipeline in the background, and communication-
  only barriers are relaxed so the waits migrate past the independent
  kernels that follow (the maximal legal overlap bound).

Claims asserted:

- with overlap *disabled* the simulator reproduces the aggregate cost
  accounting **bit for bit** — per-processor clocks and makespan — on
  all four applications (the conformance anchor);
- split-phase overlap never increases the simulated makespan, and
  strictly reduces it on at least two applications (ADI's
  redistribution transfers and smoothing's halo exchanges both hide
  behind sweeps);
- the planner's ``cost_mode="simulated"`` prices the same ADI
  transition no higher than the blocking closed form.
"""

from __future__ import annotations

import pytest

from conftest import emit_table
from repro.machine import IPSC860, Machine, PARAGON, ProcessorArray
from repro.planner import CostEngine, SimulatedCostEngine, adi_workload
from repro.planner.workloads import _plan_workload
from repro.sim import EventLog, overlappable_phases, record, simulate


def _trace_adi(cost_model):
    from repro.apps.adi import execute_adi

    machine = Machine(ProcessorArray("R", (4,)), cost_model=cost_model)
    log = EventLog()
    with record(machine, log):
        execute_adi(machine, 48, 48, 2, strategy="dynamic", seed=0)
    return machine, log


def _trace_smoothing(cost_model):
    from repro.apps.smoothing import execute_smoothing

    machine = Machine((4,), cost_model=cost_model)
    log = EventLog()
    with record(machine, log):
        execute_smoothing(
            48, 8, "columns", 4, cost_model, seed=0, machine=machine
        )
    return machine, log


def _trace_pic(cost_model):
    from repro.apps.pic import PICConfig, execute_pic

    machine = Machine(ProcessorArray("P", (4,)), cost_model=cost_model)
    log = EventLog()
    with record(machine, log):
        execute_pic(
            machine,
            PICConfig(
                strategy="bblock", ncell=64, npart=512, max_time=8,
                nprocs=4, seed=0,
            ),
        )
    return machine, log


def _trace_irregular(cost_model):
    from repro.apps.irregular import make_mesh, run_relaxation

    machine = Machine(ProcessorArray("P", (4,)), cost_model=cost_model)
    graph = make_mesh(160, seed=0)
    log = EventLog()
    with record(machine, log):
        run_relaxation(machine, graph, "partitioned", sweeps=4, seed=0)
    return machine, log


TRACERS = [
    ("adi", _trace_adi),
    ("smoothing", _trace_smoothing),
    ("pic", _trace_pic),
    ("irregular", _trace_irregular),
]


def test_e14_blocking_matches_aggregate_accounting():
    """Overlap disabled == the existing cost accounting, bitwise."""
    rows = []
    for name, tracer in TRACERS:
        machine, log = tracer(PARAGON)
        timeline = simulate(log, machine.cost_model, machine.nprocs)
        assert timeline.clocks == machine.network.clocks, name
        assert timeline.makespan == machine.time, name
        rows.append(
            [name, len(log), timeline.makespan * 1e3,
             machine.time * 1e3, "bitwise"]
        )
    emit_table(
        "E14a: simulator (overlap off) vs aggregate accounting (Paragon)",
        ["app", "events", "sim makespan (ms)", "machine time (ms)", "match"],
        rows,
    )


def test_e14_split_phase_overlap_reduces_makespan():
    """Split-phase halo/redistribution overlap vs blocking."""
    rows = []
    strict = {}
    for model in (PARAGON, IPSC860):
        for name, tracer in TRACERS:
            machine, log = tracer(model)
            blocking = simulate(log, machine.cost_model, machine.nprocs)
            split = simulate(
                log, machine.cost_model, machine.nprocs, overlap=True
            )
            assert split.makespan <= blocking.makespan * (1 + 1e-9), name
            hideable = overlappable_phases(log)
            reduction = (
                1.0 - split.makespan / blocking.makespan
                if blocking.makespan > 0
                else 0.0
            )
            if model is PARAGON:
                strict[name] = split.makespan < blocking.makespan
            rows.append(
                [
                    name,
                    model.name,
                    blocking.makespan * 1e3,
                    split.makespan * 1e3,
                    f"{reduction:.1%}",
                    split.relaxed,
                    sum(hideable.values()),
                ]
            )
    emit_table(
        "E14b: blocking vs split-phase simulated makespan",
        ["app", "machine", "blocking (ms)", "split-phase (ms)",
         "hidden", "relaxed barriers", "hideable phases"],
        rows,
    )
    # the acceptance claim: strict reduction on at least two apps
    assert sum(strict.values()) >= 2, strict
    assert strict["adi"] and strict["smoothing"], strict


def test_e14_simulated_cost_mode_exploits_overlap():
    """``cost_mode="simulated"`` prices transitions no higher than the
    blocking closed form, and the planned schedule is at least as
    cheap under overlap semantics."""
    wl = adi_workload(48, 48, iterations=2, cost_model=PARAGON)
    blocking_engine = CostEngine(wl.machine)
    sim_engine = SimulatedCostEngine(wl.machine)
    a = wl.initial
    b = wl.hand[1] if wl.hand is not None else wl.candidates[0]
    assert sim_engine.transition_cost(a, b) <= (
        blocking_engine.transition_cost(a, b) * (1 + 1e-9)
    )
    plan_b = _plan_workload(wl, cost_engine=blocking_engine)
    plan_s = _plan_workload(wl, cost_mode="simulated")
    assert plan_s.total_cost <= plan_b.total_cost * (1 + 1e-9)


@pytest.mark.parametrize("overlap", [False, True], ids=["blocking", "split"])
def test_e14_replay_speed(benchmark, overlap):
    """Replay throughput of the simulator itself."""
    machine, log = _trace_smoothing(PARAGON)
    timeline = benchmark(
        simulate, log, machine.cost_model, machine.nprocs, overlap
    )
    assert timeline.makespan > 0
