"""E6 — DCASE dispatch cost and compile-time query pruning (§2.5, §3.1).

Paper claims: the control constructs let the user "formulate an
algorithm depending on the actual distribution type" while giving the
compiler "information about the distribution of arrays"; the compiler
"performs a partial evaluation of distribution queries ... by checking
whether there is a plausible distribution which will match".

Regenerated series: (a) run-time DCASE dispatch micro-cost by arm
count and position; (b) pruning effectiveness — fraction of DCASE arms
statically decided (ALWAYS/NEVER) on synthetic IR programs as the
number of reaching distributions varies.
"""

import pytest

from conftest import emit_table
from repro.compiler.ir import (
    ArrayRef,
    Assign,
    Block,
    DCaseStmt,
    DistributeStmt,
    If,
    IRProgram,
    ProcDef,
)
from repro.compiler.partial_eval import (
    ALWAYS,
    MAYBE,
    NEVER,
    decide_querylist,
)
from repro.compiler.reaching import ReachingDistributions
from repro.core.dimdist import Cyclic
from repro.core.distribution import dist_type
from repro.core.query import DCase, QueryList, TypePattern


def build_dcase(n_arms, match_at):
    """A DCASE over one selector, matching at arm `match_at`."""
    dc = DCase([("V", dist_type(Cyclic(match_at + 1), ":"))])
    for i in range(n_arms):
        dc.case([(Cyclic(i + 1), ":")], lambda i=i: i)
    return dc


def test_e6_dispatch_cost_by_position():
    """Run-time dispatch is linear in the matched arm's position."""
    import time

    rows = []
    for n_arms, match_at in ((4, 0), (4, 3), (16, 0), (16, 15), (64, 63)):
        dc = build_dcase(n_arms, match_at)
        t0 = time.perf_counter()
        for _ in range(200):
            assert dc.execute() == match_at
        dt = (time.perf_counter() - t0) / 200
        rows.append([n_arms, match_at, dt * 1e6])
    emit_table(
        "E6: DCASE dispatch microcost (us per execution)",
        ["arms", "matched_at", "us"],
        rows,
    )
    # dispatch stays in the microsecond range — the paper's position
    # that run-time dispatch cost is small relative to redistribution
    assert all(r[2] < 1000 for r in rows)


def _analysis_state(n_distributes):
    """Plausible set of V after an n-way branched distribute pattern."""
    prog = IRProgram()
    prog.declare("V", initial=("BLOCK", ":"))
    use = Assign(ArrayRef("V"), (ArrayRef("V"),))
    # nest n_distributes conditionals each possibly redistributing V
    body = Block([use])
    stmts = []
    for i in range(n_distributes):
        stmts.append(
            If(
                then=Block(
                    [DistributeStmt("V", TypePattern((Cyclic(i + 1), ":")))]
                ),
                orelse=Block([]),
            )
        )
    prog.add_proc(ProcDef("main", (), Block(stmts + [use])))
    analysis = ReachingDistributions(prog)
    res = analysis.run()
    return {"V": res.plausible(use.sid, "V")}


def test_e6_pruning_effectiveness():
    """Fraction of arms the compiler decides statically."""
    rows = []
    arms = [
        QueryList([("BLOCK", ":")]),
        QueryList([(Cyclic(1), ":")]),
        QueryList([(Cyclic(2), ":")]),
        QueryList([(Cyclic(9), ":")]),   # never assumed
        QueryList([(":", "BLOCK")]),     # never assumed
    ]
    for n_dist in (0, 1, 2):
        state = _analysis_state(n_dist)
        verdicts = [decide_querylist(state, ("V",), ql) for ql in arms]
        decided = sum(1 for v in verdicts if v in (ALWAYS, NEVER))
        rows.append(
            [
                n_dist,
                len(state["V"].patterns or ()),
                verdicts.count(ALWAYS),
                verdicts.count(NEVER),
                verdicts.count(MAYBE),
                f"{decided / len(arms):.0%}",
            ]
        )
    emit_table(
        "E6: arms statically decided vs number of reaching distributions",
        ["distributes", "plausible", "always", "never", "maybe", "decided"],
        rows,
    )
    # with a single reaching distribution everything is decidable
    assert rows[0][5] == "100%"
    # pruning degrades gracefully, never to zero: impossible arms stay NEVER
    assert all(r[3] >= 2 for r in rows)


def test_e6_idt_partial_eval_prunes_branch():
    """An IDT-guarded branch whose pattern cannot match is dead code."""
    state = _analysis_state(0)  # V is exactly (BLOCK, :)
    from repro.compiler.partial_eval import decide_pattern

    assert decide_pattern(state["V"], TypePattern(("BLOCK", ":"))) == ALWAYS
    assert decide_pattern(state["V"], TypePattern((":", "BLOCK"))) == NEVER


@pytest.mark.parametrize("n_arms", [4, 16, 64])
def test_e6_dispatch_benchmark(benchmark, n_arms):
    dc = build_dcase(n_arms, n_arms - 1)
    benchmark(dc.execute)
