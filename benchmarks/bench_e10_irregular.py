"""E10 (extension) — irregular distributions on unstructured meshes.

The paper's run-time machinery (translation tables, INDIRECT owner
maps, the inspector/executor) exists for codes whose access pattern no
intrinsic distribution fits — the PARTI line of work it builds on
([15], §3.2).  This bench quantifies the §1 motivation "improve the
locality of data accesses": distributing mesh nodes by a run-time
graph partition (only possible because distributions are run-time
data) versus the static BLOCK order.

Regenerated series: edge cut and measured per-sweep traffic for BLOCK
vs. partitioned INDIRECT over mesh sizes; shape: the partition wins
consistently, and measured bytes track the analytic 2 * cut * itemsize.
"""

import numpy as np
import pytest

from conftest import emit_table
from repro.apps.irregular import (
    edge_cut,
    make_mesh,
    partition_bfs,
    run_relaxation,
)
from repro.core.dimdist import Block
from repro.machine import IPSC860, Machine, ProcessorArray

P = 4


def machine():
    return Machine(ProcessorArray("P", (P,)), cost_model=IPSC860)


def test_e10_cut_and_traffic_table():
    rows = []
    for n in (100, 200, 400):
        g = make_mesh(n, seed=n)
        r_blk = run_relaxation(machine(), g, "block", sweeps=2, seed=0)
        r_prt = run_relaxation(machine(), g, "partitioned", sweeps=2, seed=0)
        rows.append(
            [
                n,
                g.number_of_edges(),
                r_blk.cut_edges,
                r_prt.cut_edges,
                r_blk.bytes,
                r_prt.bytes,
                r_blk.time / r_prt.time,
            ]
        )
        assert np.allclose(r_blk.solution, r_prt.solution)
        assert r_prt.cut_edges < r_blk.cut_edges
        assert r_prt.bytes < r_blk.bytes
        # traffic is exactly the gathered off-processor neighbours
        assert r_prt.bytes == 2 * 2 * r_prt.cut_edges * 8  # sweeps x 2 dirs
    emit_table(
        "E10: unstructured relaxation, BLOCK vs partitioned INDIRECT",
        ["n", "edges", "cut_blk", "cut_prt", "bytes_blk", "bytes_prt", "speedup"],
        rows,
    )


def test_e10_partition_quality_vs_parts():
    g = make_mesh(300, seed=7)
    n = g.number_of_nodes()
    rows = []
    for p in (2, 4, 8):
        cut_p = edge_cut(g, partition_bfs(g, p, seed=7))
        cut_b = edge_cut(g, np.asarray(Block().owners_vec(n, p)))
        rows.append([p, cut_b, cut_p, cut_b / max(cut_p, 1)])
        assert cut_p <= cut_b
    emit_table(
        "E10: edge cut by processor count (n=300)",
        ["procs", "block_cut", "partition_cut", "ratio"],
        rows,
    )


@pytest.mark.parametrize("distribution", ["block", "partitioned"])
def test_e10_relaxation_benchmark(benchmark, distribution):
    g = make_mesh(150, seed=1)
    benchmark(run_relaxation, machine(), g, distribution, 1, 0)
