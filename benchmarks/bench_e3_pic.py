"""E3 — Figure 2: PIC load balancing via B_BLOCK redistribution.

Paper claim: "the motion of particles during the simulation may lead
to a severe load imbalance"; periodic rebalancing with
``balance`` + ``DISTRIBUTE FIELD :: B_BLOCK(BOUNDS)`` maintains the
balance, which neither array assignment nor procedure boundaries can
express (§4's closing argument).

Regenerated series: the per-step imbalance trajectory under static
BLOCK vs. rebalanced B_BLOCK, plus the rebalance-period ablation
DESIGN.md calls out.
"""

import pytest

from conftest import emit_table
from repro.apps.pic import PICConfig, execute_pic
from repro.machine import Machine, PARAGON, ProcessorArray

BASE = dict(ncell=128, npart=3000, max_time=50, nprocs=4, drift=0.006, seed=5)


def machine():
    return Machine(ProcessorArray("P", (4,)), cost_model=PARAGON)


def test_e3_imbalance_trajectory():
    r_static = execute_pic(machine(), PICConfig(strategy="static", **BASE))
    r_bblock = execute_pic(machine(), PICConfig(strategy="bblock", **BASE))
    rows = []
    for ss, sb in zip(r_static.steps, r_bblock.steps):
        if ss.step % 5 == 0:
            rows.append(
                [ss.step, ss.imbalance, sb.imbalance,
                 "yes" if sb.redistributed else ""]
            )
    emit_table(
        "E3: PIC per-step load imbalance (max/mean particles per proc)",
        ["step", "static", "bblock", "rebalanced"],
        rows,
    )
    assert r_bblock.mean_imbalance < r_static.mean_imbalance
    assert r_bblock.max_imbalance < r_static.max_imbalance
    assert r_bblock.total_time < r_static.total_time
    assert r_bblock.redistributions >= 1


def test_e3_rebalance_period_ablation():
    """DESIGN.md ablation: how the rebalance period trades imbalance
    against redistribution traffic."""
    rows = []
    prev_imb = None
    for period in (5, 10, 20, 50):
        cfg = PICConfig(strategy="bblock", rebalance_every=period, **BASE)
        r = execute_pic(machine(), cfg)
        rows.append(
            [
                period,
                r.mean_imbalance,
                r.redistributions,
                r.redistribution_bytes_total,
                r.total_time * 1e3,
            ]
        )
    emit_table(
        "E3 ablation: rebalance period vs imbalance and redistribution cost",
        ["period", "mean_imb", "redists", "redist_bytes", "ms"],
        rows,
    )
    # more frequent rebalancing -> at least as good balance
    imbs = [row[1] for row in rows]
    assert imbs[0] <= imbs[-1] + 0.05
    # and at least as many redistributions
    redists = [row[2] for row in rows]
    assert redists[0] >= redists[-1]


def test_e3_threshold_ablation():
    rows = []
    for thr in (1.05, 1.25, 2.0, float("inf")):
        cfg = PICConfig(strategy="bblock", imbalance_threshold=thr, **BASE)
        r = execute_pic(machine(), cfg)
        rows.append([thr, r.mean_imbalance, r.redistributions])
    emit_table(
        "E3 ablation: rebalance() threshold",
        ["threshold", "mean_imb", "redists"],
        rows,
    )
    assert rows[-1][2] == 0  # infinite threshold never rebalances


@pytest.mark.parametrize("strategy", ["static", "bblock"])
def test_e3_pic_benchmark(benchmark, strategy):
    cfg = PICConfig(
        strategy=strategy, ncell=64, npart=1000, max_time=10, nprocs=4, seed=1
    )
    benchmark(execute_pic, machine(), cfg)
