"""E9 (extension) — the inspector/executor paradigm (§3.2, §4).

Paper claim: irregular accesses (the PIC particle reassignment) need
"runtime code using the inspector/executor paradigm [10, 15]".  The
pay-off of the paradigm is aggregation (one message per processor pair
instead of one per element) and schedule reuse across iterations.

Regenerated series: an irregular gather executed (a) element-by-
element, (b) through a freshly built schedule each step, (c) with the
schedule reused across steps — messages and modeled time per step.
This is the ablation for the "schedule reuse" design choice in
DESIGN.md §5.
"""

import numpy as np
import pytest

from conftest import emit_table
from repro.core.distribution import dist_type
from repro.machine import IPSC860, Machine, ProcessorArray
from repro.runtime.engine import Engine

N = 256
P = 4
STEPS = 10


def setup():
    machine = Machine(ProcessorArray("R", (P,)), cost_model=IPSC860)
    engine = Engine._create(machine)
    arr = engine.declare("X", (N,), dist=dist_type("BLOCK"), dynamic=True)
    arr.from_global(np.arange(N, dtype=float))
    rng = np.random.default_rng(0)
    # every processor reads 64 random global elements (indirection array)
    requests = {
        p: rng.integers(0, N, size=64).reshape(-1, 1) for p in range(P)
    }
    return machine, engine, arr, requests


def run_element_wise(machine, arr, requests):
    for p, idx in requests.items():
        for (g,) in idx:
            arr.read_remote(p, (int(g),))


def test_e9_aggregation_and_reuse():
    rows = []

    # (a) element-wise
    machine, engine, arr, requests = setup()
    t0, m0 = machine.time, machine.stats().messages
    for _ in range(STEPS):
        run_element_wise(machine, arr, requests)
    rows.append(
        ["element-wise",
         (machine.stats().messages - m0) // STEPS,
         (machine.time - t0) / STEPS * 1e3]
    )
    elem_msgs = (machine.stats().messages - m0) // STEPS

    # (b) inspector rebuilt every step
    machine, engine, arr, requests = setup()
    insp = engine.inspector("X")
    t0, m0 = machine.time, machine.stats().messages
    for _ in range(STEPS):
        sched = insp.inspect(requests)
        insp.gather(sched)
    rows.append(
        ["inspector (rebuild)",
         (machine.stats().messages - m0) // STEPS,
         (machine.time - t0) / STEPS * 1e3]
    )

    # (c) schedule reused
    machine, engine, arr, requests = setup()
    insp = engine.inspector("X")
    sched = insp.inspect(requests)
    t0, m0 = machine.time, machine.stats().messages
    for _ in range(STEPS):
        insp.gather(sched)
    reuse_msgs = (machine.stats().messages - m0) // STEPS
    rows.append(
        ["inspector (reused)",
         reuse_msgs,
         (machine.time - t0) / STEPS * 1e3]
    )

    emit_table(
        f"E9: irregular gather, {P} procs x 64 requests, per step",
        ["variant", "msgs/step", "ms/step"],
        rows,
    )
    # aggregation: at most one message per ordered processor pair
    assert reuse_msgs <= P * (P - 1)
    # versus hundreds of element messages
    assert elem_msgs > 10 * reuse_msgs


def test_e9_schedule_invalidated_by_redistribution():
    """The §1 bookkeeping cost: a DISTRIBUTE forces re-inspection."""
    machine, engine, arr, requests = setup()
    insp = engine.inspector("X")
    sched = insp.inspect(requests)
    insp.gather(sched)
    engine.distribute("X", dist_type("CYCLIC"))
    with pytest.raises(RuntimeError, match="stale"):
        insp.gather(sched)
    # re-inspect and carry on
    sched2 = insp.inspect(requests)
    vals = insp.gather(sched2)
    for p, idx in requests.items():
        assert np.array_equal(vals[p], idx[:, 0].astype(float))


@pytest.mark.parametrize("variant", ["rebuild", "reuse"])
def test_e9_gather_benchmark(benchmark, variant):
    machine, engine, arr, requests = setup()
    insp = engine.inspector("X")
    if variant == "reuse":
        sched = insp.inspect(requests)
        benchmark(insp.gather, sched)
    else:
        def run():
            insp.gather(insp.inspect(requests))

        benchmark(run)
