"""E11 (extension) — distributions onto processor *sections* (§2.2).

Paper feature: "the distribution of arrays to subsets of processors".
Sections enable functional decomposition (different arrays on
different machine halves) and shrink/grow patterns (move a phase's
working set onto fewer processors when that reduces communication).

Regenerated series: (a) redistribution between disjoint halves moves
everything (the analytic worst case); (b) shrinking an array from p
to p/2 processors halves the per-step boundary traffic of a stencil
but doubles per-processor memory — the locality/parallelism trade a
Vienna Fortran programmer can steer with `TO` clauses at run time.
"""

import numpy as np
import pytest

from conftest import emit_table
from repro.core.distribution import dist_type
from repro.machine import IPSC860, Machine, ProcessorArray
from repro.runtime.engine import Engine
from repro.runtime.overlap import OverlapManager

N = 64
P = 8


def build(section=None):
    machine = Machine(ProcessorArray("R", (P,)), cost_model=IPSC860)
    engine = Engine._create(machine)
    target = section(machine) if section else None
    arr = engine.declare(
        "A", (N, N), dist=dist_type("BLOCK", ":"), to=target, dynamic=True
    )
    arr.from_global(np.arange(N * N, dtype=float).reshape(N, N))
    return machine, engine, arr


def test_e11_disjoint_section_move():
    machine, engine, arr = build(
        lambda m: m.processors.section(slice(0, P // 2))
    )
    data = arr.to_global()
    lower = machine.processors.section(slice(0, P // 2))
    upper = machine.processors.section(slice(P // 2, P))
    rep = engine.distribute(
        "A", dist_type("BLOCK", ":"), to=upper
    )[0]
    emit_table(
        "E11: moving an array between disjoint machine halves",
        ["metric", "value"],
        [
            ["elements moved", rep.elements_moved],
            ["elements kept", rep.elements_kept],
            ["messages", rep.messages],
        ],
    )
    assert rep.elements_moved == N * N  # nothing can stay
    assert rep.elements_kept == 0
    assert np.array_equal(arr.to_global(), data)
    assert set(np.unique(arr.dist.rank_map())) == set(upper.ranks())
    del lower


def test_e11_shrink_tradeoff():
    """Fewer processors: fewer boundaries (less traffic), more memory."""
    rows = []
    for nprocs in (8, 4, 2):
        machine, engine, arr = build(
            lambda m, k=nprocs: m.processors.section(slice(0, k))
        )
        ov = OverlapManager(arr, (1, 0))
        ov.load_interior()
        before = machine.stats()
        ov.exchange()
        diff = machine.stats() - before
        mem = max(m.used for m in machine.memories)
        rows.append([nprocs, diff.messages, diff.bytes, mem])
    emit_table(
        f"E11: stencil boundary traffic vs active processors (N={N})",
        ["procs", "msgs/step", "bytes/step", "max_mem_B"],
        rows,
    )
    msgs = [r[1] for r in rows]
    mems = [r[3] for r in rows]
    assert msgs[0] > msgs[1] > msgs[2]   # fewer boundaries
    assert mems[0] < mems[1] < mems[2]   # bigger local blocks


def test_e11_grow_for_compute_phase():
    """The reverse move: spread onto the full machine for a
    compute-heavy phase, paying a one-time redistribution."""
    machine, engine, arr = build(
        lambda m: m.processors.section(slice(0, 2))
    )
    rep = engine.distribute("A", dist_type("BLOCK", ":"))[0]
    # only processor 0's leading N/P rows stay in place: on the old
    # half-machine layout rank 0 held rows [0, N/2) and keeps the
    # [0, N/P) prefix; every other new block lands on a new owner
    assert rep.elements_kept == (N // P) * N
    assert rep.elements_moved == N * N - (N // P) * N
    assert arr.dist.local_shape(7)[0] == N // P


@pytest.mark.parametrize("half", ["lower", "upper"])
def test_e11_section_benchmark(benchmark, half):
    def run():
        machine, engine, arr = build(
            lambda m: m.processors.section(slice(0, P // 2))
        )
        target = (
            machine.processors.section(slice(P // 2, P))
            if half == "upper"
            else machine.processors.section(slice(0, P // 2))
        )
        engine.distribute("A", dist_type("BLOCK", ":"), to=target)

    benchmark(run)
